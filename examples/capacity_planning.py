"""Capacity planning across budgets: how the Kairos configuration evolves with money.

Run with::

    python examples/capacity_planning.py [MODEL]

For a sweep of hourly budgets the script plans the Kairos configuration, reports its
upper bound, its composition, and the upper bound of the best homogeneous alternative —
the planning workflow an operator would run before provisioning (no simulation, so it
finishes in seconds even for the largest budgets).
"""

from __future__ import annotations

import sys

from repro.cloud.billing import BillingModel
from repro.cloud.profiles import default_profile_registry
from repro.core.kairos import KairosPlanner
from repro.core.upper_bound import ThroughputUpperBoundEstimator
from repro.utils.tables import format_table
from repro.workload.batch_sizes import production_batch_distribution


def main() -> int:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "RM2"
    budgets = [1.0, 2.5, 5.0, 10.0]

    profiles = default_profile_registry()
    model = profiles.models[model_name]
    billing = BillingModel(profiles.catalog)
    monitor = production_batch_distribution().sample(8000, 0)
    estimator = ThroughputUpperBoundEstimator(profiles, model, monitor)

    rows = []
    for budget in budgets:
        planner = KairosPlanner(model, budget, profiles=profiles, batch_samples=monitor)
        plan = planner.plan()
        homog = billing.best_homogeneous_config("g4dn.xlarge", budget)
        homog_scale = billing.homogeneous_budget_scaling("g4dn.xlarge", budget)
        homog_bound = estimator.upper_bound(homog) * homog_scale if not homog.is_empty() else 0.0
        rows.append(
            [
                budget,
                plan.search_space_size,
                str(plan.selected_config),
                plan.selected_config.cost_per_hour(),
                plan.selected_upper_bound,
                str(homog),
                homog_bound,
                plan.selected_upper_bound / homog_bound if homog_bound else float("inf"),
                round(plan.planning_seconds * 1000, 1),
            ]
        )

    print(f"Kairos capacity planning for {model_name} (QoS {model.qos_ms:.0f} ms)\n")
    print(format_table(
        [
            "budget_$hr",
            "configs",
            "kairos_config",
            "cost_$hr",
            "kairos_UB_qps",
            "homog_config",
            "homog_UB_qps",
            "UB_ratio",
            "plan_ms",
        ],
        rows,
    ))
    print("\nThe upper bounds are the planner's closed-form estimates (Eq. 15); run "
          "examples/quickstart.py to measure a configuration on the simulated cluster.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
