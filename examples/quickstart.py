"""Quickstart: plan a heterogeneous configuration with Kairos and measure its throughput.

Run with::

    python examples/quickstart.py [MODEL] [BUDGET]

e.g. ``python examples/quickstart.py RM2 2.5``.  The script

1. plans a heterogeneous configuration under the cost budget (no online evaluation),
2. prints the top upper-bound candidates and the similarity-based selection,
3. measures the allowable throughput of the selected configuration and of the best
   homogeneous configuration on the simulated cluster, and
4. reports the normalized improvement (the paper's Fig. 8 quantity for this model).
"""

from __future__ import annotations

import sys

from repro import KairosServingSystem
from repro.cloud.billing import BillingModel
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.capacity import measure_allowable_throughput
from repro.utils.tables import format_table
from repro.workload.generator import WorkloadSpec


def main() -> int:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "RM2"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 2.5

    system = KairosServingSystem(model_name, budget_per_hour=budget, rng=42)
    plan = system.plan()

    print(f"Kairos plan for {model_name} under a {budget:.2f} $/hr budget")
    print(f"  search space          : {plan.search_space_size} configurations")
    print(f"  planning time         : {plan.planning_seconds * 1000:.1f} ms (no online evaluation)")
    print(f"  selection rule        : {plan.selection.rule}")
    print(f"  selected configuration: {plan.selected_config} "
          f"({plan.selected_config.cost_per_hour():.3f} $/hr)")
    print()
    print(format_table(
        ["rank", "config", "upper_bound_qps", "cost_per_hr", "selected"],
        [
            [i + 1, str(c), b, c.cost_per_hour(), c == plan.selected_config]
            for i, (c, b) in enumerate(plan.top(5))
        ],
        title="Top-5 configurations by throughput upper bound",
    ))
    print()

    print("Measuring allowable throughput on the simulated cluster (this takes a few seconds)...")
    kairos_result = system.measure_throughput(num_queries=600, max_iterations=6)

    billing = BillingModel(system.catalog)
    homog = billing.best_homogeneous_config("g4dn.xlarge", budget)
    scale = billing.homogeneous_budget_scaling("g4dn.xlarge", budget)
    homog_result = measure_allowable_throughput(
        homog, system.model, system.profiles,
        lambda: KairosPolicy(use_perfect_estimator=True),
        workload_spec=WorkloadSpec(batch_sizes=system.batch_distribution, num_queries=600),
        rng=7, max_iterations=6,
    )
    homog_scaled = homog_result.qps * scale

    print()
    print(format_table(
        ["serving strategy", "config", "allowable_qps"],
        [
            ["homogeneous (budget-scaled)", str(homog), homog_scaled],
            ["Kairos heterogeneous", str(plan.selected_config), kairos_result.qps],
        ],
    ))
    print()
    print(f"Normalized throughput (Kairos / homogeneous): "
          f"{kairos_result.qps / homog_scaled:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
