"""React to a query-size distribution change without online exploration (Fig. 12's story).

Run with::

    python examples/load_shift_adaptation.py

The workload starts with the production-like log-normal batch-size mix and abruptly
switches to a Gaussian mix centred on much larger batches.  The script shows how the
Kairos planner's choice changes when its query monitor observes the new mix, and
compares the one-shot re-planned configuration against keeping the stale configuration.
"""

from __future__ import annotations

import sys

from repro.cloud.profiles import default_profile_registry
from repro.core.kairos import KairosPlanner
from repro.schedulers.kairos_policy import KairosPolicy
from repro.sim.capacity import measure_allowable_throughput
from repro.utils.tables import format_table
from repro.workload.batch_sizes import GaussianBatchSizes, production_batch_distribution
from repro.workload.generator import WorkloadSpec


def allowable(config, model, profiles, distribution, *, seed):
    return measure_allowable_throughput(
        config, model, profiles, KairosPolicy,
        workload_spec=WorkloadSpec(batch_sizes=distribution, num_queries=500),
        rng=seed, max_iterations=5,
    ).qps


def main() -> int:
    model_name = "RM2"
    budget = 2.5
    profiles = default_profile_registry()
    model = profiles.models[model_name]

    before = production_batch_distribution()
    after = GaussianBatchSizes(mean=250.0, std=120.0)

    planner = KairosPlanner(
        model, budget, profiles=profiles, batch_samples=before.sample(8000, 0)
    )
    plan_before = planner.plan()

    # the query monitor now observes the new mix: re-plan in one shot
    planner.update_batch_samples(after.sample(8000, 1))
    plan_after = planner.plan()

    print(f"{model_name}: query-size distribution changes from log-normal to Gaussian\n")
    print(f"  configuration planned for the old mix : {plan_before.selected_config}")
    print(f"  configuration planned for the new mix : {plan_after.selected_config}")
    print(f"  re-planning time                      : {plan_after.planning_seconds * 1000:.1f} ms "
          "(no configuration was evaluated online)\n")

    print("Measuring both configurations under the *new* query mix...")
    stale_qps = allowable(plan_before.selected_config, model, profiles, after, seed=11)
    fresh_qps = allowable(plan_after.selected_config, model, profiles, after, seed=11)

    print()
    print(format_table(
        ["configuration", "planned for", "allowable_qps under new mix"],
        [
            [str(plan_before.selected_config), "old (log-normal) mix", stale_qps],
            [str(plan_after.selected_config), "new (Gaussian) mix", fresh_qps],
        ],
    ))
    if fresh_qps > 0:
        print(f"\nOne-shot re-planning recovers "
              f"{100.0 * (fresh_qps - stale_qps) / max(stale_qps, 1e-9):.0f}% throughput "
              "without a single online trial — the behaviour behind Fig. 12.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
