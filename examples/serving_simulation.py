"""Serve a concrete query stream and compare query-distribution mechanisms.

Run with::

    python examples/serving_simulation.py [MODEL] [RATE_QPS]

The script generates a production-like query stream, serves it on a fixed heterogeneous
configuration under Ribbon's FCFS, the DRS threshold scheme, the Clockwork-style
controller, and Kairos, and prints the per-scheme tail latency, QoS violation rate, and
how each scheme splits queries across instance types — the behaviour behind Fig. 3.
"""

from __future__ import annotations

import sys

from repro.cloud.config import parse_config
from repro.cloud.profiles import default_profile_registry
from repro.schedulers.clockwork import ClockworkPolicy
from repro.schedulers.fcfs import RibbonFCFSPolicy
from repro.schedulers.kairos_policy import KairosPolicy
from repro.schedulers.threshold import DRSThresholdPolicy
from repro.sim.simulation import simulate_serving
from repro.utils.tables import format_table
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


def main() -> int:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "RM2"
    rate_qps = float(sys.argv[2]) if len(sys.argv) > 2 else 60.0

    profiles = default_profile_registry()
    model = profiles.models[model_name]
    config = parse_config("(2, 0, 8, 1)")
    queries = WorkloadGenerator(WorkloadSpec(num_queries=1500)).generate(rate_qps, rng=3)

    print(f"Serving {len(queries)} {model_name} queries at {rate_qps:.0f} QPS "
          f"on configuration {config} (QoS {model.qos_ms:.0f} ms)\n")

    rows = []
    per_type_rows = []
    for name, policy in (
        ("RIBBON", RibbonFCFSPolicy()),
        ("DRS", DRSThresholdPolicy()),
        ("CLKWRK", ClockworkPolicy()),
        ("KAIROS", KairosPolicy()),
    ):
        report = simulate_serving(config, model, profiles, policy, queries, rng=1)
        metrics = report.metrics
        rows.append(
            [
                name,
                metrics.tail_latency_ms(),
                metrics.mean_latency_ms(),
                100.0 * metrics.qos_violation_rate(),
                metrics.goodput_qps(),
            ]
        )
        for type_name, count in sorted(metrics.queries_by_type().items()):
            mean_batch = metrics.mean_batch_by_type()[type_name]
            per_type_rows.append([name, type_name, count, mean_batch])

    print(format_table(
        ["scheme", "p99_latency_ms", "mean_latency_ms", "violations_pct", "goodput_qps"],
        rows,
        title="End-to-end serving metrics",
    ))
    print()
    print(format_table(
        ["scheme", "instance_type", "queries_served", "mean_batch_size"],
        per_type_rows,
        title="How each scheme splits the queries across instance types",
        float_fmt=".1f",
    ))
    print("\nKairos keeps large queries on the base (GPU) instances and packs small "
          "queries onto the cheap auxiliary instances, which is what preserves the QoS "
          "tail at higher load.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
