"""Serve a trace-driven load step with online re-planning and elastic provisioning.

Run with::

    python examples/elastic_scaling.py

The offered arrival rate doubles mid-trace.  A static Kairos plan (provisioned for the
baseline load) saturates after the step; the elastic controller detects the sustained
change from its sliding arrival-rate window, re-plans in one shot under a budget scaled
to the new load, and migrates the cluster through SCALE_UP/SCALE_DOWN provisioning
events — instance startup delay, draining, and per-instance billing included.
"""

from __future__ import annotations

import sys

from repro.analysis.elasticity import fig12_dynamic_replan
from repro.analysis.settings import ExperimentSettings


def main() -> int:
    settings = ExperimentSettings.fast().scaled(num_queries=400)
    table = fig12_dynamic_replan(settings, model_name="RM2", load_step=2.0)
    print(table.format())

    elastic = table.extras["elastic_report"]
    print()
    for decision in elastic.replans:
        print(
            f"replan @ {decision.time_ms:8.0f} ms: observed {decision.observed_rate_qps:6.1f} qps "
            f"(provisioned for {decision.provisioned_rate_qps:.1f}), "
            f"budget -> {decision.budget_per_hour:.2f} $/hr, "
            f"config {decision.old_config} -> {decision.new_config}"
        )
    for entry in elastic.scale_log:
        print(
            f"  {entry.time_ms:8.0f} ms  {entry.kind:<15s} {entry.type_name} x{entry.count}"
        )
    print(
        f"\ntotal spend: static ${table.extras['static_report'].total_cost():.4f} "
        f"vs elastic ${elastic.total_cost():.4f} "
        f"({len(elastic.replans)} re-plans, peak {elastic.peak_instances} instances)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
