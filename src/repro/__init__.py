"""repro: a reproduction of Kairos (HPDC 2023).

Kairos maximizes ML inference throughput under a QoS target and a cost budget on a
heterogeneous pool of cloud instances, by (1) distributing queries with a min-cost
bipartite matching and (2) choosing the heterogeneous configuration with a closed-form
throughput upper bound instead of online exploration.

Quick start::

    from repro import KairosServingSystem

    system = KairosServingSystem("RM2", budget_per_hour=2.5)
    plan = system.plan()
    print(plan.selected_config, plan.selected_upper_bound)
    result = system.measure_throughput(num_queries=800)
    print(result.qps)

Sub-packages
------------
``repro.cloud``     instance catalog, models, latency profiles, configurations, billing
``repro.workload``  queries, batch-size distributions, arrival processes, traces
``repro.sim``       discrete-event serving simulator and capacity measurement
``repro.solvers``   linear-sum-assignment solvers (Jonker-Volgenant, Hungarian, greedy)
``repro.core``      the Kairos planner, distributor, upper bound, Kairos+ search
``repro.schedulers``query-distribution policies (Kairos, Ribbon, DRS, CLKWRK, Oracle)
``repro.search``    online configuration-search baselines (random, SA, GA, BO)
``repro.analysis``  experiment drivers reproducing every table and figure

Online elasticity data flow
---------------------------
The elasticity subsystem reacts to load changes mid-simulation (the online
generalization of the paper's Fig. 12 one-shot re-planning).  Data flows through
four layers::

    repro.workload.phases            LoadPhase / PhasedTrace
        |   trace-driven arrival-rate phases (step, ramp, diurnal, spike) composed
        |   into one query stream with per-phase windows
        v
    repro.sim.elasticity             ElasticServingSimulation
        |   one EventQueue carrying arrivals, completions, and the provisioning
        |   events SCALE_UP / SCALE_DOWN / INSTANCE_READY; draining semantics and
        |   an index-stable ClusterView for the scheduling policy; per-instance
        |   billing via repro.cloud.billing.InstanceUsageLedger
        v
    repro.core.controller            ElasticKairosController
        |   sliding ArrivalRateEstimator detects sustained load change; KairosPlanner
        |   re-plans in one shot under a load-scaled budget; migration_deltas emit
        |   the scale events that migrate the cluster
        v
    repro.analysis.elasticity        fig12_dynamic_replan
            per-phase QoS-met throughput and dollar spend, static plan vs. elastic

Quick elastic start::

    from repro.analysis.elasticity import fig12_dynamic_replan
    print(fig12_dynamic_replan().format())

Multi-model co-location data flow
---------------------------------
N models share one cluster and one dollar budget; every instance hosts one model
copy, and the central controller schedules the *union* of pending queries each
round.  Data flows through the same four layers::

    repro.workload                   model-tagged queries; interleave_model_streams /
        |                            MultiModelTrace merge per-model streams into one
        |                            arrival-ordered multi-tenant trace
        v
    repro.sim.cluster                MultiModelCluster / MultiModelClusterView
        |                            per-model partitions over one global server-id
        |   space; repro.sim.multi_model.MultiModelServingSimulation drives the
        |   joint event loop (per-model QoS metrics, model-tagged billing, scale
        |   events addressed to model partitions)
        v
    repro.core                       build_multi_model_cost_matrix (one predict per
        |                            (model, type) per round, cross-model pairs
        |   penalized), MultiModelKairosPlanner.plan_joint (cheapest demand-covering
        |   config per model under the shared budget), and
        |   MultiModelElasticController (joint re-planning on sustained load change)
        v
    repro.analysis.multi_model       fig17_multi_model_joint
            joint shared-budget plan vs. independently planned per-model clusters

Quick multi-model start::

    from repro.analysis.multi_model import fig17_multi_model_joint
    print(fig17_multi_model_joint().format())

Spot-market serving data flow
-----------------------------
Real clouds sell a second price axis: preemptible *spot* capacity at a 60-90%
discount that can be reclaimed after a short warning.  The spot subsystem threads
that through the same four layers::

    repro.cloud.spot                 SpotMarket / SpotTypeMarket
        |   per-type discounts, Poisson preemption hazards (optionally phased),
        |   the warning window, and the expected-availability discount; the
        |   billing ledger prices intervals per market (cost_by_market,
        |   discount_savings) so the on-demand/spot split is exact
        v
    repro.sim.preemption             PreemptibleElasticSimulation
        |   PREEMPTION_WARNING / PREEMPTED events on the elastic event loop:
        |   a warned spot instance enters deadline-bounded draining, unfinished
        |   work is re-queued through the central PendingQueue at the kill, and
        |   a replacement boots while the victim drains (PreemptionBurst scripts
        |   a correlated worst-case reclaim)
        v
    repro.core                       SpotAwareKairosPlanner.plan_mixed /
        |                            MultiModelKairosPlanner.plan_joint_mixed
        |   rank mixed on-demand+spot allocations via upper_bounds_batch, spot
        |   bounds discounted by expected availability, a minimum on-demand
        |   floor guarding QoS against a total spot reclaim;
        |   ElasticKairosController.observe_preemption books the loss and
        |   forces a one-shot re-provisioning re-plan
        v
    repro.analysis.spot              fig18_spot_savings
            risk-aware mix vs. all-on-demand: $/hr and QoS attainment before,
            during, and after a forced preemption burst

Quick spot start::

    from repro.analysis.spot import fig18_spot_savings
    print(fig18_spot_savings().format())
"""

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceType, get_instance_type
from repro.cloud.models import DEFAULT_MODEL_REGISTRY, MLModel, get_model
from repro.cloud.profiles import default_profile_registry
from repro.cloud.spot import SpotMarket, SpotTypeMarket
from repro.core.controller import KairosServingSystem
from repro.core.kairos import (
    KairosPlan,
    KairosPlanner,
    MixedMarketPlan,
    MultiModelKairosPlanner,
    MultiModelPlan,
    SpotAwareKairosPlanner,
)
from repro.core.kairos_plus import KairosPlusSearch
from repro.sim.capacity import measure_allowable_throughput
from repro.sim.cluster import MultiModelCluster
from repro.sim.multi_model import simulate_multi_model_serving
from repro.sim.simulation import simulate_serving
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "HeterogeneousConfig",
    "InstanceType",
    "get_instance_type",
    "DEFAULT_INSTANCE_CATALOG",
    "MLModel",
    "get_model",
    "DEFAULT_MODEL_REGISTRY",
    "default_profile_registry",
    "KairosServingSystem",
    "KairosPlanner",
    "KairosPlan",
    "MultiModelKairosPlanner",
    "MultiModelPlan",
    "MixedMarketPlan",
    "SpotAwareKairosPlanner",
    "SpotMarket",
    "SpotTypeMarket",
    "MultiModelCluster",
    "KairosPlusSearch",
    "measure_allowable_throughput",
    "simulate_serving",
    "simulate_multi_model_serving",
    "WorkloadGenerator",
    "WorkloadSpec",
]
