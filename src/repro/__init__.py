"""repro: a reproduction of Kairos (HPDC 2023).

Kairos maximizes ML inference throughput under a QoS target and a cost budget on a
heterogeneous pool of cloud instances, by (1) distributing queries with a min-cost
bipartite matching and (2) choosing the heterogeneous configuration with a closed-form
throughput upper bound instead of online exploration.

Quick start::

    from repro import KairosServingSystem

    system = KairosServingSystem("RM2", budget_per_hour=2.5)
    plan = system.plan()
    print(plan.selected_config, plan.selected_upper_bound)
    result = system.measure_throughput(num_queries=800)
    print(result.qps)

Sub-packages
------------
``repro.cloud``     instance catalog, models, latency profiles, configurations
``repro.workload``  queries, batch-size distributions, arrival processes, traces
``repro.sim``       discrete-event serving simulator and capacity measurement
``repro.solvers``   linear-sum-assignment solvers (Jonker-Volgenant, Hungarian, greedy)
``repro.core``      the Kairos planner, distributor, upper bound, Kairos+ search
``repro.schedulers``query-distribution policies (Kairos, Ribbon, DRS, CLKWRK, Oracle)
``repro.search``    online configuration-search baselines (random, SA, GA, BO)
``repro.analysis``  experiment drivers reproducing every table and figure
"""

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceType, get_instance_type
from repro.cloud.models import DEFAULT_MODEL_REGISTRY, MLModel, get_model
from repro.cloud.profiles import default_profile_registry
from repro.core.controller import KairosServingSystem
from repro.core.kairos import KairosPlan, KairosPlanner
from repro.core.kairos_plus import KairosPlusSearch
from repro.sim.capacity import measure_allowable_throughput
from repro.sim.simulation import simulate_serving
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "HeterogeneousConfig",
    "InstanceType",
    "get_instance_type",
    "DEFAULT_INSTANCE_CATALOG",
    "MLModel",
    "get_model",
    "DEFAULT_MODEL_REGISTRY",
    "default_profile_registry",
    "KairosServingSystem",
    "KairosPlanner",
    "KairosPlan",
    "KairosPlusSearch",
    "measure_allowable_throughput",
    "simulate_serving",
    "WorkloadGenerator",
    "WorkloadSpec",
]
