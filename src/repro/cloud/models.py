"""ML inference service models and their QoS targets (paper Table 3).

The paper drives its evaluation with five industry-grade recommendation models.  Only
two properties of a model matter to Kairos: its tail-latency QoS target and the maximum
query batch size the service accepts (1000 in the paper, limited by QoS).  Everything
else (embedding-table sizes, DNN widths) is captured indirectly through the latency
profiles in :mod:`repro.cloud.profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.utils.validation import check_positive, check_positive_int

#: Maximum query batch size accepted by the serving system (paper Sec. 5.1).
MAX_BATCH_SIZE = 1000


@dataclass(frozen=True)
class MLModel:
    """An inference-service model with its QoS contract.

    Attributes
    ----------
    name:
        Short model identifier (``"RM2"``, ``"NCF"``, ...).
    qos_ms:
        99th-percentile latency target in milliseconds.
    max_batch_size:
        Largest query (request batch) the service accepts.
    description / application:
        Informational fields mirroring Table 3.
    """

    name: str
    qos_ms: float
    max_batch_size: int = MAX_BATCH_SIZE
    description: str = ""
    application: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("model name must be non-empty")
        check_positive(self.qos_ms, "qos_ms")
        check_positive_int(self.max_batch_size, "max_batch_size")

    def with_qos(self, qos_ms: float) -> "MLModel":
        """Return a copy of the model with a different QoS target (used by Fig. 15b)."""
        return MLModel(
            name=self.name,
            qos_ms=float(qos_ms),
            max_batch_size=self.max_batch_size,
            description=self.description,
            application=self.application,
        )

    def scaled_qos(self, factor: float) -> "MLModel":
        """Return a copy with the QoS target multiplied by ``factor``."""
        check_positive(factor, "factor")
        return self.with_qos(self.qos_ms * factor)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Table 3 of the paper.
NCF = MLModel(
    name="NCF",
    qos_ms=5.0,
    description="Neural Collaborative Filtering",
    application="Movie recommendation",
)
RM2 = MLModel(
    name="RM2",
    qos_ms=350.0,
    description="Meta recommendation model class 2 (embedding-table dominated)",
    application="High-accuracy social media post ranking",
)
WND = MLModel(
    name="WND",
    qos_ms=25.0,
    description="Google Wide & Deep recommender",
    application="Google App Store",
)
MT_WND = MLModel(
    name="MT-WND",
    qos_ms=25.0,
    description="Multi-Task Wide & Deep (parallel DNN predictors)",
    application="YouTube video recommendation",
)
DIEN = MLModel(
    name="DIEN",
    qos_ms=35.0,
    description="Alibaba Deep Interest Evolution Network",
    application="E-commerce click-through-rate prediction",
)


class ModelRegistry:
    """Ordered collection of the models used in the evaluation."""

    def __init__(self, models: Sequence[MLModel]):
        if not models:
            raise ValueError("registry needs at least one model")
        names = [m.name for m in models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names: {names}")
        self._models: Dict[str, MLModel] = {m.name: m for m in models}
        self._order: List[str] = names

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[MLModel]:
        return (self._models[name] for name in self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __getitem__(self, name: str) -> MLModel:
        return self._models[name]

    @property
    def names(self) -> List[str]:
        return list(self._order)

    def get(self, name: str, default: Optional[MLModel] = None) -> Optional[MLModel]:
        return self._models.get(name, default)

    def describe(self) -> List[Mapping[str, object]]:
        """Rows for Table 3-style reporting."""
        return [
            {
                "model": m.name,
                "description": m.description,
                "application": m.application,
                "qos_ms": m.qos_ms,
            }
            for m in self
        ]


#: The five models of paper Table 3, in the paper's presentation order.
DEFAULT_MODEL_REGISTRY = ModelRegistry([NCF, RM2, WND, MT_WND, DIEN])


def get_model(name: str) -> MLModel:
    """Look up one of the default evaluation models by name."""
    try:
        return DEFAULT_MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known models: {DEFAULT_MODEL_REGISTRY.names}"
        ) from None
