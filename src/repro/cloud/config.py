"""Heterogeneous configurations: how many instances of each catalog type are allocated.

A configuration is the unit the throughput-upper-bound estimator ranks, the search
algorithms explore, and the simulator instantiates.  It is represented as an immutable
count vector over the instance catalog order (base type first), so the paper's
``(3, 1, 3)``-style notation maps directly onto ``HeterogeneousConfig.counts``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceCatalog, InstanceType


@dataclass(frozen=True)
class HeterogeneousConfig:
    """An allocation of cloud instances, e.g. ``(3, 1, 3, 0)`` over the default catalog.

    Attributes
    ----------
    counts:
        Number of instances of each catalog type, in catalog order.
    catalog:
        The instance catalog the counts refer to.
    """

    counts: Tuple[int, ...]
    catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG

    def __post_init__(self) -> None:
        if len(self.counts) != len(self.catalog):
            raise ValueError(
                f"configuration has {len(self.counts)} counts but the catalog has "
                f"{len(self.catalog)} types"
            )
        clean = []
        for c in self.counts:
            if isinstance(c, bool) or int(c) != c:
                raise ValueError(f"instance counts must be integers, got {c!r}")
            if c < 0:
                raise ValueError(f"instance counts must be non-negative, got {c}")
            clean.append(int(c))
        object.__setattr__(self, "counts", tuple(clean))

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls,
        counts: Mapping[str, int],
        catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG,
    ) -> "HeterogeneousConfig":
        """Build a configuration from a ``{type name: count}`` mapping (missing = 0)."""
        unknown = [name for name in counts if name not in catalog]
        if unknown:
            raise KeyError(f"unknown instance types in configuration: {unknown}")
        vector = tuple(int(counts.get(name, 0)) for name in catalog.names)
        return cls(vector, catalog)

    @classmethod
    def homogeneous(
        cls,
        instance_type: Union[str, InstanceType],
        count: int,
        catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG,
    ) -> "HeterogeneousConfig":
        """A configuration with ``count`` instances of a single type."""
        name = instance_type if isinstance(instance_type, str) else instance_type.name
        return cls.from_mapping({name: count}, catalog)

    @classmethod
    def empty(cls, catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG) -> "HeterogeneousConfig":
        return cls(tuple(0 for _ in catalog.names), catalog)

    # -- basic accessors ------------------------------------------------------------
    def count_of(self, instance_type: Union[str, InstanceType]) -> int:
        name = instance_type if isinstance(instance_type, str) else instance_type.name
        return self.counts[self.catalog.index_of(name)]

    @property
    def total_instances(self) -> int:
        return int(sum(self.counts))

    @property
    def base_count(self) -> int:
        """Number of base-type instances."""
        return self.count_of(self.catalog.base_type)

    @property
    def auxiliary_counts(self) -> Dict[str, int]:
        """Counts of the non-base types, keyed by type name."""
        base = self.catalog.base_type.name
        return {name: self.count_of(name) for name in self.catalog.names if name != base}

    def as_mapping(self) -> Dict[str, int]:
        return {name: c for name, c in zip(self.catalog.names, self.counts)}

    def as_vector(self) -> np.ndarray:
        return np.asarray(self.counts, dtype=int)

    def is_empty(self) -> bool:
        return self.total_instances == 0

    def is_homogeneous(self) -> bool:
        """True when at most one type has a non-zero count."""
        return sum(1 for c in self.counts if c > 0) <= 1

    # -- cost -----------------------------------------------------------------------
    def cost_per_hour(self) -> float:
        """Total on-demand price of the allocation in $/hr."""
        prices = np.asarray(self.catalog.price_vector())
        return float(np.dot(prices, self.as_vector()))

    def fits_budget(self, budget_per_hour: float) -> bool:
        """Budget feasibility with a small tolerance for float round-off."""
        return self.cost_per_hour() <= budget_per_hour + 1e-9

    # -- expansion into concrete instances -------------------------------------------
    def expand_instance_types(self) -> List[InstanceType]:
        """One entry per allocated instance, grouped by type in catalog order."""
        result: List[InstanceType] = []
        for name, count in zip(self.catalog.names, self.counts):
            result.extend([self.catalog[name]] * count)
        return result

    # -- structural relations used by Kairos+ pruning --------------------------------
    def is_sub_config_of(self, other: "HeterogeneousConfig") -> bool:
        """True when ``other`` can be obtained from this config by *adding* instances.

        This is the sub-configuration relation of Algorithm 1: a sub-configuration can
        never outperform its super-configuration, so once the super-configuration has
        been evaluated the sub-configuration can be pruned.
        """
        self._check_same_catalog(other)
        return all(a <= b for a, b in zip(self.counts, other.counts)) and self != other

    def is_super_config_of(self, other: "HeterogeneousConfig") -> bool:
        return other.is_sub_config_of(self)

    def add(self, instance_type: Union[str, InstanceType], count: int = 1) -> "HeterogeneousConfig":
        """Return a new configuration with ``count`` more instances of the given type."""
        name = instance_type if isinstance(instance_type, str) else instance_type.name
        idx = self.catalog.index_of(name)
        new_counts = list(self.counts)
        new_counts[idx] += count
        if new_counts[idx] < 0:
            raise ValueError("resulting instance count would be negative")
        return HeterogeneousConfig(tuple(new_counts), self.catalog)

    def distance_squared(self, other: "HeterogeneousConfig") -> float:
        """Squared Euclidean distance between count vectors (Kairos's similarity metric)."""
        self._check_same_catalog(other)
        diff = self.as_vector() - other.as_vector()
        return float(np.dot(diff, diff))

    def _check_same_catalog(self, other: "HeterogeneousConfig") -> None:
        if self.catalog.names != other.catalog.names:
            raise ValueError("configurations refer to different instance catalogs")

    # -- dunder ----------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(zip(self.catalog.names, self.counts))

    def __str__(self) -> str:
        inner = ", ".join(str(c) for c in self.counts)
        return f"({inner})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"{name}={c}" for name, c in self)
        return f"HeterogeneousConfig({pairs})"


def parse_config(
    spec: Union[str, Sequence[int], Mapping[str, int], HeterogeneousConfig],
    catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG,
) -> HeterogeneousConfig:
    """Coerce user-facing configuration specs into :class:`HeterogeneousConfig`.

    Accepts the paper's tuple notation (``"(3, 1, 3)"`` or ``[3, 1, 3]``, padded with
    zeros to the catalog length), mappings, or an existing configuration.
    """
    if isinstance(spec, HeterogeneousConfig):
        return spec
    if isinstance(spec, Mapping):
        return HeterogeneousConfig.from_mapping(spec, catalog)
    if isinstance(spec, str):
        cleaned = spec.strip().strip("()[]")
        if not cleaned:
            return HeterogeneousConfig.empty(catalog)
        parts = [int(p.strip()) for p in cleaned.split(",") if p.strip()]
        spec = parts
    counts = list(int(c) for c in spec)
    if len(counts) > len(catalog):
        raise ValueError(
            f"configuration has {len(counts)} entries but the catalog only has "
            f"{len(catalog)} types"
        )
    counts.extend([0] * (len(catalog) - len(counts)))
    return HeterogeneousConfig(tuple(counts), catalog)
