"""Calibrated synthetic latency-profile coefficients for the five evaluation models.

The paper measures each model on each EC2 instance type; we cannot, so this table holds
linear-profile coefficients ``(intercept_ms, per_item_ms)`` per (model, instance type)
that were *calibrated to the paper's qualitative characterization* (see DESIGN.md,
"Substitutions"):

* the GPU type (``g4dn.xlarge``) is the only type meeting QoS at the maximum batch size
  (1000), making it the base type, exactly as in the paper;
* every CPU type meets QoS for small batches, so each has a non-trivial QoS cutoff ``s``
  and can act as an auxiliary type;
* the *relative* CPU-vs-GPU efficiency differs per model following the paper's
  description of the model internals: RM2 is dominated by large embedding tables
  (memory-bound → the memory-optimized ``r5n.large`` is unusually cost-effective, which
  is what lets Kairos reach ~2x over homogeneous for RM2), MT-WND has large parallel DNN
  predictors (compute-bound → CPUs are comparatively weak → smallest gain), with NCF,
  WND, and DIEN in between;
* latency is a linear function of batch size (the paper reports Pearson > 0.99).

Nothing downstream depends on the absolute milliseconds — only on the ratios between
types and on where each type's QoS cutoff falls relative to the batch-size distribution.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cloud.profiles import LatencyProfile, LinearLatencyProfile

#: (model name, instance type name) -> (intercept_ms, per_item_ms)
#:
#: Construction rules (see DESIGN.md):
#: * GPU: intercept ~0.12 x QoS (fixed per-query overhead: input handling, PCIe copy,
#:   kernel launch), latency at the 1000-request cap ~0.6 x QoS (meets QoS with slack);
#: * CPUs: smaller intercepts (no accelerator launch overhead) but much steeper slopes,
#:   so each type's QoS cutoff lands at a model-dependent fraction of the max batch —
#:   largest for the memory-bound RM2, smallest for the DNN-heavy MT-WND.
PROFILE_COEFFICIENTS: Dict[Tuple[str, str], Tuple[float, float]] = {
    # ------------------------------------------------------------------ NCF (QoS 5 ms)
    # Tiny collaborative-filtering model: sub-millisecond fixed overheads, CPUs serve a
    # few hundred requests per query within QoS.
    ("NCF", "g4dn.xlarge"): (0.50, 0.00160),
    ("NCF", "c5n.2xlarge"): (0.40, 0.00470),
    ("NCF", "r5n.large"): (0.45, 0.00560),
    ("NCF", "t3.xlarge"): (0.50, 0.00820),
    # ------------------------------------------------------------------ RM2 (QoS 350 ms)
    # Embedding-table dominated: the GPU's compute advantage is muted (lookups are
    # memory-bound), so the CPU types keep the largest QoS-feasible batch fraction of
    # all five models — heterogeneity has the most to offer here.
    ("RM2", "g4dn.xlarge"): (42.0, 0.1680),
    ("RM2", "c5n.2xlarge"): (28.0, 0.340),
    ("RM2", "r5n.large"): (31.5, 0.400),
    ("RM2", "t3.xlarge"): (35.0, 0.600),
    # ------------------------------------------------------------------ WND (QoS 25 ms)
    # Wide & Deep: moderate DNN component, CPUs handle small and medium queries.
    ("WND", "g4dn.xlarge"): (3.00, 0.01200),
    ("WND", "c5n.2xlarge"): (2.00, 0.04200),
    ("WND", "r5n.large"): (2.25, 0.05200),
    ("WND", "t3.xlarge"): (2.50, 0.07600),
    # ------------------------------------------------------------------ MT-WND (QoS 25 ms)
    # Multi-task Wide & Deep: large parallel DNN predictors, strongly GPU-friendly; the
    # CPU cutoffs are the smallest fraction of the max batch among the five models.
    ("MT-WND", "g4dn.xlarge"): (3.00, 0.01200),
    ("MT-WND", "c5n.2xlarge"): (2.00, 0.04350),
    ("MT-WND", "r5n.large"): (2.25, 0.05800),
    ("MT-WND", "t3.xlarge"): (2.50, 0.08000),
    # ------------------------------------------------------------------ DIEN (QoS 35 ms)
    # GRU-based sequence model: between WND and MT-WND in CPU friendliness.
    ("DIEN", "g4dn.xlarge"): (4.20, 0.01680),
    ("DIEN", "c5n.2xlarge"): (2.80, 0.05300),
    ("DIEN", "r5n.large"): (3.15, 0.06800),
    ("DIEN", "t3.xlarge"): (3.50, 0.09600),
}


def build_default_profiles() -> Dict[Tuple[str, str], LatencyProfile]:
    """Instantiate :class:`LinearLatencyProfile` objects from the coefficient table."""
    return {
        key: LinearLatencyProfile(intercept_ms=intercept, per_item_ms=slope)
        for key, (intercept, slope) in PROFILE_COEFFICIENTS.items()
    }


def coefficient_table() -> Dict[Tuple[str, str], Tuple[float, float]]:
    """A copy of the raw coefficient table (for reporting and calibration tests)."""
    return dict(PROFILE_COEFFICIENTS)
