"""Cloud substrate: instance catalog, ML model registry, latency profiles, configurations.

This package replaces the paper's AWS EC2 testbed.  It exposes exactly the quantities
Kairos consumes: instance types with on-demand prices (Table 4), models with QoS targets
(Table 3), per-(model, instance-type) latency-vs-batch-size profiles, and heterogeneous
configuration objects with cost accounting.
"""

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import (
    DEFAULT_INSTANCE_CATALOG,
    InstanceCatalog,
    InstanceType,
    get_instance_type,
)
from repro.cloud.models import DEFAULT_MODEL_REGISTRY, MLModel, ModelRegistry, get_model
from repro.cloud.profiles import (
    LatencyProfile,
    LinearLatencyProfile,
    ProfileRegistry,
    default_profile_registry,
)
from repro.cloud.billing import BillingModel, CostReport, InstanceUsageLedger
from repro.cloud.spot import (
    MARKET_ON_DEMAND,
    MARKET_SPOT,
    SpotMarket,
    SpotMarketPhase,
    SpotTypeMarket,
)

__all__ = [
    "InstanceType",
    "InstanceCatalog",
    "DEFAULT_INSTANCE_CATALOG",
    "get_instance_type",
    "MLModel",
    "ModelRegistry",
    "DEFAULT_MODEL_REGISTRY",
    "get_model",
    "LatencyProfile",
    "LinearLatencyProfile",
    "ProfileRegistry",
    "default_profile_registry",
    "HeterogeneousConfig",
    "BillingModel",
    "CostReport",
    "InstanceUsageLedger",
    "MARKET_ON_DEMAND",
    "MARKET_SPOT",
    "SpotMarket",
    "SpotMarketPhase",
    "SpotTypeMarket",
]
