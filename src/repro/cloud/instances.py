"""Cloud compute instance types and the heterogeneous-pool catalog (paper Table 4).

The paper builds its heterogeneous pool from four AWS EC2 on-demand instance types, one
per compute class, all sized to 16 GB of memory so every type can host the model:

=================  ===========================  ===========
Instance type      Instance class               Price ($/hr)
=================  ===========================  ===========
``g4dn.xlarge``    GPU accelerated computing    0.526
``c5n.2xlarge``    Compute optimized CPU        0.432
``r5n.large``      Memory optimized CPU         0.149
``t3.xlarge``      General purpose CPU          0.1664
=================  ===========================  ===========

``g4dn.xlarge`` is the *base* type: the only type that meets QoS for every batch size up
to the 1000-request cap, and therefore the type used for the optimal homogeneous
configuration.  The CPU types are *auxiliary* types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.utils.validation import check_positive


class InstanceClass:
    """Compute-class labels used by the catalog (mirrors the EC2 families in Table 4)."""

    GPU_ACCELERATED = "gpu-accelerated"
    COMPUTE_OPTIMIZED = "compute-optimized"
    MEMORY_OPTIMIZED = "memory-optimized"
    GENERAL_PURPOSE = "general-purpose"

    ALL = (GPU_ACCELERATED, COMPUTE_OPTIMIZED, MEMORY_OPTIMIZED, GENERAL_PURPOSE)


@dataclass(frozen=True)
class InstanceType:
    """A rentable cloud VM type.

    Attributes
    ----------
    name:
        Cloud-provider SKU, e.g. ``"g4dn.xlarge"``.
    instance_class:
        One of :class:`InstanceClass`; informational only.
    price_per_hour:
        On-demand price in $/hr — the quantity the budget constraint is written against.
    memory_gb:
        Memory allocation; the paper sizes all types to 16 GB so each can host the model.
    is_accelerated:
        Whether the type carries a GPU.  The base type in all paper experiments is the
        accelerated one, but nothing in the library requires that.
    """

    name: str
    instance_class: str
    price_per_hour: float
    memory_gb: float = 16.0
    is_accelerated: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("instance type name must be non-empty")
        if self.instance_class not in InstanceClass.ALL:
            raise ValueError(
                f"unknown instance class {self.instance_class!r}; "
                f"expected one of {InstanceClass.ALL}"
            )
        check_positive(self.price_per_hour, "price_per_hour")
        check_positive(self.memory_gb, "memory_gb")

    @property
    def price_per_ms(self) -> float:
        """Price of one millisecond of rental, used for cost-normalized metrics."""
        return self.price_per_hour / 3_600_000.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: The four instance types of paper Table 4, with their on-demand prices.
G4DN_XLARGE = InstanceType(
    name="g4dn.xlarge",
    instance_class=InstanceClass.GPU_ACCELERATED,
    price_per_hour=0.526,
    is_accelerated=True,
    description="NVIDIA T4 GPU instance (base type, 'G1' in the paper's motivation)",
)
C5N_2XLARGE = InstanceType(
    name="c5n.2xlarge",
    instance_class=InstanceClass.COMPUTE_OPTIMIZED,
    price_per_hour=0.432,
    description="Compute-optimized CPU instance ('C1' in the paper's motivation)",
)
R5N_LARGE = InstanceType(
    name="r5n.large",
    instance_class=InstanceClass.MEMORY_OPTIMIZED,
    price_per_hour=0.149,
    description="Memory-optimized CPU instance ('C2' in the paper's motivation)",
)
T3_XLARGE = InstanceType(
    name="t3.xlarge",
    instance_class=InstanceClass.GENERAL_PURPOSE,
    price_per_hour=0.1664,
    description="General-purpose CPU instance",
)


class InstanceCatalog:
    """An ordered collection of instance types forming the heterogeneous pool.

    The order of types is significant: configuration vectors (see
    :class:`repro.cloud.config.HeterogeneousConfig`) follow the catalog order, with the
    *base* type first by convention.
    """

    def __init__(self, types: Sequence[InstanceType], base_type: Optional[str] = None):
        if not types:
            raise ValueError("catalog needs at least one instance type")
        names = [t.name for t in types]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate instance type names in catalog: {names}")
        self._types: Dict[str, InstanceType] = {t.name: t for t in types}
        self._order: List[str] = names
        self._base_name = base_type if base_type is not None else names[0]
        if self._base_name not in self._types:
            raise KeyError(f"base type {self._base_name!r} is not in the catalog")

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[InstanceType]:
        return (self._types[name] for name in self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __getitem__(self, name: str) -> InstanceType:
        return self._types[name]

    # -- accessors -----------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Type names in catalog order (base type first)."""
        return list(self._order)

    @property
    def types(self) -> List[InstanceType]:
        """Instance types in catalog order."""
        return [self._types[name] for name in self._order]

    @property
    def base_type(self) -> InstanceType:
        """The base instance type (the one used for homogeneous serving)."""
        return self._types[self._base_name]

    @property
    def auxiliary_types(self) -> List[InstanceType]:
        """All non-base types, in catalog order."""
        return [self._types[name] for name in self._order if name != self._base_name]

    def price_vector(self) -> List[float]:
        """Per-type $/hr prices in catalog order."""
        return [self._types[name].price_per_hour for name in self._order]

    def index_of(self, name: str) -> int:
        """Position of ``name`` in the catalog order."""
        return self._order.index(name)

    def with_base(self, base_type: str) -> "InstanceCatalog":
        """Return a copy of the catalog with a different base type."""
        return InstanceCatalog(self.types, base_type=base_type)

    def subset(self, names: Sequence[str]) -> "InstanceCatalog":
        """Return a catalog restricted to ``names`` (order preserved from the argument)."""
        missing = [n for n in names if n not in self._types]
        if missing:
            raise KeyError(f"unknown instance types: {missing}")
        base = self._base_name if self._base_name in names else names[0]
        return InstanceCatalog([self._types[n] for n in names], base_type=base)

    def describe(self) -> List[Mapping[str, object]]:
        """Rows for Table 4-style reporting."""
        return [
            {
                "instance_type": t.name,
                "instance_class": t.instance_class,
                "price_per_hour": t.price_per_hour,
                "is_base": t.name == self._base_name,
            }
            for t in self.types
        ]


#: Default heterogeneous pool used throughout the evaluation (paper Table 4).
DEFAULT_INSTANCE_CATALOG = InstanceCatalog(
    [G4DN_XLARGE, C5N_2XLARGE, R5N_LARGE, T3_XLARGE],
    base_type="g4dn.xlarge",
)


def get_instance_type(name: str) -> InstanceType:
    """Look up one of the default catalog's instance types by name."""
    try:
        return DEFAULT_INSTANCE_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown instance type {name!r}; known types: {DEFAULT_INSTANCE_CATALOG.names}"
        ) from None
