"""Cost accounting for instance allocations.

The paper's budget constraint is expressed in $/hr of on-demand rental.  This module
provides the small amount of billing math the experiments need: budget feasibility,
the best homogeneous allocation under a budget, the paper's proportional-scaling
compensation for unused homogeneous budget (Sec. 8.1), and per-experiment cost reports.

For elastic runs, where membership changes mid-simulation, :class:`InstanceUsageLedger`
accrues cost per instance over the exact interval it was commissioned, so experiments
can report spend per load phase rather than a single static $/hr figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceCatalog, InstanceType
from repro.utils.validation import check_non_negative, check_positive

MS_PER_HOUR = 3_600_000.0

#: Cyclic ``(duration_ms, multiplier)`` price schedule, anchored at trace time 0.
PriceSchedule = Tuple[Tuple[float, float], ...]


def schedule_multiplier_at(schedule: PriceSchedule, t_ms: float) -> float:
    """The schedule's price multiplier at trace time ``t_ms`` (cyclic)."""
    cycle = sum(d for d, _ in schedule)
    offset = float(t_ms) % cycle
    for duration, multiplier in schedule:
        if offset < duration:
            return multiplier
        offset -= duration
    return schedule[-1][1]


def schedule_integral_ms(schedule: PriceSchedule, t0_ms: float, t1_ms: float) -> float:
    """``∫ multiplier(t) dt`` over ``[t0_ms, t1_ms)`` for a cyclic price schedule.

    Evaluated as a difference of exact prefix integrals from 0, so windows are
    additive: splitting ``[a, c)`` at any ``b`` (phase boundary or not) yields two
    integrals summing to the original.
    """
    if t1_ms <= t0_ms:
        return 0.0
    cycle = sum(d for d, _ in schedule)
    per_cycle = math.fsum(d * m for d, m in schedule)

    def prefix(t: float) -> float:
        full, offset = divmod(float(t), cycle)
        acc = [full * per_cycle]
        for duration, multiplier in schedule:
            if offset <= 0.0:
                break
            take = min(offset, duration)
            acc.append(take * multiplier)
            offset -= take
        return math.fsum(acc)

    return prefix(t1_ms) - prefix(t0_ms)


@dataclass(frozen=True)
class CostReport:
    """Cost summary of running one configuration for a time window."""

    config: HeterogeneousConfig
    duration_hours: float
    cost_per_hour: float
    total_cost: float
    budget_per_hour: Optional[float] = None

    @property
    def within_budget(self) -> bool:
        if self.budget_per_hour is None:
            return True
        return self.cost_per_hour <= self.budget_per_hour + 1e-9

    @property
    def budget_utilization(self) -> Optional[float]:
        """Fraction of the hourly budget actually spent (``None`` without a budget)."""
        if self.budget_per_hour is None:
            return None
        return self.cost_per_hour / self.budget_per_hour


@dataclass
class UsageInterval:
    """One instance's commissioned interval (``end_ms`` is ``None`` while still open).

    ``tag`` is an optional attribution label — multi-model clusters tag every interval
    with the model the instance hosts, so spend can be attributed per model.

    ``price_multiplier`` and ``market`` carry the spot-market dimension: a spot
    instance bills at ``price_per_hour * price_multiplier`` (the discounted rate) and
    is attributed under its market label, so the on-demand/spot split of a mixed
    cluster's bill is exact.

    ``price_schedule`` carries the *phased* spot-price dimension: when the market's
    phases modulate the price over a cycle, the interval bills the exact piecewise
    integral of ``price_per_hour * multiplier(t)`` over its overlap with the window
    (and ``price_multiplier`` is ignored — the schedule entries are already the
    effective multipliers).  ``None`` keeps the scalar fast path, byte-identical to
    the pre-phase math.

    ``failed`` marks an interval closed by an unannounced instance crash (the fault
    injector): the interval ends exactly at the failure instant — clouds do not bill
    past a host failure — and the failed/healthy split of the bill is exact
    (:meth:`InstanceUsageLedger.cost_by_failure`), mirroring the market partition.
    """

    server_id: int
    type_name: str
    price_per_hour: float
    start_ms: float
    end_ms: Optional[float] = None
    tag: Optional[str] = None
    price_multiplier: float = 1.0
    market: str = "on-demand"
    failed: bool = False
    price_schedule: Optional[PriceSchedule] = None

    @property
    def effective_price_per_hour(self) -> float:
        """The billed $/hr rate (on-demand price times the market multiplier)."""
        return self.price_per_hour * self.price_multiplier

    def rate_per_hour_at(self, t_ms: float) -> float:
        """Instantaneous billed $/hr at ``t_ms`` (phase-dependent under a schedule)."""
        if self.price_schedule is None:
            return self.effective_price_per_hour
        return self.price_per_hour * schedule_multiplier_at(self.price_schedule, t_ms)

    def overlap_ms(self, t0_ms: float, t1_ms: float) -> float:
        """Length of the intersection of this interval with ``[t0_ms, t1_ms)``."""
        end = self.end_ms if self.end_ms is not None else t1_ms
        return max(0.0, min(end, t1_ms) - max(self.start_ms, t0_ms))

    def multiplier_integral_ms(self, t0_ms: float, t1_ms: float) -> float:
        """``∫ multiplier(t) dt`` over the overlap with ``[t0_ms, t1_ms)``."""
        end = self.end_ms if self.end_ms is not None else t1_ms
        a = max(self.start_ms, t0_ms)
        b = min(end, t1_ms)
        if b <= a:
            return 0.0
        if self.price_schedule is None:
            return self.price_multiplier * (b - a)
        return schedule_integral_ms(self.price_schedule, a, b)

    def cost_in_window(self, t0_ms: float, t1_ms: float) -> float:
        if self.price_schedule is None:
            # scalar fast path — kept expression-identical to the pre-phase math so
            # existing digests stay byte-identical
            return (
                self.effective_price_per_hour * self.overlap_ms(t0_ms, t1_ms) / MS_PER_HOUR
            )
        end = self.end_ms if self.end_ms is not None else t1_ms
        a = max(self.start_ms, t0_ms)
        b = min(end, t1_ms)
        if b <= a:
            return 0.0
        return (
            self.price_per_hour
            * schedule_integral_ms(self.price_schedule, a, b)
            / MS_PER_HOUR
        )


#: Attribution-span kinds recognised by :meth:`InstanceUsageLedger.record_span`.
SPAN_QUARANTINE = "quarantine"
SPAN_HEDGE = "hedge"
_SPAN_KINDS = (SPAN_QUARANTINE, SPAN_HEDGE)


@dataclass
class AttributionSpan:
    """A sub-interval attribution of one server's billed time.

    Unlike :class:`UsageInterval` this never *creates* cost — a span re-labels a
    slice of its server's already-billed time so the gray-failure accounting can
    partition the bill: ``quarantine`` spans cover time parked behind an open
    circuit breaker (the idle burn of an isolated server), ``hedge`` spans cover
    the partial occupancy of cancelled hedge attempts.  ``end_ms is None`` means
    open-ended (clipped at the query horizon).  Where spans overlap, quarantine
    takes precedence over hedge; a ``failed`` interval's whole cost stays under
    the crash partition regardless of spans.
    """

    server_id: int
    kind: str
    start_ms: float
    end_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _SPAN_KINDS:
            raise ValueError(f"span kind must be one of {_SPAN_KINDS}, got {self.kind!r}")
        check_non_negative(self.start_ms, "start_ms")
        if self.end_ms is not None and self.end_ms < self.start_ms:
            raise ValueError("span end precedes span start")


class InstanceUsageLedger:
    """Per-instance commissioning intervals and the cost they accrue.

    The elastic simulator opens an interval when an instance starts billing (for
    scale-ups that is at the *scale request*, not at readiness — clouds bill the boot
    time too) and closes it when the instance is decommissioned.  Costs are then exact
    integrals of $/hr over wall-clock membership, queryable over any window so the
    elasticity reports can attribute spend to load phases.
    """

    def __init__(self, catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG):
        self.catalog = catalog
        self._intervals: List[UsageInterval] = []
        self._open: Dict[int, UsageInterval] = {}
        self._spans: List[AttributionSpan] = []

    def __len__(self) -> int:
        return len(self._intervals)

    @property
    def intervals(self) -> List[UsageInterval]:
        return list(self._intervals)

    def start(
        self,
        server_id: int,
        instance_type: Union[str, InstanceType],
        now_ms: float,
        *,
        tag: Optional[str] = None,
        price_multiplier: float = 1.0,
        market: str = "on-demand",
        price_schedule: Optional[PriceSchedule] = None,
    ) -> UsageInterval:
        """Open a billing interval for ``server_id`` at ``now_ms``.

        ``tag`` attributes the interval (e.g. to the model the instance hosts); it only
        affects the ``*_by_tag`` queries, never the totals.  ``price_multiplier`` and
        ``market`` record the purchase market: a spot instance bills every overlapping
        window at the discounted rate and is attributed under its market label.
        ``price_schedule`` (from ``SpotTypeMarket.price_schedule``) switches the
        interval to the exact piecewise phased-price integral.
        """
        check_non_negative(now_ms, "now_ms")
        check_positive(price_multiplier, "price_multiplier")
        if not market:
            raise ValueError("market label must be non-empty")
        if price_schedule is not None:
            price_schedule = tuple((float(d), float(m)) for d, m in price_schedule)
            if not price_schedule:
                raise ValueError("price_schedule must have at least one phase")
            for duration, multiplier in price_schedule:
                check_positive(duration, "price_schedule duration_ms")
                check_positive(multiplier, "price_schedule multiplier")
        if server_id in self._open:
            raise ValueError(f"server {server_id} already has an open billing interval")
        itype = (
            self.catalog[instance_type] if isinstance(instance_type, str) else instance_type
        )
        interval = UsageInterval(
            server_id=server_id,
            type_name=itype.name,
            price_per_hour=itype.price_per_hour,
            start_ms=float(now_ms),
            tag=tag,
            price_multiplier=float(price_multiplier),
            market=str(market),
            price_schedule=price_schedule,
        )
        self._intervals.append(interval)
        self._open[server_id] = interval
        return interval

    def stop(
        self, server_id: int, now_ms: float, *, failed: bool = False
    ) -> UsageInterval:
        """Close the open billing interval of ``server_id`` at ``now_ms``.

        ``failed=True`` closes the interval at an unannounced instance crash: billing
        ends exactly at the failure instant and the interval is tagged so the failed
        portion of the bill stays separable (:meth:`cost_by_failure`).
        """
        interval = self._open.pop(server_id, None)
        if interval is None:
            raise ValueError(f"server {server_id} has no open billing interval")
        if now_ms < interval.start_ms:
            raise ValueError("cannot close a billing interval before it started")
        interval.end_ms = float(now_ms)
        if failed:
            interval.failed = True
        return interval

    def close_all(self, now_ms: float) -> None:
        """Close every still-open interval (end of simulation)."""
        for server_id in list(self._open):
            self.stop(server_id, now_ms)

    # -- attribution spans ---------------------------------------------------------------
    @property
    def spans(self) -> List[AttributionSpan]:
        return list(self._spans)

    def record_span(
        self,
        server_id: int,
        kind: str,
        start_ms: float,
        end_ms: Optional[float] = None,
    ) -> AttributionSpan:
        """Open (or record a closed) attribution span on ``server_id``'s billed time.

        Returns the span; an open span (``end_ms=None``) is closed by assigning
        ``span.end_ms`` — the partition clips open spans at its query horizon.
        """
        span = AttributionSpan(
            server_id=server_id, kind=kind, start_ms=float(start_ms), end_ms=end_ms
        )
        self._spans.append(span)
        return span

    # -- queries -----------------------------------------------------------------------
    # Aggregations use math.fsum (exactly rounded summation), so reported costs are
    # invariant to the order intervals were opened in — simultaneous provisioning
    # events may apply in any order without perturbing the bill by float round-off.
    def cost_in_window(self, t0_ms: float, t1_ms: float) -> float:
        """Total $ accrued over ``[t0_ms, t1_ms)`` across all instances."""
        if t1_ms < t0_ms:
            raise ValueError("window end precedes window start")
        return math.fsum(iv.cost_in_window(t0_ms, t1_ms) for iv in self._intervals)

    def total_cost(self, horizon_ms: float) -> float:
        """Total $ accrued from time 0 to ``horizon_ms``."""
        return self.cost_in_window(0.0, horizon_ms)

    def cost_by_type(self, horizon_ms: float) -> Dict[str, float]:
        parts: Dict[str, List[float]] = {}
        for iv in self._intervals:
            parts.setdefault(iv.type_name, []).append(iv.cost_in_window(0.0, horizon_ms))
        return {name: math.fsum(costs) for name, costs in parts.items()}

    def cost_in_window_by_tag(self, t0_ms: float, t1_ms: float) -> Dict[Optional[str], float]:
        """Per-tag $ accrued over ``[t0_ms, t1_ms)`` (untagged intervals under ``None``).

        The values always sum to :meth:`cost_in_window` over the same window — tags
        partition the intervals, so attribution can never create or lose spend.
        """
        if t1_ms < t0_ms:
            raise ValueError("window end precedes window start")
        parts: Dict[Optional[str], List[float]] = {}
        for iv in self._intervals:
            parts.setdefault(iv.tag, []).append(iv.cost_in_window(t0_ms, t1_ms))
        return {tag: math.fsum(costs) for tag, costs in parts.items()}

    def cost_by_tag(self, horizon_ms: float) -> Dict[Optional[str], float]:
        """Per-tag $ accrued from time 0 to ``horizon_ms`` (per-model attribution)."""
        return self.cost_in_window_by_tag(0.0, horizon_ms)

    def cost_in_window_by_market(self, t0_ms: float, t1_ms: float) -> Dict[str, float]:
        """Per-market $ accrued over ``[t0_ms, t1_ms)`` (on-demand vs. spot split).

        Markets partition the intervals exactly like tags do, so the values always
        sum to :meth:`cost_in_window` over the same window — attribution can neither
        create nor lose spend.
        """
        if t1_ms < t0_ms:
            raise ValueError("window end precedes window start")
        parts: Dict[str, List[float]] = {}
        for iv in self._intervals:
            parts.setdefault(iv.market, []).append(iv.cost_in_window(t0_ms, t1_ms))
        return {market: math.fsum(costs) for market, costs in parts.items()}

    def cost_by_market(self, horizon_ms: float) -> Dict[str, float]:
        """Per-market $ accrued from time 0 to ``horizon_ms``."""
        return self.cost_in_window_by_market(0.0, horizon_ms)

    def cost_in_window_by_failure(self, t0_ms: float, t1_ms: float) -> Dict[bool, float]:
        """$ accrued over ``[t0_ms, t1_ms)`` split by crash outcome.

        Keys are ``True`` (intervals closed by an unannounced instance failure) and
        ``False`` (everything else).  The failed/healthy split partitions the
        intervals exactly like markets and tags do, so the values always sum to
        :meth:`cost_in_window` — attribution can neither create nor lose spend.
        """
        if t1_ms < t0_ms:
            raise ValueError("window end precedes window start")
        parts: Dict[bool, List[float]] = {}
        for iv in self._intervals:
            parts.setdefault(iv.failed, []).append(iv.cost_in_window(t0_ms, t1_ms))
        return {failed: math.fsum(costs) for failed, costs in parts.items()}

    def cost_by_failure(self, horizon_ms: float) -> Dict[bool, float]:
        """$ accrued from time 0 to ``horizon_ms`` split by crash outcome."""
        return self.cost_in_window_by_failure(0.0, horizon_ms)

    def cost_of_failures(self, horizon_ms: float) -> float:
        """$ sunk into instances that died by unannounced crash (0.0 without faults)."""
        return self.cost_by_failure(horizon_ms).get(True, 0.0)

    def attribution_partition(self, horizon_ms: float) -> Dict[str, float]:
        """The gray-failure partition of the bill over ``[0, horizon_ms)``.

        Keys: ``"failed"`` (intervals closed by unannounced crash — the whole
        interval, matching :meth:`cost_of_failures`), ``"quarantine"`` (time
        behind an open breaker), ``"hedge"`` (partial occupancy of cancelled
        hedge attempts), ``"healthy"`` (everything else).  Each interval's
        overlap with the window is cut at its spans' clipped edges and every
        segment billed through the same ``cost_in_window`` used for the totals,
        so the four values sum exactly (1e-12) to :meth:`total_cost` — spans
        re-label spend, they can neither create nor lose it.  Quarantine takes
        precedence over hedge where spans overlap.
        """
        check_non_negative(horizon_ms, "horizon_ms")
        parts: Dict[str, List[float]] = {
            "failed": [],
            "quarantine": [],
            "hedge": [],
            "healthy": [],
        }
        by_server: Dict[int, List[AttributionSpan]] = {}
        for span in self._spans:
            by_server.setdefault(span.server_id, []).append(span)
        for iv in self._intervals:
            if iv.failed:
                parts["failed"].append(iv.cost_in_window(0.0, horizon_ms))
                continue
            end = iv.end_ms if iv.end_ms is not None else horizon_ms
            a = max(iv.start_ms, 0.0)
            b = min(end, horizon_ms)
            if b <= a:
                continue
            spans = [
                (max(s.start_ms, a), min(s.end_ms if s.end_ms is not None else b, b), s.kind)
                for s in by_server.get(iv.server_id, ())
            ]
            spans = [(s0, s1, kind) for s0, s1, kind in spans if s1 > s0]
            if not spans:
                parts["healthy"].append(iv.cost_in_window(a, b))
                continue
            edges = sorted({a, b, *(s0 for s0, _, _ in spans), *(s1 for _, s1, _ in spans)})
            for s0, s1 in zip(edges, edges[1:]):
                mid = 0.5 * (s0 + s1)
                if any(k == SPAN_QUARANTINE and lo <= mid < hi for lo, hi, k in spans):
                    label = "quarantine"
                elif any(k == SPAN_HEDGE and lo <= mid < hi for lo, hi, k in spans):
                    label = "hedge"
                else:
                    label = "healthy"
                parts[label].append(iv.cost_in_window(s0, s1))
        return {label: math.fsum(costs) for label, costs in parts.items()}

    def cost_of_quarantine(self, horizon_ms: float) -> float:
        """$ burned by quarantined (breaker-open) servers (0.0 without health)."""
        return self.attribution_partition(horizon_ms)["quarantine"]

    def cost_of_hedges(self, horizon_ms: float) -> float:
        """$ burned by cancelled hedge attempts' partial occupancy (0.0 without hedging)."""
        return self.attribution_partition(horizon_ms)["hedge"]

    def hours_by_market(self, horizon_ms: float) -> Dict[str, float]:
        """Per-market commissioned instance-hours from time 0 to ``horizon_ms``."""
        check_non_negative(horizon_ms, "horizon_ms")
        parts: Dict[str, List[float]] = {}
        for iv in self._intervals:
            parts.setdefault(iv.market, []).append(iv.overlap_ms(0.0, horizon_ms))
        return {
            market: math.fsum(hours) / MS_PER_HOUR for market, hours in parts.items()
        }

    def discount_savings(self, horizon_ms: float) -> float:
        """$ saved vs. billing every interval at its full on-demand rate.

        The exact value of the discounted hours: ``sum (1 - multiplier) * price *
        overlap`` — zero when no interval carries a discount.  Phased intervals use
        the exact piecewise integral, so full-price minus savings always equals the
        billed total (the ledger-partition invariant re-checks this).
        """
        check_non_negative(horizon_ms, "horizon_ms")
        return math.fsum(
            (
                (1.0 - iv.price_multiplier)
                * iv.price_per_hour
                * iv.overlap_ms(0.0, horizon_ms)
                / MS_PER_HOUR
                if iv.price_schedule is None
                else iv.price_per_hour
                * (
                    iv.overlap_ms(0.0, horizon_ms)
                    - iv.multiplier_integral_ms(0.0, horizon_ms)
                )
                / MS_PER_HOUR
            )
            for iv in self._intervals
        )

    def concurrent_cost_per_hour(self, t_ms: float) -> float:
        """Instantaneous burn rate in $/hr at time ``t_ms``."""
        rate = 0.0
        for iv in self._intervals:
            end = iv.end_ms if iv.end_ms is not None else float("inf")
            if iv.start_ms <= t_ms < end:
                rate += iv.rate_per_hour_at(t_ms)
        return rate

    def mean_cost_per_hour(self, horizon_ms: float) -> float:
        """Average burn rate over ``[0, horizon_ms]`` (the elastic analogue of $/hr)."""
        check_positive(horizon_ms, "horizon_ms")
        return self.total_cost(horizon_ms) / (horizon_ms / MS_PER_HOUR)


class BillingModel:
    """Hourly on-demand billing over an instance catalog."""

    def __init__(self, catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG):
        self.catalog = catalog

    def cost_per_hour(self, config: HeterogeneousConfig) -> float:
        """Hourly price of a configuration."""
        return config.cost_per_hour()

    def report(
        self,
        config: HeterogeneousConfig,
        duration_hours: float = 1.0,
        budget_per_hour: Optional[float] = None,
    ) -> CostReport:
        """Full cost report for running ``config`` for ``duration_hours``."""
        check_positive(duration_hours, "duration_hours")
        if budget_per_hour is not None:
            check_positive(budget_per_hour, "budget_per_hour")
        hourly = self.cost_per_hour(config)
        return CostReport(
            config=config,
            duration_hours=float(duration_hours),
            cost_per_hour=hourly,
            total_cost=hourly * duration_hours,
            budget_per_hour=budget_per_hour,
        )

    # -- homogeneous baseline helpers -------------------------------------------------
    def max_homogeneous_count(
        self, instance_type: Union[str, InstanceType], budget_per_hour: float
    ) -> int:
        """Largest number of instances of one type affordable under the budget."""
        check_positive(budget_per_hour, "budget_per_hour")
        itype = (
            self.catalog[instance_type] if isinstance(instance_type, str) else instance_type
        )
        return int(math.floor(budget_per_hour / itype.price_per_hour + 1e-9))

    def best_homogeneous_config(
        self, instance_type: Union[str, InstanceType], budget_per_hour: float
    ) -> HeterogeneousConfig:
        """The optimal homogeneous configuration: as many base instances as fit the budget."""
        count = self.max_homogeneous_count(instance_type, budget_per_hour)
        name = instance_type if isinstance(instance_type, str) else instance_type.name
        return HeterogeneousConfig.homogeneous(name, count, self.catalog)

    def homogeneous_budget_scaling(
        self, instance_type: Union[str, InstanceType], budget_per_hour: float
    ) -> float:
        """The paper's compensation factor for unused homogeneous budget (Sec. 8.1).

        The budget is generally not an integer multiple of the base-type price, so the
        homogeneous baseline's throughput is scaled *up* proportionally to the full
        budget — a conservative comparison that advantages the baseline.  Returns 1.0
        when not even one instance fits.
        """
        count = self.max_homogeneous_count(instance_type, budget_per_hour)
        if count == 0:
            return 1.0
        itype = (
            self.catalog[instance_type] if isinstance(instance_type, str) else instance_type
        )
        spent = count * itype.price_per_hour
        return budget_per_hour / spent

    # -- budget slack ------------------------------------------------------------------
    def budget_slack(self, config: HeterogeneousConfig, budget_per_hour: float) -> float:
        """Unspent portion of the hourly budget (negative when over budget)."""
        check_non_negative(budget_per_hour, "budget_per_hour")
        return budget_per_hour - self.cost_per_hour(config)

    def affordable_additions(
        self, config: HeterogeneousConfig, budget_per_hour: float
    ) -> Dict[str, int]:
        """How many more instances of each type still fit in the remaining budget."""
        slack = self.budget_slack(config, budget_per_hour)
        result: Dict[str, int] = {}
        for itype in self.catalog.types:
            result[itype.name] = (
                int(math.floor(slack / itype.price_per_hour + 1e-9)) if slack > 0 else 0
            )
        return result

    def cheapest_type(self) -> InstanceType:
        """The lowest-priced type in the catalog."""
        return min(self.catalog.types, key=lambda t: t.price_per_hour)

    def describe_catalog(self) -> List[Dict[str, object]]:
        """Table-4 style rows (used by the table benchmarks)."""
        return self.catalog.describe()
