"""Cost accounting for instance allocations.

The paper's budget constraint is expressed in $/hr of on-demand rental.  This module
provides the small amount of billing math the experiments need: budget feasibility,
the best homogeneous allocation under a budget, the paper's proportional-scaling
compensation for unused homogeneous budget (Sec. 8.1), and per-experiment cost reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceCatalog, InstanceType
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CostReport:
    """Cost summary of running one configuration for a time window."""

    config: HeterogeneousConfig
    duration_hours: float
    cost_per_hour: float
    total_cost: float
    budget_per_hour: Optional[float] = None

    @property
    def within_budget(self) -> bool:
        if self.budget_per_hour is None:
            return True
        return self.cost_per_hour <= self.budget_per_hour + 1e-9

    @property
    def budget_utilization(self) -> Optional[float]:
        """Fraction of the hourly budget actually spent (``None`` without a budget)."""
        if self.budget_per_hour is None:
            return None
        return self.cost_per_hour / self.budget_per_hour


class BillingModel:
    """Hourly on-demand billing over an instance catalog."""

    def __init__(self, catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG):
        self.catalog = catalog

    def cost_per_hour(self, config: HeterogeneousConfig) -> float:
        """Hourly price of a configuration."""
        return config.cost_per_hour()

    def report(
        self,
        config: HeterogeneousConfig,
        duration_hours: float = 1.0,
        budget_per_hour: Optional[float] = None,
    ) -> CostReport:
        """Full cost report for running ``config`` for ``duration_hours``."""
        check_positive(duration_hours, "duration_hours")
        if budget_per_hour is not None:
            check_positive(budget_per_hour, "budget_per_hour")
        hourly = self.cost_per_hour(config)
        return CostReport(
            config=config,
            duration_hours=float(duration_hours),
            cost_per_hour=hourly,
            total_cost=hourly * duration_hours,
            budget_per_hour=budget_per_hour,
        )

    # -- homogeneous baseline helpers -------------------------------------------------
    def max_homogeneous_count(
        self, instance_type: Union[str, InstanceType], budget_per_hour: float
    ) -> int:
        """Largest number of instances of one type affordable under the budget."""
        check_positive(budget_per_hour, "budget_per_hour")
        itype = (
            self.catalog[instance_type] if isinstance(instance_type, str) else instance_type
        )
        return int(math.floor(budget_per_hour / itype.price_per_hour + 1e-9))

    def best_homogeneous_config(
        self, instance_type: Union[str, InstanceType], budget_per_hour: float
    ) -> HeterogeneousConfig:
        """The optimal homogeneous configuration: as many base instances as fit the budget."""
        count = self.max_homogeneous_count(instance_type, budget_per_hour)
        name = instance_type if isinstance(instance_type, str) else instance_type.name
        return HeterogeneousConfig.homogeneous(name, count, self.catalog)

    def homogeneous_budget_scaling(
        self, instance_type: Union[str, InstanceType], budget_per_hour: float
    ) -> float:
        """The paper's compensation factor for unused homogeneous budget (Sec. 8.1).

        The budget is generally not an integer multiple of the base-type price, so the
        homogeneous baseline's throughput is scaled *up* proportionally to the full
        budget — a conservative comparison that advantages the baseline.  Returns 1.0
        when not even one instance fits.
        """
        count = self.max_homogeneous_count(instance_type, budget_per_hour)
        if count == 0:
            return 1.0
        itype = (
            self.catalog[instance_type] if isinstance(instance_type, str) else instance_type
        )
        spent = count * itype.price_per_hour
        return budget_per_hour / spent

    # -- budget slack ------------------------------------------------------------------
    def budget_slack(self, config: HeterogeneousConfig, budget_per_hour: float) -> float:
        """Unspent portion of the hourly budget (negative when over budget)."""
        check_non_negative(budget_per_hour, "budget_per_hour")
        return budget_per_hour - self.cost_per_hour(config)

    def affordable_additions(
        self, config: HeterogeneousConfig, budget_per_hour: float
    ) -> Dict[str, int]:
        """How many more instances of each type still fit in the remaining budget."""
        slack = self.budget_slack(config, budget_per_hour)
        result: Dict[str, int] = {}
        for itype in self.catalog.types:
            result[itype.name] = (
                int(math.floor(slack / itype.price_per_hour + 1e-9)) if slack > 0 else 0
            )
        return result

    def cheapest_type(self) -> InstanceType:
        """The lowest-priced type in the catalog."""
        return min(self.catalog.types, key=lambda t: t.price_per_hour)

    def describe_catalog(self) -> List[Dict[str, object]]:
        """Table-4 style rows (used by the table benchmarks)."""
        return self.catalog.describe()
