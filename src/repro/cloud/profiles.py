"""Per-(model, instance-type) inference latency profiles.

Kairos's entire formulation consumes inference latency only through the function
``latency(model, instance_type, batch_size)``.  The paper observes (Sec. 5.1, "Remarks")
that this latency is essentially deterministic and linearly correlated with the batch
size (Pearson > 0.99 for every model/instance pair), because a single query is served by
a single model copy with no co-located contention.

This module provides:

* :class:`LinearLatencyProfile` — ``latency(b) = intercept + slope * b``, the profile
  family used everywhere in the reproduction (and the one the paper's own observations
  justify);
* :class:`TabulatedLatencyProfile` — an interpolating profile for measured data;
* :class:`ProfileRegistry` — the lookup structure mapping (model, instance type) pairs to
  profiles, plus derived quantities the Kairos math needs: the QoS-feasible batch-size
  cutoff of a type and per-type standalone throughputs for a query mix.

The default registry is synthesized from :mod:`repro.cloud.profile_data`; see that module
and DESIGN.md for the calibration rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceCatalog, InstanceType
from repro.cloud.models import DEFAULT_MODEL_REGISTRY, MLModel, ModelRegistry
from repro.utils.validation import check_non_negative, check_positive

ArrayLike = Union[float, int, Sequence[float], np.ndarray]


class LatencyProfile:
    """Base class: maps batch sizes to service latency in milliseconds."""

    def latency_ms(self, batch_size: ArrayLike):
        """Latency in ms for the given batch size(s); vectorized over arrays."""
        raise NotImplementedError

    def max_feasible_batch(self, qos_ms: float, max_batch: int) -> int:
        """Largest batch size in [0, max_batch] whose latency is within ``qos_ms``.

        Returns 0 when not even a single-request query meets the QoS target.
        """
        check_positive(qos_ms, "qos_ms")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        batches = np.arange(1, max_batch + 1)
        lat = np.asarray(self.latency_ms(batches))
        feasible = np.nonzero(lat <= qos_ms)[0]
        if feasible.size == 0:
            return 0
        # Profiles are monotone in practice, but guard against non-monotone tabulated
        # profiles by taking the largest contiguous feasible prefix.
        last = feasible[-1]
        if feasible.size == last + 1:
            return int(last + 1)
        first_violation = np.nonzero(lat > qos_ms)[0][0]
        return int(first_violation)


@dataclass(frozen=True)
class LinearLatencyProfile(LatencyProfile):
    """``latency(b) = intercept_ms + per_item_ms * b``.

    ``per_item_ms`` is the marginal cost of one more request in the batch; the intercept
    captures fixed per-query overhead (input handling, kernel launch, RPC deserialize).
    """

    intercept_ms: float
    per_item_ms: float

    def __post_init__(self) -> None:
        check_non_negative(self.intercept_ms, "intercept_ms")
        check_positive(self.per_item_ms, "per_item_ms")

    def latency_ms(self, batch_size: ArrayLike):
        # Scalar fast path: the simulator's dispatch loop calls this once per query
        # with a plain int, where the numpy round-trip costs more than the profile.
        if type(batch_size) in (int, float):
            if batch_size < 0:
                raise ValueError("batch sizes must be non-negative")
            return float(self.intercept_ms + self.per_item_ms * batch_size)
        batch = np.asarray(batch_size, dtype=float)
        if np.any(batch < 0):
            raise ValueError("batch sizes must be non-negative")
        result = self.intercept_ms + self.per_item_ms * batch
        if np.isscalar(batch_size) or np.ndim(batch_size) == 0:
            return float(result)
        return result

    def max_feasible_batch(self, qos_ms: float, max_batch: int) -> int:
        """Closed form for the linear profile (overrides the generic scan)."""
        check_positive(qos_ms, "qos_ms")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if self.intercept_ms + self.per_item_ms > qos_ms:
            return 0
        cutoff = int(np.floor((qos_ms - self.intercept_ms) / self.per_item_ms))
        return int(min(max(cutoff, 0), max_batch))


@dataclass(frozen=True)
class TabulatedLatencyProfile(LatencyProfile):
    """Piecewise-linear interpolation over measured (batch, latency) points.

    Used when profiles come from a real measurement campaign instead of the synthetic
    tables; extrapolates linearly beyond the last point using the final segment slope.
    """

    batch_points: Tuple[float, ...]
    latency_points_ms: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.batch_points) != len(self.latency_points_ms):
            raise ValueError("batch_points and latency_points_ms must have equal length")
        if len(self.batch_points) < 2:
            raise ValueError("need at least two profile points")
        b = np.asarray(self.batch_points, dtype=float)
        if np.any(np.diff(b) <= 0):
            raise ValueError("batch_points must be strictly increasing")
        lat = np.asarray(self.latency_points_ms, dtype=float)
        if np.any(lat <= 0):
            raise ValueError("latency points must be positive")

    def latency_ms(self, batch_size: ArrayLike):
        batch = np.asarray(batch_size, dtype=float)
        b = np.asarray(self.batch_points, dtype=float)
        lat = np.asarray(self.latency_points_ms, dtype=float)
        result = np.interp(batch, b, lat)
        # linear extrapolation beyond the last measured batch size
        beyond = batch > b[-1]
        if np.any(beyond):
            slope = (lat[-1] - lat[-2]) / (b[-1] - b[-2])
            result = np.where(beyond, lat[-1] + slope * (batch - b[-1]), result)
        if np.isscalar(batch_size) or np.ndim(batch_size) == 0:
            return float(result)
        return result

    @classmethod
    def from_linear(
        cls, profile: LinearLatencyProfile, batches: Iterable[int]
    ) -> "TabulatedLatencyProfile":
        """Sample a linear profile at the given batch sizes (testing helper)."""
        pts = sorted(set(int(b) for b in batches))
        return cls(
            batch_points=tuple(float(b) for b in pts),
            latency_points_ms=tuple(float(profile.latency_ms(b)) for b in pts),
        )


class ProfileRegistry:
    """Lookup of latency profiles keyed by (model name, instance type name).

    The registry also carries the instance catalog and the model registry so that the
    Kairos planner and the simulator can derive QoS cutoffs, base-type identification and
    standalone throughputs without re-plumbing those objects separately.
    """

    def __init__(
        self,
        profiles: Mapping[Tuple[str, str], LatencyProfile],
        catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG,
        models: ModelRegistry = DEFAULT_MODEL_REGISTRY,
    ):
        self._catalog = catalog
        self._models = models
        self._profiles: Dict[Tuple[str, str], LatencyProfile] = dict(profiles)
        for (model_name, type_name) in self._profiles:
            if model_name not in models:
                raise KeyError(f"profile references unknown model {model_name!r}")
            if type_name not in catalog:
                raise KeyError(f"profile references unknown instance type {type_name!r}")

    # -- accessors -----------------------------------------------------------------
    @property
    def catalog(self) -> InstanceCatalog:
        return self._catalog

    @property
    def models(self) -> ModelRegistry:
        return self._models

    def has_profile(self, model: Union[str, MLModel], instance_type: Union[str, InstanceType]) -> bool:
        return (_name(model), _name(instance_type)) in self._profiles

    def profile(
        self, model: Union[str, MLModel], instance_type: Union[str, InstanceType]
    ) -> LatencyProfile:
        key = (_name(model), _name(instance_type))
        try:
            return self._profiles[key]
        except KeyError:
            raise KeyError(f"no latency profile for model={key[0]!r} on type={key[1]!r}") from None

    def latency_ms(
        self,
        model: Union[str, MLModel],
        instance_type: Union[str, InstanceType],
        batch_size: ArrayLike,
    ):
        """Latency of a query of ``batch_size`` on ``instance_type`` for ``model``."""
        return self.profile(model, instance_type).latency_ms(batch_size)

    def items(self):
        return self._profiles.items()

    # -- derived quantities used by the Kairos math ---------------------------------
    def qos_cutoff_batch(
        self, model: Union[str, MLModel], instance_type: Union[str, InstanceType]
    ) -> int:
        """Largest batch size the type can serve within the model's QoS (``s`` in Sec. 5.2)."""
        mdl = self._resolve_model(model)
        return self.profile(mdl, instance_type).max_feasible_batch(mdl.qos_ms, mdl.max_batch_size)

    def is_base_feasible(self, model: Union[str, MLModel], instance_type: Union[str, InstanceType]) -> bool:
        """True when the type meets QoS for every batch size up to the model maximum."""
        mdl = self._resolve_model(model)
        return self.qos_cutoff_batch(mdl, instance_type) >= mdl.max_batch_size

    def feasible_base_types(self, model: Union[str, MLModel]) -> List[InstanceType]:
        """All catalog types able to serve the model's largest query within QoS."""
        return [t for t in self._catalog.types if self.is_base_feasible(model, t)]

    def standalone_qps(
        self,
        model: Union[str, MLModel],
        instance_type: Union[str, InstanceType],
        batch_sizes: Sequence[int],
        *,
        respect_qos: bool = True,
    ) -> float:
        """Average queries/second one instance sustains back-to-back on the given mix.

        ``respect_qos=True`` (the default and what the paper's ``Q_a`` uses) restricts the
        mix to the batch sizes the type can serve within QoS; if none are feasible the
        standalone throughput is 0, matching the paper's observation that an auxiliary
        type "cannot serve standalone".
        """
        mdl = self._resolve_model(model)
        batches = np.asarray(batch_sizes, dtype=float)
        if batches.size == 0:
            return 0.0
        if respect_qos:
            cutoff = self.qos_cutoff_batch(mdl, instance_type)
            batches = batches[batches <= cutoff]
            if batches.size == 0:
                return 0.0
        lat = np.asarray(self.profile(mdl, instance_type).latency_ms(batches), dtype=float)
        mean_latency_ms = float(np.mean(lat))
        if mean_latency_ms <= 0:
            raise ValueError("profile produced non-positive latency")
        return 1000.0 / mean_latency_ms

    def pearson_batch_latency(
        self,
        model: Union[str, MLModel],
        instance_type: Union[str, InstanceType],
        batch_sizes: Sequence[int],
    ) -> float:
        """Pearson correlation between batch size and latency over ``batch_sizes``.

        The paper reports > 0.99 for every pair; this is the check the calibration tests
        apply to the synthetic profiles.
        """
        batches = np.asarray(batch_sizes, dtype=float)
        if batches.size < 2 or np.all(batches == batches[0]):
            raise ValueError("need at least two distinct batch sizes")
        lat = np.asarray(self.profile(model, instance_type).latency_ms(batches), dtype=float)
        return float(np.corrcoef(batches, lat)[0, 1])

    # -- mutation helpers ------------------------------------------------------------
    def with_profile(
        self,
        model: Union[str, MLModel],
        instance_type: Union[str, InstanceType],
        profile: LatencyProfile,
    ) -> "ProfileRegistry":
        """Return a copy of the registry with one profile replaced."""
        profiles = dict(self._profiles)
        profiles[(_name(model), _name(instance_type))] = profile
        return ProfileRegistry(profiles, catalog=self._catalog, models=self._models)

    def restrict_to_model(self, model: Union[str, MLModel]) -> "ProfileRegistry":
        """Return a registry holding only the profiles of ``model``."""
        name = _name(model)
        profiles = {k: v for k, v in self._profiles.items() if k[0] == name}
        if not profiles:
            raise KeyError(f"no profiles registered for model {name!r}")
        return ProfileRegistry(profiles, catalog=self._catalog, models=self._models)

    def _resolve_model(self, model: Union[str, MLModel]) -> MLModel:
        if isinstance(model, MLModel):
            return model
        return self._models[model]


def _name(obj: Union[str, MLModel, InstanceType]) -> str:
    return obj if isinstance(obj, str) else obj.name


def default_profile_registry(
    catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG,
    models: ModelRegistry = DEFAULT_MODEL_REGISTRY,
) -> ProfileRegistry:
    """The calibrated synthetic profile registry used by all experiments.

    Defined here (rather than in ``profile_data``) so that callers only ever need this
    module; the coefficient table itself lives in :mod:`repro.cloud.profile_data`.
    """
    from repro.cloud.profile_data import build_default_profiles

    return ProfileRegistry(build_default_profiles(), catalog=catalog, models=models)
