"""Spot-market model: discounted, preemptible capacity alongside on-demand rental.

Real clouds sell a second price axis the paper's budget constraint ignores: *spot*
(preemptible) instances at a 60-90% discount that the provider may reclaim at any time
after a short warning.  This module models that market per instance type:

* a **discount** off the on-demand price (the quantity the risk-aware planner trades
  against reliability);
* a **preemption process** — a Poisson hazard per commissioned instance-hour,
  optionally modulated by cyclic :class:`SpotMarketPhase` windows (capacity-tight hours
  reclaim more aggressively), from which the simulator draws each instance's
  time-to-preemption;
* a **warning window** — the grace period between the reclaim notice and the kill,
  during which a preemption-tolerant controller drains and re-provisions.

The planner consumes the market through :meth:`SpotTypeMarket.expected_availability`:
the expected fraction of a planning horizon an instance survives before its first
preemption, ``E[min(X, T)] / T`` for ``X ~ Exp(hazard)`` — the factor by which spot
capacity is discounted when ranking mixed on-demand+spot configurations.  The
simulator consumes it through :meth:`SpotMarket.draw_preemption_delay_ms`, whose draws
come from a dedicated generator so enabling the market never perturbs service-time
noise streams (seed stability).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.billing import MS_PER_HOUR
from repro.cloud.instances import InstanceCatalog, InstanceType
from repro.utils.validation import check_non_negative, check_positive

#: Market labels used for billing attribution (``InstanceUsageLedger.cost_by_market``).
MARKET_ON_DEMAND = "on-demand"
MARKET_SPOT = "spot"


@dataclass(frozen=True)
class SpotMarketPhase:
    """One cyclic window modulating a type's preemption hazard *and* spot price.

    A sequence of phases repeats over trace time (total cycle length = sum of
    durations), multiplying the base hazard by ``hazard_multiplier`` and the base
    spot price by ``price_multiplier`` inside each window — capacity-tight hours
    both reclaim spot more aggressively and erode the discount, exactly the
    coupled dynamic real spot markets show.
    """

    duration_ms: float
    hazard_multiplier: float = 1.0
    price_multiplier: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.duration_ms, "duration_ms")
        check_non_negative(self.hazard_multiplier, "hazard_multiplier")
        check_positive(self.price_multiplier, "price_multiplier")


@dataclass(frozen=True)
class SpotTypeMarket:
    """The spot offering of one instance type.

    Attributes
    ----------
    type_name:
        Catalog instance type this offering discounts.
    discount:
        Fraction off the on-demand price, in ``[0, 1)`` (0.7 = spot costs 30%).
    preemptions_per_hour:
        Base Poisson hazard per commissioned instance (0 = never preempted; the
        zero-hazard market is the byte-identity case of the preemption simulator).
    phases:
        Optional cyclic hazard modulation windows; empty = constant hazard.
    """

    type_name: str
    discount: float
    preemptions_per_hour: float = 0.0
    phases: Tuple[SpotMarketPhase, ...] = ()

    def __post_init__(self) -> None:
        if not self.type_name:
            raise ValueError("type_name must be non-empty")
        if not 0.0 <= self.discount < 1.0:
            raise ValueError(f"discount must lie in [0, 1), got {self.discount}")
        check_non_negative(self.preemptions_per_hour, "preemptions_per_hour")
        object.__setattr__(self, "phases", tuple(self.phases))

    @property
    def price_multiplier(self) -> float:
        """Spot price as a fraction of the on-demand price."""
        return 1.0 - self.discount

    def hazard_at(self, t_ms: float) -> float:
        """Instantaneous preemption hazard (per instance-hour) at trace time ``t_ms``."""
        if not self.phases:
            return self.preemptions_per_hour
        return self.preemptions_per_hour * self._phase_at(t_ms).hazard_multiplier

    def _phase_at(self, t_ms: float) -> SpotMarketPhase:
        cycle = sum(p.duration_ms for p in self.phases)
        offset = float(t_ms) % cycle
        for phase in self.phases:
            if offset < phase.duration_ms:
                return phase
            offset -= phase.duration_ms
        return self.phases[-1]

    def price_multiplier_at(self, t_ms: float) -> float:
        """The billed spot fraction of the on-demand price at trace time ``t_ms``."""
        if not self.phases:
            return self.price_multiplier
        return self.price_multiplier * self._phase_at(t_ms).price_multiplier

    def price_schedule(self) -> Optional[Tuple[Tuple[float, float], ...]]:
        """The cyclic ``(duration_ms, effective_multiplier)`` price schedule.

        ``None`` when the spot price is constant over the cycle (no phases, or
        every phase keeps ``price_multiplier == 1``) — billing then stays on the
        scalar fast path, byte-identical to the pre-phase ledger math.
        """
        if not self.phases or all(p.price_multiplier == 1.0 for p in self.phases):
            return None
        return tuple(
            (p.duration_ms, self.price_multiplier * p.price_multiplier)
            for p in self.phases
        )

    def mean_hazard_per_hour(self) -> float:
        """Duration-weighted mean hazard over one phase cycle (= base without phases)."""
        if not self.phases:
            return self.preemptions_per_hour
        cycle = sum(p.duration_ms for p in self.phases)
        weighted = sum(p.duration_ms * p.hazard_multiplier for p in self.phases)
        return self.preemptions_per_hour * weighted / cycle

    def expected_availability(self, horizon_ms: float) -> float:
        """Expected fraction of ``[0, horizon_ms]`` an instance survives unpreempted.

        ``E[min(X, T)] / T = (1 - exp(-lam*T)) / (lam*T)`` for time-to-preemption
        ``X ~ Exp(lam)`` at the cycle-mean hazard.  This is the capacity discount the
        risk-aware planner applies to spot bounds: it ignores re-provisioning (the
        controller's job), so it is conservative about what the market alone delivers.
        """
        check_non_negative(horizon_ms, "horizon_ms")
        lam_t = self.mean_hazard_per_hour() * horizon_ms / MS_PER_HOUR
        if lam_t <= 0.0 or horizon_ms == 0.0:
            return 1.0
        return (1.0 - math.exp(-lam_t)) / lam_t


class SpotMarket:
    """The spot offerings of a heterogeneous pool, keyed by instance-type name.

    Parameters
    ----------
    offerings:
        Per-type :class:`SpotTypeMarket` entries (mapping or sequence).  Types without
        an entry are on-demand only.
    warning_ms:
        Grace period between a preemption warning and the kill — the window a warned
        instance has for deadline-bounded draining.
    """

    def __init__(
        self,
        offerings: Union[Mapping[str, SpotTypeMarket], Sequence[SpotTypeMarket]],
        *,
        warning_ms: float = 2_000.0,
    ):
        check_non_negative(warning_ms, "warning_ms")
        if isinstance(offerings, Mapping):
            entries = list(offerings.values())
            for name, market in offerings.items():
                if name != market.type_name:
                    raise ValueError(
                        f"offering keyed {name!r} describes type {market.type_name!r}"
                    )
        else:
            entries = list(offerings)
        names = [m.type_name for m in entries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate spot offerings: {names}")
        self._offerings: Dict[str, SpotTypeMarket] = {m.type_name: m for m in entries}
        self.warning_ms = float(warning_ms)

    @classmethod
    def uniform(
        cls,
        catalog: InstanceCatalog,
        *,
        discount: float = 0.7,
        preemptions_per_hour: float = 0.0,
        phases: Sequence[SpotMarketPhase] = (),
        warning_ms: float = 2_000.0,
    ) -> "SpotMarket":
        """One identical offering per catalog type (the common evaluation market)."""
        return cls(
            [
                SpotTypeMarket(
                    type_name=t.name,
                    discount=discount,
                    preemptions_per_hour=preemptions_per_hour,
                    phases=tuple(phases),
                )
                for t in catalog.types
            ],
            warning_ms=warning_ms,
        )

    # -- container protocol --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._offerings)

    def __iter__(self) -> Iterator[SpotTypeMarket]:
        return iter(self._offerings.values())

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._offerings

    def __getitem__(self, type_name: str) -> SpotTypeMarket:
        try:
            return self._offerings[type_name]
        except KeyError:
            raise KeyError(
                f"no spot offering for {type_name!r}; offered: {self.type_names}"
            ) from None

    @property
    def type_names(self) -> List[str]:
        """Offered type names (insertion order)."""
        return list(self._offerings)

    def offers(self, type_name: str) -> bool:
        return type_name in self._offerings

    # -- planner surface -----------------------------------------------------------------
    def price_multiplier(self, type_name: str) -> float:
        return self[type_name].price_multiplier

    def price_schedule(self, type_name: str) -> Optional[Tuple[Tuple[float, float], ...]]:
        """The type's cyclic price schedule (``None`` when its spot price is constant)."""
        return self[type_name].price_schedule()

    def spot_price_per_hour(self, itype: InstanceType) -> float:
        """Discounted $/hr of one instance type."""
        return itype.price_per_hour * self[itype.name].price_multiplier

    def expected_availability(self, type_name: str, horizon_ms: float) -> float:
        return self[type_name].expected_availability(horizon_ms)

    # -- simulator surface ---------------------------------------------------------------
    def draw_preemption_delay_ms(
        self, type_name: str, now_ms: float, rng: np.random.Generator
    ) -> Optional[float]:
        """Sample the time until this instance's preemption warning, or ``None``.

        ``None`` means the hazard at ``now_ms`` is zero — no preemption is ever
        scheduled and, crucially, *no random draw is consumed*, so a zero-hazard
        market leaves every random stream byte-identical to a spot-free run.
        The draw uses the hazard at commissioning time (a piecewise-stationary
        approximation of the phased process).
        """
        hazard = self[type_name].hazard_at(now_ms)
        if hazard <= 0.0:
            return None
        return float(rng.exponential(MS_PER_HOUR / hazard))
