"""Hypothesis strategies over the scenario space.

Every strategy is bounded so a drawn scenario simulates in well under a second:
phases are sized by *offered query count* (duration is derived from the drawn count
and rate), streams are capped at two phases, clusters at a few instances per type.
Shrinking therefore moves toward few queries, one phase, one instance — minimal
counterexamples by construction.

``scenario_specs()`` draws across all five serving loops; per-loop strategies are
exposed for targeted properties.  All strategies draw only spec-level data, never
live numpy state, so every example is reproducible from its ``seed`` field alone.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from hypothesis import strategies as st

from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG
from repro.fuzz.spec import (
    CATALOG_SIZE,
    AdmissionSpec,
    BurstSpec,
    FaultSpec,
    HealthSpec,
    HedgeSpec,
    PhaseSpec,
    PipelineSpec,
    RetrySpec,
    ScaleEventSpec,
    ScenarioSpec,
    SpotSpec,
    StageSpec,
    StormSpec,
    StreamSpec,
)

#: Models the fuzzer serves (kept to the fast-profile pair so examples stay cheap).
FUZZ_MODELS: Tuple[str, ...] = ("RM2", "WND")

_TYPE_NAMES = tuple(DEFAULT_INSTANCE_CATALOG.names)


@st.composite
def phase_specs(draw, max_queries: int = 50) -> PhaseSpec:
    """One load phase, sized by offered query count rather than raw duration."""
    shape = draw(st.sampled_from(("step", "ramp", "spike", "diurnal")))
    rate = draw(st.floats(min_value=20.0, max_value=120.0, allow_nan=False))
    n_queries = draw(st.integers(min_value=5, max_value=max_queries))
    duration = max(250.0, n_queries / rate * 1000.0)
    factor = draw(st.floats(min_value=0.5, max_value=2.5, allow_nan=False))
    return PhaseSpec(shape=shape, rate_qps=rate, duration_ms=duration, factor=factor)


@st.composite
def stream_specs(
    draw,
    model_names: Sequence[str] = FUZZ_MODELS,
    max_queries: int = 60,
) -> StreamSpec:
    n_phases = draw(st.integers(min_value=1, max_value=2))
    phases = tuple(
        draw(phase_specs(max_queries=max_queries // n_phases)) for _ in range(n_phases)
    )
    return StreamSpec(
        model_name=draw(st.sampled_from(tuple(model_names))),
        phases=phases,
        batch_median=draw(st.floats(min_value=20.0, max_value=160.0, allow_nan=False)),
        batch_sigma=draw(st.floats(min_value=0.6, max_value=1.4, allow_nan=False)),
        arrival=draw(st.sampled_from(("poisson", "deterministic", "bursty"))),
        burst_size=draw(st.integers(min_value=2, max_value=6)),
    )


@st.composite
def config_vectors(draw, min_total: int = 1, max_per_type: int = 2) -> Tuple[int, ...]:
    counts = tuple(
        draw(st.integers(min_value=0, max_value=max_per_type))
        for _ in range(CATALOG_SIZE)
    )
    if sum(counts) < min_total:
        # Guarantee serving capacity: fall back to one accelerator instance.
        counts = (1,) + counts[1:]
    return counts


def _seeds() -> st.SearchStrategy[int]:
    return st.integers(min_value=0, max_value=2**20)


def _noise() -> st.SearchStrategy[float]:
    return st.one_of(
        st.just(0.0), st.floats(min_value=0.01, max_value=0.2, allow_nan=False)
    )


@st.composite
def scale_event_specs(draw, duration_ms: float) -> ScaleEventSpec:
    return ScaleEventSpec(
        time_ms=draw(st.floats(min_value=0.0, max_value=duration_ms, allow_nan=False)),
        action=draw(st.sampled_from(("up", "down"))),
        type_name=draw(st.sampled_from(_TYPE_NAMES)),
        count=draw(st.integers(min_value=1, max_value=2)),
    )


def _hazard() -> st.SearchStrategy[float]:
    """A per-hour hazard hot enough to fire inside short scenarios, or off."""
    return st.one_of(
        st.just(0.0),
        st.floats(min_value=60.0, max_value=3600.0, allow_nan=False),
    )


@st.composite
def fault_specs(draw, duration_ms: float, gray: bool = False) -> FaultSpec:
    """Crash/slowdown hazards scaled so faults actually fire inside short scenarios.

    ``gray=True`` additionally draws the gray-failure hazards (permanent
    degradations, flaky windows, zombie onsets), each independently off or hot.
    """
    n_storms = draw(st.integers(min_value=0, max_value=2))
    storms = tuple(
        StormSpec(
            time_ms=draw(
                st.floats(min_value=0.0, max_value=duration_ms, allow_nan=False)
            ),
            count=draw(st.integers(min_value=1, max_value=3)),
        )
        for _ in range(n_storms)
    )
    gray_fields: dict = {}
    if gray:
        gray_fields = dict(
            degradations_per_hour=draw(_hazard()),
            degradation_factor=draw(
                st.floats(min_value=1.5, max_value=5.0, allow_nan=False)
            ),
            flaky_per_hour=draw(_hazard()),
            flaky_factor=draw(st.floats(min_value=1.0, max_value=4.0, allow_nan=False)),
            flaky_duration_ms=draw(
                st.floats(min_value=50.0, max_value=1_000.0, allow_nan=False)
            ),
            zombies_per_hour=draw(_hazard()),
        )
    return FaultSpec(
        failures_per_hour=draw(_hazard()),
        slowdowns_per_hour=draw(_hazard()),
        slowdown_factor=draw(st.floats(min_value=1.0, max_value=4.0, allow_nan=False)),
        slowdown_duration_ms=draw(
            st.floats(min_value=50.0, max_value=1_000.0, allow_nan=False)
        ),
        storms=storms,
        auto_replace=draw(st.booleans()),
        **gray_fields,
    )


@st.composite
def retry_specs(draw, duration_ms: float) -> RetrySpec:
    return RetrySpec(
        max_attempts=draw(st.integers(min_value=1, max_value=4)),
        backoff_base_ms=draw(st.floats(min_value=1.0, max_value=200.0, allow_nan=False)),
        backoff_factor=draw(st.floats(min_value=1.0, max_value=3.0, allow_nan=False)),
        # Deadlines tight enough to trip on slow instances but not on every dispatch.
        response_timeout_ms=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=200.0, max_value=2_000.0, allow_nan=False),
            )
        ),
    )


@st.composite
def admission_specs(draw) -> AdmissionSpec:
    initial = draw(st.integers(min_value=2, max_value=64))
    return AdmissionSpec(
        target_latency_ms=draw(
            st.floats(min_value=100.0, max_value=1_000.0, allow_nan=False)
        ),
        initial_concurrency=initial,
        min_concurrency=draw(st.integers(min_value=1, max_value=min(4, initial))),
        max_concurrency=draw(st.integers(min_value=initial, max_value=256)),
        shed_backlog_factor=draw(
            st.floats(min_value=1.5, max_value=8.0, allow_nan=False)
        ),
        smoothing=draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False)),
    )


@st.composite
def health_specs(draw) -> HealthSpec:
    """Health scoring / breaker knobs, with probation short enough to fire in-scenario."""
    return HealthSpec(
        ewma_alpha=draw(st.floats(min_value=0.1, max_value=1.0, allow_nan=False)),
        degrade_ratio=draw(st.floats(min_value=1.3, max_value=4.0, allow_nan=False)),
        min_samples=draw(st.integers(min_value=1, max_value=8)),
        suspicion_threshold=draw(
            st.floats(min_value=0.5, max_value=3.0, allow_nan=False)
        ),
        overdue_grace_factor=draw(
            st.floats(min_value=1.5, max_value=5.0, allow_nan=False)
        ),
        probation_ms=draw(st.floats(min_value=200.0, max_value=5_000.0, allow_nan=False)),
        probation_backoff=draw(st.floats(min_value=1.0, max_value=3.0, allow_nan=False)),
        probe_successes=draw(st.integers(min_value=1, max_value=3)),
    )


@st.composite
def hedge_specs(draw) -> HedgeSpec:
    """Hedged-dispatch knobs, aggressive enough to actually duplicate attempts."""
    return HedgeSpec(
        quantile=draw(st.floats(min_value=0.5, max_value=0.98, allow_nan=False)),
        delay_factor=draw(st.floats(min_value=1.05, max_value=3.0, allow_nan=False)),
        min_samples=draw(st.integers(min_value=2, max_value=16)),
    )


@st.composite
def _chaos_fields(
    draw, duration_ms: float, with_faults: bool, gray: bool = False
) -> dict:
    """The chaos dimensions as kwargs; each independently present or absent.

    ``gray=True`` (elastic-family loops only) additionally draws gray fault
    hazards plus the health/hedge layers.  A drawn zombie hazard without a
    recovery path (no health layer, no retry response timeout) forces the
    health layer on — the spec space never admits a hang-forever scenario.
    """
    fields: dict = {}
    if with_faults and draw(st.booleans()):
        fields["faults"] = draw(fault_specs(duration_ms, gray=gray))
    if draw(st.booleans()):
        fields["retry"] = draw(retry_specs(duration_ms))
    if draw(st.booleans()):
        fields["admission"] = draw(admission_specs())
    if gray and with_faults:
        if draw(st.booleans()):
            fields["health"] = draw(health_specs())
        if draw(st.booleans()):
            fields["hedge"] = draw(hedge_specs())
        faults = fields.get("faults")
        retry = fields.get("retry")
        if (
            faults is not None
            and faults.zombies_per_hour > 0.0
            and "health" not in fields
            and (retry is None or retry.response_timeout_ms is None)
        ):
            fields["health"] = draw(health_specs())
    return fields


@st.composite
def static_scenarios(draw, chaos: bool = False) -> ScenarioSpec:
    stream = draw(stream_specs())
    return ScenarioSpec(
        loop="static",
        streams=(stream,),
        config_counts=(draw(config_vectors()),),
        seed=draw(_seeds()),
        noise_std=draw(_noise()),
        online_learning=draw(st.booleans()),
        warmup_queries=draw(st.integers(min_value=0, max_value=3)),
        max_queries_per_round=draw(st.sampled_from((8, 16, 64))),
        # static clusters cannot re-provision: retry/admission only, never faults
        **(draw(_chaos_fields(stream.duration_ms, with_faults=False)) if chaos else {}),
    )


@st.composite
def elastic_scenarios(
    draw, with_events: bool = True, chaos: bool = False, gray: bool = False
) -> ScenarioSpec:
    stream = draw(stream_specs())
    n_events = draw(st.integers(min_value=0, max_value=2)) if with_events else 0
    events = tuple(
        draw(scale_event_specs(stream.duration_ms)) for _ in range(n_events)
    )
    return ScenarioSpec(
        loop="elastic",
        streams=(stream,),
        config_counts=(draw(config_vectors()),),
        seed=draw(_seeds()),
        noise_std=draw(_noise()),
        online_learning=draw(st.booleans()),
        use_controller=draw(st.booleans()),
        budget_per_hour=draw(st.floats(min_value=1.5, max_value=5.0, allow_nan=False)),
        startup_delay_ms=draw(st.floats(min_value=50.0, max_value=800.0, allow_nan=False)),
        warmup_queries=draw(st.integers(min_value=0, max_value=3)),
        max_queries_per_round=draw(st.sampled_from((8, 16, 64))),
        scale_events=events,
        **(
            draw(_chaos_fields(stream.duration_ms, with_faults=True, gray=gray))
            if chaos
            else {}
        ),
    )


@st.composite
def spot_specs(draw, config: Tuple[int, ...], duration_ms: float) -> SpotSpec:
    spot_counts = tuple(
        draw(st.integers(min_value=0, max_value=c)) for c in config
    )
    n_bursts = draw(st.integers(min_value=0, max_value=2))
    bursts = tuple(
        BurstSpec(
            time_ms=draw(
                st.floats(min_value=0.0, max_value=duration_ms, allow_nan=False)
            ),
            count=draw(st.integers(min_value=1, max_value=3)),
        )
        for _ in range(n_bursts)
    )
    return SpotSpec(
        discount=draw(st.floats(min_value=0.3, max_value=0.9, allow_nan=False)),
        # Hazards far above real markets so preemptions actually fire inside the
        # few seconds a fuzz scenario simulates.
        preemptions_per_hour=draw(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=60.0, max_value=3600.0, allow_nan=False),
            )
        ),
        warning_ms=draw(st.floats(min_value=0.0, max_value=500.0, allow_nan=False)),
        spot_counts=spot_counts,
        bursts=bursts,
    )


@st.composite
def spot_scenarios(draw, chaos: bool = False, gray: bool = False) -> ScenarioSpec:
    stream = draw(stream_specs())
    config = draw(config_vectors())
    return ScenarioSpec(
        loop="spot",
        streams=(stream,),
        config_counts=(config,),
        seed=draw(_seeds()),
        noise_std=draw(_noise()),
        online_learning=draw(st.booleans()),
        use_controller=draw(st.booleans()),
        budget_per_hour=draw(st.floats(min_value=1.5, max_value=5.0, allow_nan=False)),
        startup_delay_ms=draw(st.floats(min_value=50.0, max_value=800.0, allow_nan=False)),
        warmup_queries=draw(st.integers(min_value=0, max_value=2)),
        max_queries_per_round=draw(st.sampled_from((8, 16, 64))),
        spot=draw(spot_specs(config, stream.duration_ms)),
        **(
            draw(_chaos_fields(stream.duration_ms, with_faults=True, gray=gray))
            if chaos
            else {}
        ),
    )


@st.composite
def multi_model_scenarios(draw, chaos: bool = False, gray: bool = False) -> ScenarioSpec:
    n_models = draw(st.integers(min_value=1, max_value=2))
    names = draw(
        st.permutations(FUZZ_MODELS).map(lambda p: tuple(p[:n_models]))
    )
    streams = tuple(
        draw(stream_specs(model_names=(name,), max_queries=40)) for name in names
    )
    duration = max(s.duration_ms for s in streams)
    return ScenarioSpec(
        loop="multi_model",
        streams=streams,
        config_counts=tuple(draw(config_vectors()) for _ in streams),
        seed=draw(_seeds()),
        noise_std=draw(_noise()),
        online_learning=draw(st.booleans()),
        startup_delay_ms=draw(st.floats(min_value=50.0, max_value=800.0, allow_nan=False)),
        warmup_queries=draw(st.integers(min_value=0, max_value=2)),
        max_queries_per_round=draw(st.sampled_from((8, 16, 64))),
        sharded=draw(st.booleans()),
        **(
            draw(_chaos_fields(duration, with_faults=True, gray=gray))
            if chaos
            else {}
        ),
    )


def _stage_batches(draw) -> int:
    return draw(st.integers(min_value=4, max_value=64))


@st.composite
def pipeline_specs(
    draw,
    model_names: Sequence[str] = FUZZ_MODELS,
    duration_ms: float = 1_000.0,
) -> PipelineSpec:
    """One DAG: a chain, a fan-out/fan-in, or a diamond, with a mixed deadline.

    Deadlines span comfortable to hopeless so both arms of graph-aware admission
    (serve vs shed-whole-graph) are exercised; releases land inside the streams'
    span so stages contend with standalone load.
    """
    names = tuple(model_names)

    def stage(name: str, parents: Tuple[str, ...] = ()) -> StageSpec:
        return StageSpec(
            name=name,
            model_name=draw(st.sampled_from(names)),
            batch_size=_stage_batches(draw),
            parents=parents,
        )

    shape = draw(st.sampled_from(("chain", "fan", "diamond")))
    if shape == "chain":
        n = draw(st.integers(min_value=2, max_value=4))
        stages = [stage("s0")]
        stages.extend(stage(f"s{i}", (f"s{i - 1}",)) for i in range(1, n))
    elif shape == "diamond":
        stages = [
            stage("src"),
            stage("left", ("src",)),
            stage("right", ("src",)),
            stage("sink", ("left", "right")),
        ]
    else:  # fan-out / fan-in
        k = draw(st.integers(min_value=2, max_value=3))
        stages = [stage("src")]
        stages.extend(stage(f"b{i}", ("src",)) for i in range(k))
        stages.append(stage("sink", tuple(f"b{i}" for i in range(k))))
    return PipelineSpec(
        stages=tuple(stages),
        deadline_ms=draw(st.floats(min_value=200.0, max_value=6_000.0, allow_nan=False)),
        value=draw(st.floats(min_value=0.5, max_value=3.0, allow_nan=False)),
        release_ms=draw(st.floats(min_value=0.0, max_value=duration_ms, allow_nan=False)),
    )


@st.composite
def pipeline_scenarios(draw, chaos: bool = False, gray: bool = False) -> ScenarioSpec:
    n_models = draw(st.integers(min_value=1, max_value=2))
    names = draw(st.permutations(FUZZ_MODELS).map(lambda p: tuple(p[:n_models])))
    streams = tuple(
        draw(stream_specs(model_names=(name,), max_queries=30)) for name in names
    )
    duration = max(s.duration_ms for s in streams)
    n_pipes = draw(st.integers(min_value=1, max_value=3))
    pipelines = tuple(
        draw(pipeline_specs(model_names=names, duration_ms=duration))
        for _ in range(n_pipes)
    )
    return ScenarioSpec(
        loop="pipeline",
        streams=streams,
        config_counts=tuple(draw(config_vectors()) for _ in streams),
        seed=draw(_seeds()),
        noise_std=draw(_noise()),
        online_learning=draw(st.booleans()),
        startup_delay_ms=draw(st.floats(min_value=50.0, max_value=800.0, allow_nan=False)),
        warmup_queries=draw(st.integers(min_value=0, max_value=2)),
        max_queries_per_round=draw(st.sampled_from((8, 16, 64))),
        sharded=draw(st.booleans()),
        pipelines=pipelines,
        **(
            draw(_chaos_fields(duration, with_faults=True, gray=gray))
            if chaos
            else {}
        ),
    )


def scenario_specs(
    loop: Optional[str] = None, *, chaos: bool = False, gray: bool = False
) -> st.SearchStrategy[ScenarioSpec]:
    """Scenarios across all loops, or restricted to one loop.

    ``chaos=True`` additionally draws the fault/retry/admission dimensions (each
    independently present or absent), so a chaos campaign still covers the
    fault-free corner.  ``gray=True`` (implies nothing without ``chaos``) widens
    the fault dimension with gray hazards and the health/hedge layers on the
    elastic-family loops.
    """
    by_loop = {
        "static": static_scenarios(chaos=chaos),
        "elastic": elastic_scenarios(chaos=chaos, gray=gray),
        "multi_model": multi_model_scenarios(chaos=chaos, gray=gray),
        "spot": spot_scenarios(chaos=chaos, gray=gray),
        "pipeline": pipeline_scenarios(chaos=chaos, gray=gray),
    }
    if loop is not None:
        return by_loop[loop]
    return st.one_of(*by_loop.values())


def budget_ladders(
    min_budget: float = 1.0, max_budget: float = 6.0
) -> st.SearchStrategy[Tuple[float, ...]]:
    """Sorted budget lists for the QoS-monotonicity invariant."""
    return (
        st.lists(
            st.floats(min_value=min_budget, max_value=max_budget, allow_nan=False),
            min_size=2,
            max_size=4,
            unique=True,
        )
        .map(lambda bs: tuple(sorted(bs)))
    )
