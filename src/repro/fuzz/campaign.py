"""Offline fuzzing campaigns: budgeted random sweeps with shrink-and-serialize.

``run_campaign`` drives hypothesis over the scenario space for a bounded number of
examples, checking every per-run invariant on each drawn scenario (and, optionally,
the expensive derived identities).  When a scenario violates an invariant,
hypothesis shrinks it; the *minimal* failing spec is serialized to JSON so it can
be replayed (``replay_spec_files``), debugged, and — once fixed — graduated into
``tests/regression/`` as a committed deterministic regression scenario.

``tools/fuzz.py`` is a thin CLI over this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from hypothesis import HealthCheck, given, seed as hypothesis_seed, settings

from repro.fuzz.invariants import (
    Violation,
    check_fault_determinism,
    check_spot_disabled_identity,
)
from repro.fuzz.runner import run_scenario
from repro.fuzz.spec import ScenarioSpec
from repro.fuzz.strategies import scenario_specs


@dataclass
class CampaignFailure:
    """One invariant-violating scenario (already shrunk to minimal by hypothesis)."""

    spec: ScenarioSpec
    violations: List[Violation]
    saved_to: Optional[Path] = None


@dataclass
class CampaignReport:
    """Outcome of one fuzzing campaign."""

    budget: int
    executions: int
    elapsed_s: float
    failures: List[CampaignFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _check_spec(spec: ScenarioSpec, *, derived: bool) -> List[Violation]:
    """All applicable invariant violations for one spec; crashes become findings.

    Every spec the space admits must run clean — including ones whose arrival
    windows produce zero queries (the simulators treat an empty stream as a valid
    no-op).  Any exception *is* a finding — the harness must survive every
    scenario the spec space admits.
    """
    try:
        violations = list(run_scenario(spec).violations)
        if derived and spec.loop == "spot":
            violations.extend(check_spot_disabled_identity(spec))
        if derived and (
            spec.faults or spec.retry or spec.admission or spec.health or spec.hedge
        ):
            violations.extend(check_fault_determinism(spec))
    except Exception as exc:  # noqa: BLE001 - crashes are findings, not aborts
        return [Violation("crash", f"{type(exc).__name__}: {exc}")]
    return violations


def run_campaign(
    budget: int = 200,
    *,
    loop: Optional[str] = None,
    seed: Optional[int] = None,
    derived: bool = False,
    chaos: bool = False,
    gray: bool = False,
    out_dir: Optional[Path] = None,
) -> CampaignReport:
    """Fuzz up to ``budget`` scenarios; shrink and serialize any invariant violation.

    Hypothesis re-executes the minimal counterexample last, so after a failing
    campaign the final entry of the failure log is the shrunk spec — that is the
    one written to ``out_dir`` (as ``fuzz-<invariant>-seed<seed>.json``).
    """
    observed: List[Tuple[ScenarioSpec, List[Violation]]] = []
    executions = [0]
    started = time.perf_counter()

    @settings(
        max_examples=budget,
        database=None,
        deadline=None,
        suppress_health_check=list(HealthCheck),
        print_blob=False,
    )
    @given(spec=scenario_specs(loop, chaos=chaos or gray, gray=gray))
    def campaign(spec: ScenarioSpec) -> None:
        executions[0] += 1
        violations = _check_spec(spec, derived=derived)
        if violations:
            observed.append((spec, violations))
            raise AssertionError("; ".join(str(v) for v in violations))

    if seed is not None:
        campaign = hypothesis_seed(seed)(campaign)

    report = CampaignReport(budget=budget, executions=0, elapsed_s=0.0)
    try:
        campaign()
    except AssertionError:
        # The last observed failure is hypothesis's minimal shrunk example.
        spec, violations = observed[-1]
        failure = CampaignFailure(spec=spec, violations=violations)
        if out_dir is not None:
            inv = violations[0].invariant
            failure.saved_to = spec.save(
                Path(out_dir) / f"fuzz-{inv}-seed{spec.seed}.json"
            )
        report.failures.append(failure)
    report.executions = executions[0]
    report.elapsed_s = time.perf_counter() - started
    return report


def replay_spec_files(
    paths: Sequence[Path], *, derived: bool = False
) -> List[CampaignFailure]:
    """Replay saved scenario specs; returns the (hopefully empty) failure list."""
    failures: List[CampaignFailure] = []
    for path in paths:
        spec = ScenarioSpec.load(path)
        violations = _check_spec(spec, derived=derived)
        if violations:
            failures.append(
                CampaignFailure(spec=spec, violations=violations, saved_to=Path(path))
            )
    return failures
