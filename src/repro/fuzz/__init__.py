"""Scenario-space fuzzer and invariant harness for every serving loop.

Module map
----------
``spec``
    Declarative :class:`ScenarioSpec` — arrival processes x load phases x model
    mixes x spot markets x preemption bursts x noise, JSON-round-trippable, one
    frozen value per fuzzable scenario.
``runner``
    ``run_scenario``: spec (or ingested trace) in, :class:`ScenarioResult` out —
    builds the workload, cluster, policy, market, and controller, runs the right
    simulator with the policy wrapped in a :class:`RecordingPolicy` event-loop
    recorder, and produces canonical ``result_digest`` values.
``invariants``
    The machine-checkable invariant library (:data:`ALL_INVARIANTS`): per-run
    conservation/causality/billing checks via ``check_run`` plus derived checks
    (QoS monotone in budget, spot-disabled byte-identity, PYTHONHASHSEED
    independence).
``strategies``
    Bounded hypothesis strategies over the scenario space, shrinking toward
    minimal scenarios; drive ``tests/property/test_property_scenarios.py``.
``campaign``
    Offline fuzzing campaigns behind ``tools/fuzz.py``: budgeted random sweeps
    that shrink failures and serialize them as JSON regression scenarios.

Committed counterexamples and seeded hard cases live in ``tests/regression/`` and
are replayed every CI run by the ``fuzz-smoke`` stage of ``tools/ci.sh``.
"""

from repro.fuzz.invariants import (
    ALL_INVARIANTS,
    Violation,
    check_fault_determinism,
    check_hashseed_independence,
    check_qos_monotone_in_budget,
    check_run,
    check_spot_disabled_identity,
)
from repro.fuzz.runner import (
    RecordingPolicy,
    ScenarioResult,
    SchedulingRound,
    build_queries,
    digest_spec,
    result_digest,
    run_scenario,
)
from repro.fuzz.spec import (
    AdmissionSpec,
    BurstSpec,
    FaultSpec,
    PhaseSpec,
    RetrySpec,
    ScaleEventSpec,
    ScenarioSpec,
    SpotSpec,
    StormSpec,
    StreamSpec,
)

__all__ = [
    "ALL_INVARIANTS",
    "Violation",
    "check_run",
    "check_qos_monotone_in_budget",
    "check_spot_disabled_identity",
    "check_hashseed_independence",
    "check_fault_determinism",
    "RecordingPolicy",
    "ScenarioResult",
    "SchedulingRound",
    "build_queries",
    "digest_spec",
    "result_digest",
    "run_scenario",
    "ScenarioSpec",
    "StreamSpec",
    "PhaseSpec",
    "ScaleEventSpec",
    "SpotSpec",
    "BurstSpec",
    "FaultSpec",
    "StormSpec",
    "RetrySpec",
    "AdmissionSpec",
]
