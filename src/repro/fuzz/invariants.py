"""Machine-checkable system invariants over scenario runs.

Two families:

* **Per-run invariants** inspect one :class:`~repro.fuzz.runner.ScenarioResult`
  (its report, ledger, and the event-loop recording) and must hold for *every*
  scenario on *every* loop: ``query_conservation``, ``completion_causality``,
  ``round_separation``, ``budget_conservation``, ``ledger_partition_exactness``.
  ``check_run`` evaluates all of them and returns the violations.

* **Derived invariants** relate multiple runs or processes:
  ``qos_monotone_in_budget`` (planner-level QoS bound nondecreasing in budget),
  ``spot_disabled_identity`` (a market-less spot simulation is byte-identical to the
  elastic one; a zero-hazard market changes billing but not one service outcome),
  and ``hashseed_independence`` (run digests agree across PYTHONHASHSEED values,
  via subprocess re-execution).

Every invariant is registered in :data:`ALL_INVARIANTS` so docs, the fuzz CLI, and
the coverage meta-test stay in sync with the code.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys
import tempfile
from collections import Counter
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.billing import MS_PER_HOUR
from repro.fuzz.spec import ScenarioSpec
from repro.sim.engine import TIME_EPSILON_MS

#: Relative/absolute tolerance for re-derived float aggregates (fsum vs fsum-of-groups).
_REL = 1e-9
_EXACT = 1e-12


@dataclass(frozen=True)
class Violation:
    """One invariant failure, carrying enough context to debug without the run."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


#: name -> (kind, one-line description).  ``run`` invariants apply to every single
#: scenario result; ``derived`` invariants compare runs / processes / budgets.
ALL_INVARIANTS: Dict[str, Tuple[str, str]] = {
    "query_conservation": (
        "run",
        "no query is lost or double-served, even across preemption re-queues",
    ),
    "completion_causality": (
        "run",
        "completion >= start >= arrival for every record; cumulative completions "
        "never exceed cumulative arrivals at any instant",
    ),
    "round_separation": (
        "run",
        "consecutive scheduling rounds are separated by more than TIME_EPSILON_MS "
        "(equal-instant event clusters coalesce into one round)",
    ),
    "budget_conservation": (
        "run",
        "billing intervals sit inside [0, horizon], never overlap per server, "
        "match commissioning events one-to-one, and integrate to the ledger total",
    ),
    "ledger_partition_exactness": (
        "run",
        "per-tag, per-market, and per-type cost partitions each sum to the total; "
        "discount savings equal full price minus charged price",
    ),
    "outcome_conservation": (
        "run",
        "every arrival ends exactly one of served / shed / dead-lettered / "
        "unserved, and the four counts balance the offered total",
    ),
    "failure_billing": (
        "run",
        "crashed instances are never billed past the failure instant; the "
        "failed/healthy cost partition sums exactly to the total bill",
    ),
    "retry_bounded": (
        "run",
        "no query is attempted more often than the retry budget allows; dead "
        "letters exhaust the budget exactly",
    ),
    "stage_precedence": (
        "run",
        "no pipeline stage starts before every parent stage has completed, and "
        "every released successor arrives exactly at its release instant",
    ),
    "graph_conservation": (
        "run",
        "every released task graph resolves as a unit: its stage partition "
        "(served / shed / dead / unserved / unreleased) balances the stage count "
        "and agrees with the graph's terminal outcome label",
    ),
    "hedge_exactly_once": (
        "run",
        "every hedge race resolves exactly once: each launched duplicate is "
        "cancelled or wins, no query is served twice, and a hedge-free spec "
        "records zero hedge activity",
    ),
    "gray_billing_partition": (
        "run",
        "the failed/quarantine/hedge/healthy attribution partition sums exactly "
        "to the ledger total; buckets are zero when their dimension is off",
    ),
    "probation_liveness": (
        "run",
        "quarantine/probation/close entries follow the breaker state machine "
        "per server, and at least one accepting server always remains",
    ),
    "qos_monotone_in_budget": (
        "derived",
        "the planner's selected QoS-satisfying throughput bound is nondecreasing "
        "in the budget",
    ),
    "spot_disabled_identity": (
        "derived",
        "spot loop without a market is byte-identical to the elastic loop; a "
        "zero-hazard market leaves the service stream untouched",
    ),
    "hashseed_independence": (
        "derived",
        "run digests are identical across PYTHONHASHSEED values (subprocess check)",
    ),
    "fault_determinism": (
        "derived",
        "chaos runs are byte-identical per seed on re-execution; zero-hazard "
        "fault injection leaves the run untouched",
    ),
}


# ---------------------------------------------------------------------------------------
# Per-run invariants
# ---------------------------------------------------------------------------------------

def check_query_conservation(result) -> List[Violation]:
    """No query lost, none double-served — the re-queue accounting invariant."""
    out: List[Violation] = []
    name = "query_conservation"
    submitted = {q.query_id for q in result.queries}
    completed = Counter(rec.query.query_id for rec in result.completions)

    doubles = [qid for qid, n in completed.items() if n > 1]
    if doubles:
        out.append(Violation(name, f"queries completed more than once: {sorted(doubles)[:10]}"))
    ghosts = sorted(set(completed) - submitted)
    if ghosts:
        out.append(Violation(name, f"completed queries never submitted: {ghosts[:10]}"))

    report = result.report
    if len(result.completions) != report.dispatched_queries:
        out.append(
            Violation(
                name,
                f"{len(result.completions)} recorded completions but the report "
                f"counts {report.dispatched_queries} standing dispatches",
            )
        )

    assigned = Counter(qid for r in result.rounds for qid in r.assigned_ids)
    unassigned = sorted(qid for qid in completed if assigned[qid] < completed[qid])
    if unassigned:
        out.append(Violation(name, f"queries completed more often than assigned: {unassigned[:10]}"))
    spec = result.spec
    may_reassign = (
        spec.loop == "spot" or spec.faults is not None or spec.retry is not None
    )
    if not may_reassign:
        reassigned = sorted(qid for qid, n in assigned.items() if n > 1)
        if reassigned:
            out.append(
                Violation(
                    name,
                    f"queries dispatched more than once without preemption or retry: "
                    f"{reassigned[:10]}",
                )
            )

    if getattr(report, "completed_all", report.dispatched_queries == report.total_queries):
        lost = sorted(submitted - set(completed))
        if lost:
            out.append(
                Violation(
                    name,
                    f"report claims all queries served but {len(lost)} never "
                    f"completed: {lost[:10]}",
                )
            )
    return out


def check_completion_causality(result) -> List[Violation]:
    """Temporal sanity of every record, plus completions <= arrivals at all instants."""
    out: List[Violation] = []
    name = "completion_causality"
    for rec in result.completions:
        q = rec.query
        if rec.completion_ms < rec.start_ms - _EXACT:
            out.append(
                Violation(name, f"query {q.query_id} completed before it started")
            )
        if rec.start_ms < q.arrival_time_ms - 1e-6:
            out.append(
                Violation(
                    name,
                    f"query {q.query_id} started {q.arrival_time_ms - rec.start_ms:.6f}ms "
                    "before it arrived",
                )
            )
        if rec.service_ms < 0:
            out.append(Violation(name, f"query {q.query_id} has negative service time"))

    # Merge arrivals (+1) and completions (-1); arrivals sort first at equal times.
    timeline = [(q.arrival_time_ms, 0) for q in result.queries]
    timeline.extend((rec.completion_ms, 1) for rec in result.completions)
    timeline.sort()
    in_flight = 0
    for t, kind in timeline:
        in_flight += 1 if kind == 0 else -1
        if in_flight < 0:
            out.append(
                Violation(
                    name,
                    f"cumulative completions exceed cumulative arrivals at t={t:.3f}ms",
                )
            )
            break

    times = [r.time_ms for r in result.rounds]
    if any(b < a for a, b in zip(times, times[1:])):
        out.append(Violation(name, "scheduling-round times are not nondecreasing"))
    return out


def check_round_separation(result) -> List[Violation]:
    """Equal-instant coalescing: no two rounds within TIME_EPSILON_MS of each other."""
    times = [r.time_ms for r in result.rounds]
    for a, b in zip(times, times[1:]):
        if b - a <= TIME_EPSILON_MS:
            return [
                Violation(
                    "round_separation",
                    f"scheduling rounds at {a!r} and {b!r} are within the "
                    f"{TIME_EPSILON_MS} equal-instant window",
                )
            ]
    return []


def _commissioned_instances(result) -> Optional[int]:
    """Initial fleet + every scale-up, from the report's scale log (None = no log)."""
    report = result.report
    scale_log = getattr(report, "scale_log", None)
    if scale_log is None:
        return None
    initial = len(result.spec.config_counts[0]) and sum(
        sum(counts) for counts in result.spec.config_counts
    )
    ups = sum(e.count for e in scale_log if e.kind == "scale_up")
    return initial + ups


def check_budget_conservation(result) -> List[Violation]:
    """The ledger is a conservative account of exactly the capacity that existed."""
    ledger = result.ledger
    if ledger is None:
        return []
    out: List[Violation] = []
    name = "budget_conservation"
    horizon = float(getattr(result.report, "billing_horizon_ms", 0.0))

    def _end(iv) -> float:
        return iv.end_ms if iv.end_ms is not None else horizon

    by_server: Dict[int, List] = {}
    for iv in ledger.intervals:
        if _end(iv) < iv.start_ms:
            out.append(
                Violation(name, f"server {iv.server_id} interval ends before it starts")
            )
        if iv.start_ms < -_EXACT or _end(iv) > horizon + _EXACT:
            out.append(
                Violation(
                    name,
                    f"server {iv.server_id} billed [{iv.start_ms}, {iv.end_ms}] outside "
                    f"the horizon [0, {horizon}]",
                )
            )
        by_server.setdefault(iv.server_id, []).append(iv)
    for sid, ivs in by_server.items():
        ivs = sorted(ivs, key=lambda iv: iv.start_ms)
        for a, b in zip(ivs, ivs[1:]):
            if b.start_ms < _end(a) - _EXACT:
                out.append(
                    Violation(name, f"server {sid} has overlapping billing intervals")
                )
                break

    expected = _commissioned_instances(result)
    if expected is not None and len(ledger.intervals) != expected:
        out.append(
            Violation(
                name,
                f"{len(ledger.intervals)} billing intervals but "
                f"{expected} instances were commissioned (initial fleet + scale-ups)",
            )
        )

    def _rate_integral(iv, t0: float, t1: float) -> float:
        """Independently integrate the billed $/hr over ``[t0, t1)`` of one interval.

        Phased spot intervals carry a cyclic price schedule; the re-derivation walks
        it segment by segment from time 0 rather than trusting the ledger's own
        prefix-difference integral.
        """
        a = max(iv.start_ms, t0)
        b = min(_end(iv), t1)
        if b <= a:
            return 0.0
        if iv.price_schedule is None:
            return iv.effective_price_per_hour * (b - a) / MS_PER_HOUR
        acc = 0.0
        t = 0.0
        phases = list(iv.price_schedule)
        i = 0
        while t < b:
            duration, multiplier = phases[i % len(phases)]
            seg_end = t + duration
            lo, hi = max(t, a), min(seg_end, b)
            if hi > lo:
                acc += iv.price_per_hour * multiplier * (hi - lo) / MS_PER_HOUR
            t = seg_end
            i += 1
        return acc

    total = ledger.total_cost(horizon)
    rederived = math.fsum(
        _rate_integral(iv, 0.0, horizon)
        for iv in ledger.intervals
        if _end(iv) > iv.start_ms
    )
    if not math.isclose(total, rederived, rel_tol=_REL, abs_tol=_REL):
        out.append(
            Violation(
                name,
                f"ledger total {total} != re-derived interval integral {rederived}",
            )
        )

    if horizon > 0:
        mid = horizon / 2.0

        def window_cost(t0: float, t1: float) -> float:
            return math.fsum(_rate_integral(iv, t0, t1) for iv in ledger.intervals)

        split = window_cost(0.0, mid) + window_cost(mid, horizon)
        if not math.isclose(total, split, rel_tol=_REL, abs_tol=_REL):
            out.append(
                Violation(
                    name,
                    f"cost is not additive over windows: total {total} != "
                    f"[0,mid] + [mid,horizon] = {split}",
                )
            )
    return out


def check_ledger_partition_exactness(result) -> List[Violation]:
    """Every way of slicing the bill sums back to the same total."""
    ledger = result.ledger
    if ledger is None:
        return []
    out: List[Violation] = []
    name = "ledger_partition_exactness"
    horizon = float(getattr(result.report, "billing_horizon_ms", 0.0))
    total = ledger.total_cost(horizon)

    partitions = {
        "cost_by_tag": ledger.cost_by_tag(horizon),
        "cost_by_type": ledger.cost_by_type(horizon),
        "cost_by_market": ledger.cost_by_market(horizon),
    }
    for label, parts in partitions.items():
        part_sum = math.fsum(parts.values())
        if not math.isclose(part_sum, total, rel_tol=_EXACT, abs_tol=_EXACT):
            out.append(
                Violation(
                    name,
                    f"{label} sums to {part_sum!r} but the ledger total is {total!r}",
                )
            )

    savings = ledger.discount_savings(horizon)
    full_price = math.fsum(
        iv.price_per_hour * iv.overlap_ms(0.0, horizon) / MS_PER_HOUR
        for iv in ledger.intervals
    )
    if not math.isclose(savings, full_price - total, rel_tol=_REL, abs_tol=_REL):
        out.append(
            Violation(
                name,
                f"discount savings {savings} != full price {full_price} - total {total}",
            )
        )
    return out


def check_outcome_conservation(result) -> List[Violation]:
    """Every arrival ends exactly one way; the terminal counts balance the total."""
    out: List[Violation] = []
    name = "outcome_conservation"
    report = result.report
    total = report.total_queries
    served_ids = Counter(rec.query.query_id for rec in result.completions)
    shed = getattr(report, "shed_queries", [])
    dead = getattr(report, "dead_letters", [])
    unserved = getattr(report, "unserved_queries", 0)

    served = len(result.completions)
    balance = served + len(shed) + len(dead) + unserved
    if balance != total and not getattr(report, "early_stopped", False):
        out.append(
            Violation(
                name,
                f"served {served} + shed {len(shed)} + dead {len(dead)} + "
                f"unserved {unserved} = {balance}, but {total} queries were offered",
            )
        )

    shed_ids = Counter(e.query.query_id for e in shed)
    dead_ids = Counter(e.query.query_id for e in dead)
    for label, ids in (("shed", shed_ids), ("dead-lettered", dead_ids)):
        doubles = sorted(qid for qid, n in ids.items() if n > 1)
        if doubles:
            out.append(Violation(name, f"queries {label} more than once: {doubles[:10]}"))
    for a, b, la, lb in (
        (served_ids, shed_ids, "served", "shed"),
        (served_ids, dead_ids, "served", "dead-lettered"),
        (shed_ids, dead_ids, "shed", "dead-lettered"),
    ):
        both = sorted(set(a) & set(b))
        if both:
            out.append(Violation(name, f"queries both {la} and {lb}: {both[:10]}"))
    return out


def check_failure_billing(result) -> List[Violation]:
    """Crashes stop the meter at the failure instant; the failure partition is exact."""
    ledger = result.ledger
    if ledger is None:
        return []
    out: List[Violation] = []
    name = "failure_billing"
    report = result.report
    horizon = float(getattr(report, "billing_horizon_ms", 0.0))
    scale_log = getattr(report, "scale_log", ()) or ()
    failure_times = sorted(e.time_ms for e in scale_log if e.kind == "instance_failed")

    failed_intervals = [iv for iv in ledger.intervals if getattr(iv, "failed", False)]
    if failed_intervals and not failure_times:
        out.append(
            Violation(name, "failed billing intervals exist but no failures were logged")
        )
    for iv in failed_intervals:
        if iv.end_ms is None:
            out.append(
                Violation(
                    name,
                    f"server {iv.server_id} crashed but its billing interval is "
                    "still open (billed to the horizon)",
                )
            )
            continue
        if not any(abs(iv.end_ms - t) <= _EXACT for t in failure_times):
            out.append(
                Violation(
                    name,
                    f"server {iv.server_id} billing ends at {iv.end_ms!r}, which is "
                    f"not any logged failure instant {failure_times[:10]}",
                )
            )

    n_failures = sum(e.count for e in scale_log if e.kind == "instance_failed")
    if len(failed_intervals) != n_failures:
        out.append(
            Violation(
                name,
                f"{n_failures} instance failures logged but {len(failed_intervals)} "
                "billing intervals are marked failed",
            )
        )

    by_failure = ledger.cost_by_failure(horizon)
    total = ledger.total_cost(horizon)
    part_sum = math.fsum(by_failure.values())
    if not math.isclose(part_sum, total, rel_tol=_EXACT, abs_tol=_EXACT):
        out.append(
            Violation(
                name,
                f"cost_by_failure sums to {part_sum!r} but the ledger total is {total!r}",
            )
        )
    if not math.isclose(
        ledger.cost_of_failures(horizon),
        by_failure.get(True, 0.0),
        rel_tol=_EXACT,
        abs_tol=_EXACT,
    ):
        out.append(Violation(name, "cost_of_failures disagrees with the partition"))
    return out


def check_retry_bounded(result) -> List[Violation]:
    """Attempt counts never exceed the retry budget; dead letters exhaust it."""
    out: List[Violation] = []
    name = "retry_bounded"
    spec = result.spec
    max_attempts = spec.retry.max_attempts if spec.retry is not None else 1
    report = result.report
    dead = getattr(report, "dead_letters", [])

    # In the spot loop, announced preemptions re-queue outside the retry budget, so
    # assignment counts are only budget-bounded on the unannounced-failure loops.
    if spec.loop != "spot":
        assigned = Counter(qid for r in result.rounds for qid in r.assigned_ids)
        over = sorted(qid for qid, n in assigned.items() if n > max_attempts)
        if over:
            out.append(
                Violation(
                    name,
                    f"queries dispatched more than max_attempts={max_attempts} "
                    f"times: {over[:10]}",
                )
            )

    for entry in dead:
        if entry.attempts > max_attempts:
            out.append(
                Violation(
                    name,
                    f"query {entry.query.query_id} dead-lettered after "
                    f"{entry.attempts} attempts (budget {max_attempts})",
                )
            )
    if spec.retry is not None:
        under = [e.query.query_id for e in dead if e.attempts < max_attempts]
        if under:
            out.append(
                Violation(
                    name,
                    f"queries dead-lettered before exhausting the budget: {under[:10]}",
                )
            )
    elif dead:
        # No retry policy: a voided attempt dead-letters immediately (1 attempt).
        weird = [e.query.query_id for e in dead if e.attempts != 1]
        if weird:
            out.append(
                Violation(
                    name,
                    f"dead letters without a retry policy should record exactly one "
                    f"attempt: {weird[:10]}",
                )
            )

    retries = getattr(report, "retries", 0)
    if retries and spec.retry is None:
        out.append(Violation(name, f"{retries} retries recorded without a retry policy"))
    return out


def check_stage_precedence(result) -> List[Violation]:
    """Causality along DAG edges: child stages wait for all parents, exactly."""
    coordinator = getattr(result, "coordinator", None)
    if coordinator is None or not coordinator.active:
        return []
    out: List[Violation] = []
    name = "stage_precedence"
    by_qid = {rec.query.query_id: rec for rec in result.completions}
    for runtime in coordinator.runtimes:
        graph = runtime.graph
        for stage in graph.stages:
            query = runtime.queries[stage.name]
            rec = by_qid.get(query.query_id)
            if rec is not None:
                for parent in stage.parents:
                    done = runtime.served.get(parent)
                    if done is None:
                        out.append(
                            Violation(
                                name,
                                f"graph {graph.graph_id} stage {stage.name!r} served "
                                f"but parent {parent!r} never completed",
                            )
                        )
                    elif rec.start_ms < done - 1e-6:
                        out.append(
                            Violation(
                                name,
                                f"graph {graph.graph_id} stage {stage.name!r} started "
                                f"at {rec.start_ms!r}, before parent {parent!r} "
                                f"completed at {done!r}",
                            )
                        )
            if not stage.parents:
                if abs(query.arrival_time_ms - graph.release_ms) > 1e-6:
                    out.append(
                        Violation(
                            name,
                            f"graph {graph.graph_id} source {stage.name!r} arrives at "
                            f"{query.arrival_time_ms!r}, not the release instant "
                            f"{graph.release_ms!r}",
                        )
                    )
            elif stage.name in runtime.released and all(
                p in runtime.served for p in stage.parents
            ):
                release_instant = max(runtime.served[p] for p in stage.parents)
                if abs(query.arrival_time_ms - release_instant) > 1e-6:
                    out.append(
                        Violation(
                            name,
                            f"graph {graph.graph_id} stage {stage.name!r} arrives at "
                            f"{query.arrival_time_ms!r}, not its release instant "
                            f"{release_instant!r} (last parent completion)",
                        )
                    )
    return out


def check_graph_conservation(result) -> List[Violation]:
    """Released graphs resolve as units; per-graph stage partitions are exact."""
    outcomes = getattr(result, "graph_outcomes", ())
    if not outcomes:
        return []
    out: List[Violation] = []
    name = "graph_conservation"
    backlogged = getattr(result.report, "unserved_queries", 0) > 0
    for o in outcomes:
        balance = (
            o.served_stages
            + o.shed_stages
            + o.dead_stages
            + o.unserved_stages
            + o.unreleased_stages
        )
        if balance != o.stages:
            out.append(
                Violation(
                    name,
                    f"graph {o.graph_id}: served {o.served_stages} + shed "
                    f"{o.shed_stages} + dead {o.dead_stages} + unserved "
                    f"{o.unserved_stages} + unreleased {o.unreleased_stages} = "
                    f"{balance}, but the graph has {o.stages} stages",
                )
            )
        if o.outcome == "served":
            if o.served_stages != o.stages:
                out.append(
                    Violation(
                        name,
                        f"graph {o.graph_id} labelled served with only "
                        f"{o.served_stages}/{o.stages} stages served",
                    )
                )
        elif o.outcome == "dead":
            if o.dead_stages < 1:
                out.append(
                    Violation(
                        name, f"graph {o.graph_id} labelled dead with no dead stage"
                    )
                )
        elif o.outcome == "shed":
            if o.dead_stages:
                out.append(
                    Violation(
                        name,
                        f"graph {o.graph_id} labelled shed despite "
                        f"{o.dead_stages} dead-lettered stages (dead dominates)",
                    )
                )
            if o.shed_stages + o.unreleased_stages < 1:
                out.append(
                    Violation(
                        name,
                        f"graph {o.graph_id} labelled shed but no stage was shed "
                        "or withheld",
                    )
                )
        elif o.outcome == "unserved":
            if o.shed_stages or o.dead_stages or o.served_stages == o.stages:
                out.append(
                    Violation(
                        name,
                        f"graph {o.graph_id} labelled unserved with partition "
                        f"({o.served_stages}, {o.shed_stages}, {o.dead_stages})",
                    )
                )
        else:
            out.append(
                Violation(name, f"graph {o.graph_id} has unknown outcome {o.outcome!r}")
            )
        # A terminal graph resolves as a unit: nothing lingers in the backlog
        # (unless the whole run quiesced with a backlog it never drained).
        if o.outcome in ("served", "shed", "dead") and o.unserved_stages and not backlogged:
            out.append(
                Violation(
                    name,
                    f"graph {o.graph_id} is terminal ({o.outcome}) but "
                    f"{o.unserved_stages} released stages never resolved",
                )
            )

    coordinator = getattr(result, "coordinator", None)
    if coordinator is not None and coordinator.active:
        shed_ids = {e.query.query_id for e in getattr(result.report, "shed_queries", ())}
        dead_ids = {e.query.query_id for e in getattr(result.report, "dead_letters", ())}
        served_ids = Counter(rec.query.query_id for rec in result.completions)
        for runtime in coordinator.runtimes:
            gid = runtime.graph.graph_id
            overlap = (
                (set(runtime.served) & set(runtime.shed))
                | (set(runtime.served) & set(runtime.dead))
                | (set(runtime.shed) & set(runtime.dead))
            )
            if overlap:
                out.append(
                    Violation(
                        name,
                        f"graph {gid} stages with two terminal outcomes: "
                        f"{sorted(overlap)[:10]}",
                    )
                )
            for stage_name in runtime.shed:
                if runtime.queries[stage_name].query_id not in shed_ids:
                    out.append(
                        Violation(
                            name,
                            f"graph {gid} stage {stage_name!r} marked shed without a "
                            "shed entry in the report",
                        )
                    )
            for stage_name in runtime.dead:
                if runtime.queries[stage_name].query_id not in dead_ids:
                    out.append(
                        Violation(
                            name,
                            f"graph {gid} stage {stage_name!r} marked dead without a "
                            "dead-letter entry in the report",
                        )
                    )
            for stage_name in runtime.served:
                if served_ids[runtime.queries[stage_name].query_id] != 1:
                    out.append(
                        Violation(
                            name,
                            f"graph {gid} stage {stage_name!r} marked served without "
                            "exactly one completion record",
                        )
                    )
    return out


def check_hedge_exactly_once(result) -> List[Violation]:
    """Hedge races are zero-sum: one winner served, one loser cancelled and billed."""
    out: List[Violation] = []
    name = "hedge_exactly_once"
    report = result.report
    spec = result.spec
    launched = getattr(report, "hedges_launched", 0)
    cancelled = getattr(report, "hedges_cancelled", 0)
    wins = getattr(report, "hedge_wins", 0)

    if spec.hedge is None and (launched or cancelled or wins):
        out.append(
            Violation(
                name,
                f"hedge activity ({launched} launched, {cancelled} cancelled, "
                f"{wins} wins) recorded without a HedgeSpec",
            )
        )
    if launched != cancelled:
        out.append(
            Violation(
                name,
                f"{launched} hedges launched but {cancelled} cancelled — every "
                "race must resolve with exactly one loser",
            )
        )
    if wins > launched:
        out.append(
            Violation(name, f"{wins} hedge wins exceed {launched} launched hedges")
        )

    # Each query still completes at most once (the race's core exactly-once claim).
    doubles = sorted(
        qid
        for qid, n in Counter(rec.query.query_id for rec in result.completions).items()
        if n > 1
    )
    if doubles:
        out.append(
            Violation(name, f"queries served more than once under hedging: {doubles[:10]}")
        )

    ledger = result.ledger
    if ledger is not None:
        hedge_spans = [s for s in getattr(ledger, "spans", ()) if s.kind == "hedge"]
        if spec.hedge is None and hedge_spans:
            out.append(
                Violation(name, f"{len(hedge_spans)} hedge spans without a HedgeSpec")
            )
        if len(hedge_spans) > cancelled:
            out.append(
                Violation(
                    name,
                    f"{len(hedge_spans)} hedge billing spans exceed the "
                    f"{cancelled} cancelled hedges (at most one span per loser)",
                )
            )
        still_open = [s for s in hedge_spans if s.end_ms is None]
        if still_open:
            out.append(
                Violation(
                    name,
                    f"{len(still_open)} hedge spans left open — losers are "
                    "cancelled at a definite instant",
                )
            )
    return out


def check_gray_billing_partition(result) -> List[Violation]:
    """The gray attribution partition re-labels the bill without creating or losing cost."""
    ledger = result.ledger
    if ledger is None:
        return []
    out: List[Violation] = []
    name = "gray_billing_partition"
    spec = result.spec
    horizon = float(getattr(result.report, "billing_horizon_ms", 0.0))
    partition = ledger.attribution_partition(horizon)
    total = ledger.total_cost(horizon)

    part_sum = math.fsum(partition.values())
    if not math.isclose(part_sum, total, rel_tol=_EXACT, abs_tol=_EXACT):
        out.append(
            Violation(
                name,
                f"attribution partition sums to {part_sum!r} but the ledger "
                f"total is {total!r}",
            )
        )
    if not math.isclose(
        partition.get("failed", 0.0),
        ledger.cost_of_failures(horizon),
        rel_tol=_EXACT,
        abs_tol=_EXACT,
    ):
        out.append(
            Violation(
                name,
                "the attribution 'failed' bucket disagrees with cost_of_failures",
            )
        )
    for label, enabled in (
        ("quarantine", spec.health is not None),
        ("hedge", spec.hedge is not None),
        ("failed", spec.faults is not None or spec.loop == "spot"),
    ):
        if not enabled and partition.get(label, 0.0) != 0.0:
            out.append(
                Violation(
                    name,
                    f"attribution bucket {label!r} holds {partition[label]!r} "
                    "with its dimension disabled",
                )
            )
    return out


def check_probation_liveness(result) -> List[Violation]:
    """Breaker lifecycle entries are well-formed and never quarantine the whole fleet."""
    out: List[Violation] = []
    name = "probation_liveness"
    spec = result.spec
    report = result.report
    scale_log = getattr(report, "scale_log", ()) or ()
    lifecycle = [e for e in scale_log if e.kind in ("quarantine", "probation", "breaker_close")]

    if spec.health is None:
        if lifecycle:
            out.append(
                Violation(
                    name,
                    f"{len(lifecycle)} breaker lifecycle entries without a HealthSpec",
                )
            )
        ledger = result.ledger
        if ledger is not None and any(
            s.kind == "quarantine" for s in getattr(ledger, "spans", ())
        ):
            out.append(Violation(name, "quarantine billing spans without a HealthSpec"))
        return out

    # Per-server breaker state machine: closed -Q-> open -P-> half -C-> closed,
    # with half -Q-> open on a failed probe.  Crashed/decommissioned servers may
    # end in any state; they simply stop appearing.
    CLOSED, OPEN, HALF = 0, 1, 2
    state: Dict[int, int] = {}
    # Liveness bound: open breakers are distinct servers and the trip-time guard
    # keeps one accepting server, so net-open < everything ever commissioned.
    ever = sum(sum(counts) for counts in spec.config_counts)
    net_open = 0
    for e in scale_log:
        if e.kind == "scale_up":
            ever += e.count
            continue
        if e.kind not in ("quarantine", "probation", "breaker_close"):
            continue
        tag = e.reason.split(":", 1)[0]
        if not tag.startswith("server"):
            out.append(
                Violation(name, f"{e.kind} entry with unparseable reason {e.reason!r}")
            )
            continue
        sid = int(tag[len("server"):])
        current = state.get(sid, CLOSED)
        if e.kind == "quarantine":
            if current == OPEN:
                out.append(
                    Violation(
                        name, f"server {sid} quarantined while already quarantined"
                    )
                )
            state[sid] = OPEN
            net_open += 1
            if net_open >= ever:
                out.append(
                    Violation(
                        name,
                        f"all {ever} commissioned servers quarantined at "
                        f"t={e.time_ms!r} — no accepting server left for probes",
                    )
                )
        elif e.kind == "probation":
            if current != OPEN:
                out.append(
                    Violation(
                        name, f"server {sid} entered probation without being quarantined"
                    )
                )
            else:
                net_open -= 1
            state[sid] = HALF
        else:  # breaker_close
            if current != HALF:
                out.append(
                    Violation(
                        name, f"server {sid} closed its breaker without probation"
                    )
                )
            state[sid] = CLOSED
    return out


_RUN_CHECKS = (
    check_query_conservation,
    check_completion_causality,
    check_round_separation,
    check_budget_conservation,
    check_ledger_partition_exactness,
    check_outcome_conservation,
    check_failure_billing,
    check_retry_bounded,
    check_stage_precedence,
    check_graph_conservation,
    check_hedge_exactly_once,
    check_gray_billing_partition,
    check_probation_liveness,
)


def check_run(result) -> List[Violation]:
    """Evaluate every per-run invariant against one scenario result."""
    violations: List[Violation] = []
    for check in _RUN_CHECKS:
        violations.extend(check(result))
    return violations


# ---------------------------------------------------------------------------------------
# Derived invariants
# ---------------------------------------------------------------------------------------

def check_qos_monotone_in_budget(
    model_name: str,
    budgets: Sequence[float],
    *,
    seed: int = 0,
    n_samples: int = 400,
) -> List[Violation]:
    """More budget can never shrink the planner's QoS-satisfying throughput bound."""
    import numpy as np

    from repro.core.kairos import KairosPlanner
    from repro.fuzz.runner import _registry
    from repro.workload.batch_sizes import production_batch_distribution

    samples = production_batch_distribution().sample(
        n_samples, np.random.default_rng([seed, 7])
    )
    bounds = []
    for budget in sorted(budgets):
        plan = KairosPlanner(
            model_name, budget, profiles=_registry(), batch_samples=samples
        ).plan()
        bounds.append((budget, plan.selected_upper_bound))
    out: List[Violation] = []
    for (b1, u1), (b2, u2) in zip(bounds, bounds[1:]):
        if u2 < u1 - _REL * max(1.0, abs(u1)):
            out.append(
                Violation(
                    "qos_monotone_in_budget",
                    f"{model_name}: budget {b2}$/hr selects bound {u2} qps, below "
                    f"the {u1} qps selected at {b1}$/hr",
                )
            )
    return out


def check_spot_disabled_identity(spec: ScenarioSpec) -> List[Violation]:
    """Disabling the spot subsystem must not change anything it claims not to touch."""
    from repro.fuzz.runner import digest_spec

    if spec.loop != "spot":
        raise ValueError("spot_disabled_identity applies to spot-loop specs")
    out: List[Violation] = []
    elastic_twin = spec.without_spot()

    # market=None spot loop vs the plain elastic loop: byte-identical, billing included.
    market_off = replace(spec, spot=None)
    if digest_spec(market_off) != digest_spec(elastic_twin):
        out.append(
            Violation(
                "spot_disabled_identity",
                "spot loop with market=None diverges from the elastic loop "
                f"(spec {spec.label or spec.seed})",
            )
        )

    # Zero-hazard market: prices change, the service stream must not.
    if spec.spot is not None:
        calm = replace(
            spec,
            spot=replace(spec.spot, preemptions_per_hour=0.0, bursts=()),
        )
        if digest_spec(calm, include_billing=False) != digest_spec(
            elastic_twin, include_billing=False
        ):
            out.append(
                Violation(
                    "spot_disabled_identity",
                    "a zero-hazard spot market changed the service stream "
                    f"(spec {spec.label or spec.seed})",
                )
            )
    return out


def check_fault_determinism(spec: ScenarioSpec) -> List[Violation]:
    """Chaos must be reproducible: same seed, same run — and zero hazard, no effect."""
    from repro.fuzz.runner import digest_spec

    out: List[Violation] = []
    if digest_spec(spec) != digest_spec(spec):
        out.append(
            Violation(
                "fault_determinism",
                f"two runs of the same chaos spec diverge (spec {spec.label or spec.seed})",
            )
        )
    if spec.loop != "static" and spec.faults is None:
        from repro.fuzz.spec import FaultSpec

        # A zero-hazard injector draws nothing and scripts nothing: attaching it must
        # leave the run byte-identical to no injector at all.
        calm = replace(
            spec, faults=FaultSpec(failures_per_hour=0.0, slowdowns_per_hour=0.0)
        )
        if digest_spec(calm) != digest_spec(spec):
            out.append(
                Violation(
                    "fault_determinism",
                    "a zero-hazard fault injector changed the run "
                    f"(spec {spec.label or spec.seed})",
                )
            )
    return out


def _src_root() -> str:
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


def check_hashseed_independence(
    spec: ScenarioSpec, *, hash_seeds: Sequence[int] = (1, 3)
) -> List[Violation]:
    """Re-run the scenario under different PYTHONHASHSEED values; digests must agree."""
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "spec.json"
        spec.save(spec_path)
        digests = {}
        for hs in hash_seeds:
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = str(hs)
            env["PYTHONPATH"] = _src_root() + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-m", "repro.fuzz.runner", str(spec_path)],
                capture_output=True,
                text=True,
                env=env,
                check=False,
            )
            if proc.returncode != 0:
                return [
                    Violation(
                        "hashseed_independence",
                        f"subprocess run failed under PYTHONHASHSEED={hs}: "
                        f"{proc.stderr.strip()[-500:]}",
                    )
                ]
            digests[hs] = proc.stdout.strip()
    if len(set(digests.values())) > 1:
        return [
            Violation(
                "hashseed_independence",
                f"run digest depends on PYTHONHASHSEED: {digests}",
            )
        ]
    return []
