"""Declarative scenario space: one JSON-serializable spec drives any serving loop.

A :class:`ScenarioSpec` composes everything that defines a fuzzable serving scenario —
arrival processes x load phases x model mixes x cluster shapes x spot markets x
preemption bursts x service noise x scripted provisioning — into a frozen, hashable,
JSON-round-trippable value.  ``repro.fuzz.runner.run_scenario`` materializes a spec
into the right simulator (static / elastic / multi-model / spot) and the hypothesis
strategies in ``repro.fuzz.strategies`` draw random specs, so the same object is at
once the fuzzer's search point, the shrunk counterexample the campaign serializes,
and the committed regression scenario CI replays.

Everything inside a spec is plain data (no live numpy generators, no profile
objects): determinism comes from the single ``seed`` field, from which the runner
derives every random stream it needs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG

#: The five serving loops a spec can target (ROADMAP's simulator inventory).
LOOPS = ("static", "elastic", "multi_model", "spot", "pipeline")

#: Arrival-process names understood by :class:`StreamSpec`.
ARRIVALS = ("poisson", "deterministic", "bursty")

#: Phase shapes understood by :class:`PhaseSpec` (mirrors ``LoadPhase``'s constructors).
PHASE_SHAPES = ("step", "ramp", "spike", "diurnal")

#: Number of instance types in the (implicit) default catalog every spec refers to.
CATALOG_SIZE = len(DEFAULT_INSTANCE_CATALOG)


@dataclass(frozen=True)
class PhaseSpec:
    """One load phase: a shape, a base rate, and a duration.

    ``factor`` is the shape's single free parameter: the end/start rate ratio of a
    ramp, the burst multiplier of a spike, or the amplitude/mean ratio of a diurnal
    swing (clamped below 1 so the rate stays positive).  Steps ignore it.
    """

    shape: str = "step"
    rate_qps: float = 40.0
    duration_ms: float = 1_500.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.shape not in PHASE_SHAPES:
            raise ValueError(f"unknown phase shape {self.shape!r}; one of {PHASE_SHAPES}")
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def to_load_phase(self):
        """Materialize the corresponding :class:`~repro.workload.phases.LoadPhase`."""
        from repro.workload.phases import LoadPhase

        if self.shape == "step":
            return LoadPhase.step(self.rate_qps, self.duration_ms)
        if self.shape == "ramp":
            return LoadPhase.ramp(
                self.rate_qps, self.rate_qps * self.factor, self.duration_ms, segments=4
            )
        if self.shape == "spike":
            return LoadPhase.spike(
                self.rate_qps,
                self.duration_ms,
                spike_factor=max(1.0, self.factor),
                segments=6,
            )
        # diurnal: amplitude strictly below the mean keeps the rate positive
        amplitude = self.rate_qps * min(self.factor, 0.9)
        return LoadPhase.diurnal(self.rate_qps, amplitude, self.duration_ms, segments=6)

    @property
    def expected_queries(self) -> float:
        """Rough offered-query count of the phase (exact for steps)."""
        return self.rate_qps * self.duration_ms / 1000.0


@dataclass(frozen=True)
class StreamSpec:
    """One model's query stream: phases, batch-size mix, and arrival process."""

    model_name: str = "RM2"
    phases: Tuple[PhaseSpec, ...] = (PhaseSpec(),)
    batch_median: float = 80.0
    batch_sigma: float = 1.1
    arrival: str = "poisson"
    burst_size: int = 4

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a stream needs at least one phase")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"unknown arrival process {self.arrival!r}; one of {ARRIVALS}")
        if self.batch_median <= 0 or self.batch_sigma <= 0:
            raise ValueError("batch distribution parameters must be positive")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")

    @property
    def duration_ms(self) -> float:
        return sum(p.duration_ms for p in self.phases)

    @property
    def expected_queries(self) -> float:
        return sum(p.expected_queries for p in self.phases)


@dataclass(frozen=True)
class ScaleEventSpec:
    """A scripted provisioning action at an absolute scenario time."""

    time_ms: float
    action: str  # "up" | "down"
    type_name: str = "g4dn.xlarge"
    count: int = 1
    market: str = "on-demand"

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError("scale event time must be non-negative")
        if self.action not in ("up", "down"):
            raise ValueError(f"scale action must be 'up' or 'down', got {self.action!r}")
        if self.type_name not in DEFAULT_INSTANCE_CATALOG:
            raise ValueError(f"unknown instance type {self.type_name!r}")
        if self.count < 1:
            raise ValueError("scale event count must be >= 1")
        if self.market not in ("on-demand", "spot"):
            raise ValueError(f"unknown market {self.market!r}")


@dataclass(frozen=True)
class BurstSpec:
    """A scripted correlated preemption burst (spot loop only)."""

    time_ms: float
    count: int = 1
    type_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError("burst time must be non-negative")
        if self.count < 1:
            raise ValueError("burst count must be >= 1")
        if self.type_name is not None and self.type_name not in DEFAULT_INSTANCE_CATALOG:
            raise ValueError(f"unknown instance type {self.type_name!r}")


@dataclass(frozen=True)
class SpotSpec:
    """The spot-market dimension: discount, hazard, grace window, spot fleet, bursts.

    ``spot_counts`` designates how many instances of each catalog type (catalog
    order, like ``HeterogeneousConfig.counts``) of the *initial* cluster are bought
    on the spot market; it must fit inside the scenario's config counts.
    """

    discount: float = 0.65
    preemptions_per_hour: float = 0.0
    warning_ms: float = 200.0
    spot_counts: Tuple[int, ...] = (0,) * CATALOG_SIZE
    bursts: Tuple[BurstSpec, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 < self.discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        if self.preemptions_per_hour < 0:
            raise ValueError("preemptions_per_hour must be non-negative")
        if self.warning_ms < 0:
            raise ValueError("warning_ms must be non-negative")
        if len(self.spot_counts) != CATALOG_SIZE:
            raise ValueError(f"spot_counts must have {CATALOG_SIZE} entries")
        if any(c < 0 for c in self.spot_counts):
            raise ValueError("spot counts must be non-negative")


@dataclass(frozen=True)
class StormSpec:
    """A scripted correlated crash storm (unannounced; any elastic loop)."""

    time_ms: float
    count: int = 1
    type_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError("storm time must be non-negative")
        if self.count < 1:
            raise ValueError("storm count must be >= 1")
        if self.type_name is not None and self.type_name not in DEFAULT_INSTANCE_CATALOG:
            raise ValueError(f"unknown instance type {self.type_name!r}")


@dataclass(frozen=True)
class FaultSpec:
    """The unplanned-failure dimension: crash hazards, slowdowns, scripted storms.

    Unlike :class:`SpotSpec` preemptions, these failures arrive with *no* warning
    window: in-flight work on the victim is voided.  ``auto_replace`` re-provisions
    a like-for-like replacement when no controller is attached.

    The ``degradations/flaky/zombies`` trio is the *gray-failure* dimension
    (servers that misbehave without dying): permanent degradation onsets,
    intermittent flaky latency windows, and zombie servers that accept work but
    never complete it.  All three draw from the dedicated gray RNG substream
    (``[seed, 606]``), and all-zero hazards draw nothing — byte-identity with a
    gray-free run.
    """

    failures_per_hour: float = 0.0
    slowdowns_per_hour: float = 0.0
    slowdown_factor: float = 2.0
    slowdown_duration_ms: float = 30_000.0
    degradations_per_hour: float = 0.0
    degradation_factor: float = 3.0
    flaky_per_hour: float = 0.0
    flaky_factor: float = 2.5
    flaky_duration_ms: float = 500.0
    zombies_per_hour: float = 0.0
    storms: Tuple[StormSpec, ...] = ()
    auto_replace: bool = True

    def __post_init__(self) -> None:
        if self.failures_per_hour < 0:
            raise ValueError("failures_per_hour must be non-negative")
        if self.slowdowns_per_hour < 0:
            raise ValueError("slowdowns_per_hour must be non-negative")
        if self.slowdown_factor < 1.0:
            raise ValueError("slowdown_factor must be >= 1")
        if self.slowdown_duration_ms <= 0:
            raise ValueError("slowdown_duration_ms must be positive")
        if self.degradations_per_hour < 0:
            raise ValueError("degradations_per_hour must be non-negative")
        if self.degradation_factor < 1.0:
            raise ValueError("degradation_factor must be >= 1")
        if self.flaky_per_hour < 0:
            raise ValueError("flaky_per_hour must be non-negative")
        if self.flaky_factor < 1.0:
            raise ValueError("flaky_factor must be >= 1")
        if self.flaky_duration_ms <= 0:
            raise ValueError("flaky_duration_ms must be positive")
        if self.zombies_per_hour < 0:
            raise ValueError("zombies_per_hour must be non-negative")

    @property
    def has_gray(self) -> bool:
        """True when any gray mode (degradation, flaky, zombie) can fire."""
        return (
            self.degradations_per_hour > 0.0
            or self.flaky_per_hour > 0.0
            or self.zombies_per_hour > 0.0
        )


@dataclass(frozen=True)
class RetrySpec:
    """The retry/timeout dimension: per-attempt deadlines and bounded backoff."""

    max_attempts: int = 3
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    response_timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.response_timeout_ms is not None and self.response_timeout_ms <= 0:
            raise ValueError("response_timeout_ms must be positive")


@dataclass(frozen=True)
class AdmissionSpec:
    """The graceful-degradation dimension: adaptive concurrency + overload shedding."""

    target_latency_ms: float = 400.0
    initial_concurrency: int = 8
    min_concurrency: int = 1
    max_concurrency: int = 256
    shed_backlog_factor: float = 4.0
    smoothing: float = 0.3

    def __post_init__(self) -> None:
        if self.target_latency_ms <= 0:
            raise ValueError("target_latency_ms must be positive")
        if not 1 <= self.min_concurrency <= self.initial_concurrency <= self.max_concurrency:
            raise ValueError(
                "need 1 <= min_concurrency <= initial_concurrency <= max_concurrency"
            )
        if self.shed_backlog_factor < 1.0:
            raise ValueError("shed_backlog_factor must be >= 1")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must lie in (0, 1]")


@dataclass(frozen=True)
class HealthSpec:
    """The gray-failure detection dimension: health scoring + quarantine breakers.

    A declarative twin of :class:`repro.sim.health.HealthConfig`: EWMA latency
    scoring against the per-type fleet baseline, phi-accrual overdue suspicion,
    and the circuit-breaker quarantine/probation lifecycle.
    """

    ewma_alpha: float = 0.3
    degrade_ratio: float = 2.0
    min_samples: int = 4
    suspicion_threshold: float = 1.0
    overdue_grace_factor: float = 3.0
    probation_ms: float = 10_000.0
    probation_backoff: float = 2.0
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        if self.degrade_ratio <= 1.0:
            raise ValueError("degrade_ratio must be > 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.suspicion_threshold <= 0:
            raise ValueError("suspicion_threshold must be positive")
        if self.overdue_grace_factor <= 1.0:
            raise ValueError("overdue_grace_factor must be > 1")
        if self.probation_ms <= 0:
            raise ValueError("probation_ms must be positive")
        if self.probation_backoff < 1.0:
            raise ValueError("probation_backoff must be >= 1")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


@dataclass(frozen=True)
class HedgeSpec:
    """The hedged-dispatch dimension: tail-latency duplicate requests.

    A declarative twin of :class:`repro.sim.health.HedgePolicy`: an attempt
    outliving the per-type latency-quantile hedge delay is duplicated onto the
    best eligible idle server; first completion wins, the loser is cancelled
    with its partial work billed exactly.
    """

    quantile: float = 0.9
    delay_factor: float = 1.5
    min_samples: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        if self.delay_factor <= 1.0:
            raise ValueError("delay_factor must be > 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a named unit of work on one model's cluster partition."""

    name: str
    model_name: str = "RM2"
    batch_size: int = 32
    parents: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if not self.model_name:
            raise ValueError("stage model_name must be non-empty")
        if self.batch_size < 1:
            raise ValueError("stage batch_size must be >= 1")
        object.__setattr__(self, "parents", tuple(self.parents))


@dataclass(frozen=True)
class PipelineSpec:
    """One DAG-structured inference request with an end-to-end deadline.

    A declarative twin of :class:`repro.pipeline.TaskGraph`: stages in declaration
    order, one deadline/value per graph, released into the stream at ``release_ms``.
    Construction validates by materializing the task graph, so every structural
    rule (acyclicity, single sink, known parents) holds for any spec that exists.
    """

    stages: Tuple[StageSpec, ...] = (StageSpec(name="s0"),)
    deadline_ms: float = 2_000.0
    value: float = 1.0
    release_ms: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        self.to_task_graph("spec-validate")  # raises on any structural violation

    def to_task_graph(self, graph_id: str):
        """Materialize the corresponding :class:`~repro.pipeline.TaskGraph`."""
        from repro.pipeline import TaskGraph, TaskStage

        return TaskGraph(
            graph_id=graph_id,
            stages=tuple(
                TaskStage(
                    name=s.name,
                    model_name=s.model_name,
                    batch_size=s.batch_size,
                    parents=s.parents,
                )
                for s in self.stages
            ),
            deadline_ms=self.deadline_ms,
            value=self.value,
            release_ms=self.release_ms,
        )

    @property
    def model_names(self) -> Tuple[str, ...]:
        return tuple(s.model_name for s in self.stages)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete fuzzable serving scenario (see module docstring).

    Attributes
    ----------
    loop:
        Which serving loop runs the scenario (one of :data:`LOOPS`).
    streams:
        One :class:`StreamSpec` per model.  Single-model loops require exactly one;
        ``multi_model`` accepts one or more with distinct model names.
    config_counts:
        One instance-count vector (catalog order) per stream: the initial cluster
        partition serving that stream's model.
    seed:
        The single determinism root; the runner derives workload, service-noise,
        market, and controller generators from it.
    noise_std:
        Relative std of multiplicative Gaussian service noise (0 disables noise).
    online_learning:
        Use the online latency learner (True) or the perfect estimator (False).
    use_controller:
        Attach the re-planning elastic controller (elastic / spot loops only).
    budget_per_hour:
        The controller's base budget (also the reference budget for budget-driven
        invariant checks).
    scale_events / spot:
        Scripted provisioning actions (elastic / spot) and the spot-market dimension
        (spot loop only).
    faults / retry / admission:
        The chaos dimensions: unannounced failure injection (any elastic loop),
        bounded retry with response timeouts (any loop), and admission-controlled
        load shedding (any loop).
    health / hedge:
        The gray-resilience dimensions (elastic-family loops only): oracle-free
        server health scoring with quarantine circuit breakers, and hedged
        dispatch with exact cancellation accounting.  Zombie hazards require a
        recovery path — a health monitor or a retry response timeout.
    pipelines:
        DAG-structured inference requests (loop='pipeline' only): each
        :class:`PipelineSpec` is one task graph released on top of the streams'
        standalone queries, scheduled critical-path-aware against one
        end-to-end deadline.
    sharded_events:
        Drive the run off the sharded event/pending queues of
        :mod:`repro.sim.sharding` (byte-identical to the single-heap path).
    start_offset_ms:
        Shift the whole scenario — arrivals, scripted events, bursts, storms — to
        a non-zero time origin, as committed real-trace slices have.
    """

    loop: str = "static"
    streams: Tuple[StreamSpec, ...] = (StreamSpec(),)
    config_counts: Tuple[Tuple[int, ...], ...] = ((1, 1, 2, 0),)
    seed: int = 0
    noise_std: float = 0.0
    online_learning: bool = False
    use_controller: bool = False
    budget_per_hour: float = 2.5
    startup_delay_ms: float = 400.0
    warmup_queries: int = 0
    max_queries_per_round: Optional[int] = 64
    sharded: bool = False
    sharded_events: bool = False
    start_offset_ms: float = 0.0
    scale_events: Tuple[ScaleEventSpec, ...] = ()
    spot: Optional[SpotSpec] = None
    faults: Optional[FaultSpec] = None
    retry: Optional[RetrySpec] = None
    admission: Optional[AdmissionSpec] = None
    health: Optional[HealthSpec] = None
    hedge: Optional[HedgeSpec] = None
    pipelines: Tuple[PipelineSpec, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.loop not in LOOPS:
            raise ValueError(f"unknown loop {self.loop!r}; one of {LOOPS}")
        if not self.streams:
            raise ValueError("a scenario needs at least one stream")
        if self.loop not in ("multi_model", "pipeline") and len(self.streams) != 1:
            raise ValueError(f"loop {self.loop!r} serves exactly one stream")
        names = [s.model_name for s in self.streams]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names in streams: {names}")
        if len(self.config_counts) != len(self.streams):
            raise ValueError("config_counts must have one vector per stream")
        for counts in self.config_counts:
            if len(counts) != CATALOG_SIZE:
                raise ValueError(f"config vectors must have {CATALOG_SIZE} entries")
            if any(c < 0 for c in counts):
                raise ValueError("instance counts must be non-negative")
            if sum(counts) < 1:
                raise ValueError("every stream needs at least one instance")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if self.budget_per_hour <= 0:
            raise ValueError("budget_per_hour must be positive")
        if self.startup_delay_ms < 0:
            raise ValueError("startup_delay_ms must be non-negative")
        if self.warmup_queries < 0:
            raise ValueError("warmup_queries must be non-negative")
        if self.max_queries_per_round is not None and self.max_queries_per_round < 1:
            raise ValueError("max_queries_per_round must be >= 1 or None")
        if self.sharded and self.loop not in ("multi_model", "pipeline"):
            raise ValueError("sharded dispatch is a multi-model policy mode")
        if self.start_offset_ms < 0:
            raise ValueError("start_offset_ms must be non-negative")
        if self.spot is not None and self.loop != "spot":
            raise ValueError("a SpotSpec is only legal with loop='spot'")
        if self.scale_events and self.loop not in ("elastic", "spot"):
            raise ValueError("scripted scale events require the elastic or spot loop")
        if self.use_controller and self.loop not in ("elastic", "spot"):
            raise ValueError("the controller attaches to the elastic or spot loop")
        if self.faults is not None and self.loop == "static":
            raise ValueError(
                "fault injection needs an elastic loop (crashed capacity must be "
                "re-provisionable); use loop='elastic', 'spot', or 'multi_model'"
            )
        if (self.health is not None or self.hedge is not None) and self.loop == "static":
            raise ValueError(
                "health monitoring and hedged dispatch need an elastic loop "
                "(quarantined capacity must be replaceable); use loop='elastic', "
                "'spot', 'multi_model', or 'pipeline'"
            )
        if (
            self.faults is not None
            and self.faults.zombies_per_hour > 0.0
            and self.health is None
            and (self.retry is None or self.retry.response_timeout_ms is None)
        ):
            raise ValueError(
                "zombie hazards need a recovery path: attach a HealthSpec or a "
                "RetrySpec with response_timeout_ms, else zombie-held queries "
                "hang forever"
            )
        if self.pipelines and self.loop != "pipeline":
            raise ValueError("pipelines are only legal with loop='pipeline'")
        if self.loop == "pipeline" and not self.pipelines:
            raise ValueError("loop='pipeline' needs at least one PipelineSpec")
        if self.pipelines:
            served = set(s.model_name for s in self.streams)
            for pipe in self.pipelines:
                for name in pipe.model_names:
                    if name not in served:
                        raise ValueError(
                            f"pipeline stage targets model {name!r} with no stream "
                            f"(served models: {sorted(served)})"
                        )
        if self.spot is not None:
            for spot_c, conf_c in zip(self.spot.spot_counts, self.config_counts[0]):
                if spot_c > conf_c:
                    raise ValueError(
                        f"spot counts {self.spot.spot_counts} exceed the cluster "
                        f"config {self.config_counts[0]}"
                    )

    # -- derived views -------------------------------------------------------------------
    @property
    def model_names(self) -> Tuple[str, ...]:
        return tuple(s.model_name for s in self.streams)

    @property
    def duration_ms(self) -> float:
        return max(s.duration_ms for s in self.streams)

    @property
    def expected_queries(self) -> float:
        return sum(s.expected_queries for s in self.streams)

    def with_loop(self, loop: str, **overrides) -> "ScenarioSpec":
        """Copy retargeted at another serving loop (used by identity invariants)."""
        return replace(self, loop=loop, **overrides)

    def without_spot(self) -> "ScenarioSpec":
        """The spot-disabled twin: same workload and seeds through the elastic loop."""
        return replace(self, loop="elastic", spot=None, scale_events=tuple(
            e for e in self.scale_events if e.market == "on-demand"
        ))

    def without_chaos(self) -> "ScenarioSpec":
        """The chaos-disabled twin: same workload with every chaos dimension off."""
        return replace(
            self, faults=None, retry=None, admission=None, health=None, hedge=None
        )

    def without_gray(self) -> "ScenarioSpec":
        """The gray-disabled twin: crashes/slowdowns kept, gray modes zeroed.

        Drops the health and hedge layers and zeroes the gray hazards while
        keeping the classic crash/slowdown dimensions — the byte-identity
        reference for the gray no-draw contract.
        """
        faults = self.faults
        if faults is not None:
            faults = replace(
                faults,
                degradations_per_hour=0.0,
                flaky_per_hour=0.0,
                zombies_per_hour=0.0,
            )
        return replace(self, faults=faults, health=None, hedge=None)

    def without_pipelines(self) -> "ScenarioSpec":
        """The graph-free twin: same streams through the plain multi-model loop."""
        return replace(self, loop="multi_model", pipelines=())

    # -- JSON round trip -----------------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        data = dict(data)
        data["streams"] = tuple(
            StreamSpec(
                model_name=s["model_name"],
                phases=tuple(PhaseSpec(**p) for p in s["phases"]),
                batch_median=s["batch_median"],
                batch_sigma=s["batch_sigma"],
                arrival=s["arrival"],
                burst_size=s["burst_size"],
            )
            for s in data["streams"]
        )
        data["config_counts"] = tuple(tuple(c) for c in data["config_counts"])
        data["scale_events"] = tuple(
            ScaleEventSpec(**e) for e in data.get("scale_events", ())
        )
        spot = data.get("spot")
        if spot is not None:
            data["spot"] = SpotSpec(
                discount=spot["discount"],
                preemptions_per_hour=spot["preemptions_per_hour"],
                warning_ms=spot["warning_ms"],
                spot_counts=tuple(spot["spot_counts"]),
                bursts=tuple(BurstSpec(**b) for b in spot.get("bursts", ())),
            )
        faults = data.get("faults")
        if faults is not None:
            faults = dict(faults)
            faults["storms"] = tuple(StormSpec(**s) for s in faults.get("storms", ()))
            data["faults"] = FaultSpec(**faults)
        retry = data.get("retry")
        if retry is not None:
            data["retry"] = RetrySpec(**retry)
        admission = data.get("admission")
        if admission is not None:
            data["admission"] = AdmissionSpec(**admission)
        health = data.get("health")
        if health is not None:
            data["health"] = HealthSpec(**health)
        hedge = data.get("hedge")
        if hedge is not None:
            data["hedge"] = HedgeSpec(**hedge)
        data["pipelines"] = tuple(
            PipelineSpec(
                stages=tuple(
                    StageSpec(
                        name=s["name"],
                        model_name=s["model_name"],
                        batch_size=s["batch_size"],
                        parents=tuple(s["parents"]),
                    )
                    for s in p["stages"]
                ),
                deadline_ms=p["deadline_ms"],
                value=p["value"],
                release_ms=p["release_ms"],
            )
            for p in data.get("pipelines", ())
        )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())
