"""Materialize a :class:`ScenarioSpec` into a simulator run and record what happened.

``run_scenario`` is the single entry point the fuzzer, the property tests, the
regression replayer, and the CLI all share: spec in, :class:`ScenarioResult` out.
The result bundles the simulator report together with an event-loop recording
(every scheduling round and every completion, captured by wrapping the policy in a
:class:`RecordingPolicy`) that the invariant library inspects, plus a canonical
``result_digest`` used by the byte-identity and hash-seed-independence invariants.

Run as a module (``python -m repro.fuzz.runner spec.json``) it prints the digest of
one scenario — the subprocess primitive behind the PYTHONHASHSEED-independence check.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG
from repro.cloud.models import get_model
from repro.cloud.profiles import default_profile_registry
from repro.cloud.spot import SpotMarket
from repro.core.controller import ElasticKairosController
from repro.fuzz.spec import ScenarioSpec, StreamSpec
from repro.pipeline import (
    CriticalPathKairosPolicy,
    PipelineCoordinator,
    PipelineServingSimulation,
    realize_graphs,
)
from repro.schedulers.kairos_policy import KairosPolicy, MultiModelKairosPolicy
from repro.sim.cluster import Cluster, MultiModelCluster
from repro.sim.elasticity import ElasticServingSimulation
from repro.sim.events import CrashStorm, Event, EventKind, PreemptionBurst, ScaleRequest
from repro.sim.faults import AdmissionController, FaultInjector, RetryPolicy
from repro.sim.health import HealthConfig, HedgePolicy
from repro.sim.multi_model import MultiModelServingSimulation
from repro.sim.preemption import PreemptibleElasticSimulation, initial_spot_server_ids
from repro.sim.simulation import ServingSimulation, gaussian_service_noise
from repro.workload.arrivals import (
    BurstyArrivalProcess,
    DeterministicArrivalProcess,
    PoissonArrivalProcess,
)
from repro.workload.batch_sizes import TruncatedLogNormalBatchSizes
from repro.workload.generator import WorkloadSpec, interleave_model_streams
from repro.workload.phases import PhasedTrace
from repro.workload.query import Query


@lru_cache(maxsize=1)
def _registry():
    """One shared profile registry per process (building it is the expensive step)."""
    return default_profile_registry()


# ---------------------------------------------------------------------------------------
# Event-loop recording
# ---------------------------------------------------------------------------------------

@dataclass(frozen=True)
class SchedulingRound:
    """One observed call into the policy's ``schedule``."""

    time_ms: float
    pending_ids: Tuple[int, ...]
    assigned_ids: Tuple[int, ...]


class RecordingPolicy:
    """Transparent policy wrapper: the invariant checker's hook into the event loop.

    Forwards every call to the wrapped policy unchanged while recording (a) each
    scheduling round's time, pending set, and assignments, and (b) every completion
    the simulator reports.  In the preemption loop, killed dispatches are voided
    *before* ``observe_completion`` fires, so the recorded completion stream is
    exactly the set of services that actually stood — which is what the conservation
    invariants must reason about.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.rounds: List[SchedulingRound] = []
        self.completions: List = []

    @property
    def name(self) -> str:
        return getattr(self.inner, "name", type(self.inner).__name__)

    def bind(self, *args, **kwargs):
        bind = getattr(self.inner, "bind", None)
        if bind is not None:
            return bind(*args, **kwargs)
        return None

    def schedule(self, now, pending, view):
        pending_ids = tuple(q.query_id for q in pending)
        assignments = self.inner.schedule(now, pending, view)
        self.rounds.append(
            SchedulingRound(
                time_ms=float(now),
                pending_ids=pending_ids,
                assigned_ids=tuple(q.query_id for q, _ in assignments),
            )
        )
        return assignments

    def observe_completion(self, record):
        self.completions.append(record)
        observe = getattr(self.inner, "observe_completion", None)
        if observe is not None:
            return observe(record)
        return None

    def __getattr__(self, item):
        return getattr(self.inner, item)


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, ready for invariant evaluation."""

    spec: ScenarioSpec
    queries: Tuple[Query, ...]
    report: object
    rounds: Tuple[SchedulingRound, ...]
    completions: Tuple[object, ...]
    controller: Optional[ElasticKairosController] = None
    coordinator: Optional[PipelineCoordinator] = None
    graph_outcomes: Tuple[object, ...] = ()
    violations: List = field(default_factory=list)

    @property
    def ledger(self):
        return getattr(self.report, "ledger", None)

    @property
    def ok(self) -> bool:
        return not self.violations


# ---------------------------------------------------------------------------------------
# Spec -> workload
# ---------------------------------------------------------------------------------------

def _arrival_process(stream: StreamSpec):
    if stream.arrival == "poisson":
        return PoissonArrivalProcess()
    if stream.arrival == "deterministic":
        return DeterministicArrivalProcess()
    return BurstyArrivalProcess(burst_size=stream.burst_size)


def _stream_rng(spec: ScenarioSpec, index: int) -> np.random.Generator:
    return np.random.default_rng([spec.seed, index])


def build_queries(spec: ScenarioSpec) -> List[Query]:
    """Generate the spec's full query stream, deterministically from ``spec.seed``."""
    streams: Dict[str, Sequence[Query]] = {}
    for i, stream in enumerate(spec.streams):
        wspec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(
                median=stream.batch_median, sigma=stream.batch_sigma
            ),
            arrivals=_arrival_process(stream),
        )
        trace = PhasedTrace([p.to_load_phase() for p in stream.phases], wspec)
        streams[stream.model_name] = trace.generate(_stream_rng(spec, i)).queries
    if spec.loop in ("multi_model", "pipeline"):
        queries = interleave_model_streams(streams)
    else:
        queries = list(next(iter(streams.values())))
    if spec.start_offset_ms:
        # Shift the whole stream to the spec's time origin.  The generators always
        # emit from t=0; the offset is applied after interleaving so the relative
        # structure (and the per-stream RNG draws) are untouched.
        queries = [
            replace(q, arrival_time_ms=q.arrival_time_ms + spec.start_offset_ms)
            for q in queries
        ]
    return queries


# ---------------------------------------------------------------------------------------
# Spec -> simulator
# ---------------------------------------------------------------------------------------

def _noise(spec: ScenarioSpec):
    return gaussian_service_noise(spec.noise_std) if spec.noise_std > 0 else None


def _service_rng(spec: ScenarioSpec) -> np.random.Generator:
    return np.random.default_rng([spec.seed, 101])


def _policy_kwargs(spec: ScenarioSpec) -> Dict:
    kwargs: Dict = {"use_perfect_estimator": not spec.online_learning}
    if spec.max_queries_per_round is not None:
        kwargs["max_queries_per_round"] = spec.max_queries_per_round
    return kwargs


def _single_model_policy(spec: ScenarioSpec) -> RecordingPolicy:
    return RecordingPolicy(KairosPolicy(**_policy_kwargs(spec)))


def _scripted_events(spec: ScenarioSpec) -> List[Event]:
    # Scripted times are spec-relative; the offset moves them with the arrivals so
    # an offset twin is the same scenario played at a different time origin.
    offset = spec.start_offset_ms
    events = [
        Event(
            e.time_ms + offset,
            EventKind.SCALE_UP if e.action == "up" else EventKind.SCALE_DOWN,
            ScaleRequest(e.type_name, e.count, reason="scripted", market=e.market),
        )
        for e in spec.scale_events
    ]
    if spec.spot is not None:
        events.extend(
            Event(
                b.time_ms + offset,
                EventKind.PREEMPTION_WARNING,
                PreemptionBurst(b.count, type_name=b.type_name),
            )
            for b in spec.spot.bursts
        )
    if spec.faults is not None:
        events.extend(
            Event(
                s.time_ms + offset,
                EventKind.INSTANCE_FAILED,
                CrashStorm(s.count, type_name=s.type_name),
            )
            for s in spec.faults.storms
        )
    return sorted(events, key=lambda e: e.time_ms)


def _chaos_kwargs(spec: ScenarioSpec) -> Dict:
    """The fault/retry/admission/gray knobs shared by the elastic-family simulators."""
    kwargs: Dict = {}
    if spec.faults is not None:
        f = spec.faults
        kwargs["faults"] = FaultInjector.uniform(
            DEFAULT_INSTANCE_CATALOG,
            failures_per_hour=f.failures_per_hour,
            slowdowns_per_hour=f.slowdowns_per_hour,
            slowdown_factor=f.slowdown_factor,
            slowdown_duration_ms=f.slowdown_duration_ms,
            degradations_per_hour=f.degradations_per_hour,
            degradation_factor=f.degradation_factor,
            flaky_per_hour=f.flaky_per_hour,
            flaky_factor=f.flaky_factor,
            flaky_duration_ms=f.flaky_duration_ms,
            zombies_per_hour=f.zombies_per_hour,
            auto_replace=f.auto_replace,
        )
        kwargs["fault_rng"] = np.random.default_rng([spec.seed, 505])
        # The gray substream is only materialized alongside a fault injector: a
        # gray-free spec builds neither, keeping the constructor byte-identical.
        kwargs["gray_rng"] = np.random.default_rng([spec.seed, 606])
    if spec.health is not None:
        h = spec.health
        kwargs["health"] = HealthConfig(
            ewma_alpha=h.ewma_alpha,
            degrade_ratio=h.degrade_ratio,
            min_samples=h.min_samples,
            suspicion_threshold=h.suspicion_threshold,
            overdue_grace_factor=h.overdue_grace_factor,
            probation_ms=h.probation_ms,
            probation_backoff=h.probation_backoff,
            probe_successes=h.probe_successes,
        )
    if spec.hedge is not None:
        g = spec.hedge
        kwargs["hedge"] = HedgePolicy(
            quantile=g.quantile,
            delay_factor=g.delay_factor,
            min_samples=g.min_samples,
        )
    kwargs.update(_degradation_kwargs(spec))
    return kwargs


def _degradation_kwargs(spec: ScenarioSpec) -> Dict:
    """Retry/admission knobs (legal on every loop, including static)."""
    kwargs: Dict = {}
    if spec.retry is not None:
        r = spec.retry
        kwargs["retry"] = RetryPolicy(
            max_attempts=r.max_attempts,
            backoff_base_ms=r.backoff_base_ms,
            backoff_factor=r.backoff_factor,
            response_timeout_ms=r.response_timeout_ms,
        )
    if spec.admission is not None:
        a = spec.admission
        kwargs["admission"] = AdmissionController(
            target_latency_ms=a.target_latency_ms,
            initial_concurrency=a.initial_concurrency,
            min_concurrency=a.min_concurrency,
            max_concurrency=a.max_concurrency,
            shed_backlog_factor=a.shed_backlog_factor,
            smoothing=a.smoothing,
        )
    return kwargs


def _controller(spec: ScenarioSpec, model, registry) -> Optional[ElasticKairosController]:
    if not spec.use_controller:
        return None
    stream = spec.streams[0]
    controller = ElasticKairosController(
        model,
        spec.budget_per_hour,
        stream.phases[0].rate_qps,
        profiles=registry,
        batch_distribution=TruncatedLogNormalBatchSizes(
            median=stream.batch_median, sigma=stream.batch_sigma
        ),
        window_ms=max(1_000.0, spec.duration_ms / 4.0),
        cooldown_ms=max(2_000.0, spec.duration_ms / 2.0),
        min_observations=20,
        rng=np.random.default_rng([spec.seed, 303]),
    )
    monitor = TruncatedLogNormalBatchSizes(
        median=stream.batch_median, sigma=stream.batch_sigma
    ).sample(256, np.random.default_rng([spec.seed, 404]))
    controller.prime_monitor([int(b) for b in monitor])
    controller.initial_plan()
    return controller


def run_scenario(
    spec: ScenarioSpec,
    queries: Optional[Sequence[Query]] = None,
    *,
    check: bool = True,
) -> ScenarioResult:
    """Run one scenario through its serving loop; optionally evaluate per-run invariants.

    ``queries`` overrides the generated workload — this is how ingested trace files
    (:mod:`repro.workload.trace_io`) replay through any of the serving loops.
    """
    registry = _registry()
    run_queries = list(queries) if queries is not None else build_queries(spec)
    controller = None

    if spec.loop == "static":
        model = get_model(spec.streams[0].model_name)
        cluster = Cluster(
            HeterogeneousConfig(tuple(spec.config_counts[0])), model, registry
        )
        policy = _single_model_policy(spec)
        sim = ServingSimulation(
            cluster,
            policy,
            noise=_noise(spec),
            rng=_service_rng(spec),
            warmup_queries=spec.warmup_queries,
            sharded_events=spec.sharded_events,
            **_degradation_kwargs(spec),
        )
        report = sim.run(run_queries)
    elif spec.loop in ("elastic", "spot"):
        model = get_model(spec.streams[0].model_name)
        cluster = Cluster(
            HeterogeneousConfig(tuple(spec.config_counts[0])), model, registry
        )
        policy = _single_model_policy(spec)
        controller = _controller(spec, model, registry)
        common = dict(
            controller=controller,
            startup_delay_ms=spec.startup_delay_ms,
            noise=_noise(spec),
            rng=_service_rng(spec),
            warmup_queries=spec.warmup_queries,
            scripted_events=_scripted_events(spec),
            sharded_events=spec.sharded_events,
            **_chaos_kwargs(spec),
        )
        if spec.loop == "elastic":
            sim = ElasticServingSimulation(cluster, policy, **common)
        else:
            spot = spec.spot
            market = None
            spot_ids: Sequence[int] = ()
            if spot is not None:
                market = SpotMarket.uniform(
                    DEFAULT_INSTANCE_CATALOG,
                    discount=spot.discount,
                    preemptions_per_hour=spot.preemptions_per_hour,
                    warning_ms=spot.warning_ms,
                )
                spot_ids = initial_spot_server_ids(
                    cluster, HeterogeneousConfig(tuple(spot.spot_counts))
                )
            sim = PreemptibleElasticSimulation(
                cluster,
                policy,
                market=market,
                spot_server_ids=spot_ids,
                market_rng=np.random.default_rng([spec.seed, 202]),
                **common,
            )
        report = sim.run(run_queries)
    else:  # multi_model / pipeline
        configs = {
            stream.model_name: HeterogeneousConfig(tuple(counts))
            for stream, counts in zip(spec.streams, spec.config_counts)
        }
        cluster = MultiModelCluster(configs, registry)
        common = dict(
            startup_delay_ms=spec.startup_delay_ms,
            noise=_noise(spec),
            rng=_service_rng(spec),
            warmup_queries=spec.warmup_queries,
            scripted_events=_scripted_events(spec),
            sharded_events=spec.sharded_events,
            **_chaos_kwargs(spec),
        )
        if spec.loop == "pipeline":
            # Graph releases are spec-relative like scripted events: the offset
            # moves them with the arrivals.  Stage query ids are allocated after
            # the stream's so the two id spaces never collide.
            graphs = [
                replace(p, release_ms=p.release_ms + spec.start_offset_ms).to_task_graph(
                    f"g{i}"
                )
                for i, p in enumerate(spec.pipelines)
            ]
            sources, coordinator = realize_graphs(
                graphs, 1 + max((q.query_id for q in run_queries), default=0)
            )
            policy = RecordingPolicy(
                CriticalPathKairosPolicy(
                    coordinator, sharded=spec.sharded, **_policy_kwargs(spec)
                )
            )
            sim = PipelineServingSimulation(
                cluster, policy, coordinator=coordinator, **common
            )
            run_queries = sorted(
                list(run_queries) + sources, key=lambda q: q.arrival_time_ms
            )
        else:
            coordinator = None
            policy = RecordingPolicy(
                MultiModelKairosPolicy(sharded=spec.sharded, **_policy_kwargs(spec))
            )
            sim = MultiModelServingSimulation(cluster, policy, **common)
        report = sim.run(run_queries)
        if spec.loop == "pipeline":
            run_queries = list(run_queries) + list(sim.released_queries)

    result = ScenarioResult(
        spec=spec,
        queries=tuple(run_queries),
        report=report,
        rounds=tuple(policy.rounds),
        completions=tuple(policy.completions),
        controller=controller,
        coordinator=coordinator if spec.loop == "pipeline" else None,
        graph_outcomes=tuple(getattr(sim, "graph_outcomes", ())),
    )
    if check:
        from repro.fuzz.invariants import check_run

        result.violations = check_run(result)
    return result


# ---------------------------------------------------------------------------------------
# Canonical digests
# ---------------------------------------------------------------------------------------

def result_digest(result: ScenarioResult, *, include_billing: bool = True) -> str:
    """A canonical sha256 over everything observable about a run.

    With ``include_billing=False`` the digest covers only the service stream
    (completions + dispatch counts), which is the part that must survive re-pricing
    — e.g. a zero-hazard spot market changes interval prices but no service outcome.
    Every float is rendered with ``repr`` so the digest is exact, and nothing
    iterates an unordered container, so the digest is PYTHONHASHSEED-independent
    *if the simulators are* (which is precisely what the invariant checks).
    """
    h = hashlib.sha256()

    def line(*parts) -> None:
        h.update("|".join(str(p) for p in parts).encode())
        h.update(b"\n")

    report = result.report
    line("policy", report.policy_name)
    line("counts", report.scheduling_rounds, report.dispatched_queries, report.total_queries)
    line("duration", repr(report.simulated_duration_ms))
    for rec in result.completions:
        q = rec.query
        line(
            "done",
            q.query_id,
            q.batch_size,
            repr(q.arrival_time_ms),
            q.model_name or "",
            rec.server_id,
            rec.server_type,
            repr(rec.start_ms),
            repr(rec.completion_ms),
            repr(rec.service_ms),
        )
    # Chaos outcomes: emitted only when present, so digests of fault-free runs are
    # byte-identical to what they hashed to before the chaos subsystem existed.
    for entry in getattr(report, "shed_queries", ()):
        line("shed", entry.query.query_id, repr(entry.time_ms), entry.reason)
    for entry in getattr(report, "dead_letters", ()):
        line(
            "dead",
            entry.query.query_id,
            repr(entry.time_ms),
            entry.reason,
            entry.attempts,
        )
    retries = getattr(report, "retries", 0)
    if retries:
        line("retries", retries)
    # Gray outcomes: emitted only when the hedge layer actually fired, so digests
    # of hedge-free runs are byte-identical to pre-gray digests.
    hedges_launched = getattr(report, "hedges_launched", 0)
    if hedges_launched:
        line(
            "hedges",
            hedges_launched,
            getattr(report, "hedges_cancelled", 0),
            getattr(report, "hedge_wins", 0),
        )
    # Task-graph outcomes: emitted only when graphs ran, so graph-free digests are
    # byte-identical to what they hashed to before the pipeline subsystem existed.
    for outcome in result.graph_outcomes:
        line(
            "graph",
            outcome.graph_id,
            outcome.outcome,
            int(outcome.deadline_met),
            repr(outcome.end_ms),
            repr(outcome.e2e_latency_ms),
            repr(outcome.critical_path_ms),
            repr(outcome.realized_span_ms),
        )
    if include_billing:
        ledger = result.ledger
        if ledger is not None:
            line("horizon", repr(getattr(report, "billing_horizon_ms", 0.0)))
            for iv in ledger.intervals:
                parts = [
                    "bill",
                    iv.server_id,
                    iv.type_name,
                    repr(iv.start_ms),
                    repr(iv.end_ms),
                    iv.tag or "",
                    iv.market,
                    repr(iv.price_multiplier),
                ]
                if getattr(iv, "failed", False):
                    parts.append("failed")
                line(*parts)
            # Attribution spans exist only when quarantine/hedging ran: absent,
            # the billing digest is byte-identical to pre-gray digests.
            for span in getattr(ledger, "spans", ()):
                line(
                    "span",
                    span.server_id,
                    span.kind,
                    repr(span.start_ms),
                    repr(span.end_ms),
                )
        for entry in getattr(report, "scale_log", ()):
            line(
                "scale",
                repr(entry.time_ms),
                entry.kind,
                entry.type_name,
                entry.count,
                entry.reason,
            )
    return h.hexdigest()


def digest_spec(spec: ScenarioSpec, *, include_billing: bool = True) -> str:
    """Run a spec (invariant checks off) and return its digest."""
    return result_digest(run_scenario(spec, check=False), include_billing=include_billing)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.fuzz.runner spec.json`` — print the run digest and exit."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.fuzz.runner <spec.json> [--no-billing]", file=sys.stderr)
        return 2
    include_billing = "--no-billing" not in args
    path = [a for a in args if not a.startswith("--")][0]
    spec = ScenarioSpec.load(path)
    print(digest_spec(spec, include_billing=include_billing))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
