"""The central controller's pending queue, without per-round list churn.

The serving simulators used to copy the whole pending list every scheduling round
(``list(pending)``), rebuild a ``query_id`` set on every commit, and reconstruct the
list after each round (``pending[:] = [q for q in pending if ...]``) — O(n) work per
commit that turns long backlogs into O(n^2) churn.  :class:`PendingQueue` keeps the
same arrival-ordered semantics with O(1) membership tests, O(1) removal (tombstones +
amortized compaction), and a memoized snapshot that is only rebuilt when the queue
actually changed between rounds.

For the incremental cost-matrix path the queue also exposes a :attr:`version`
counter (bumped on every logical change) and :meth:`snapshot_arrays`, the pending
batch-size / arrival-time columns as memoized numpy arrays — so a scheduling round
whose queue did not change since the previous round reuses the row side of the ``L``
matrix without touching a single :class:`~repro.workload.query.Query` object.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.workload.query import Query


class PendingQueue:
    """Arrival-ordered pending queries with O(1) lookup/removal by ``query_id``.

    The iteration/snapshot order is exactly the append order of the still-pending
    queries — identical to the plain-list implementation it replaces, which is what
    keeps optimized runs byte-identical per seed.  The queue also supports positional
    indexing (over the live entries, in the same order), so policies written against
    a plain ``Sequence[Query]`` work unchanged when handed the queue itself.
    """

    __slots__ = ("_entries", "_positions", "_live", "_snapshot", "_version", "_arrays")

    def __init__(self) -> None:
        self._entries: List[Optional[Query]] = []
        self._positions: Dict[int, int] = {}
        self._live = 0
        self._snapshot: Optional[List[Query]] = None
        self._version = 0
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._positions

    def __iter__(self) -> Iterator[Query]:
        return iter(self.snapshot())

    def __getitem__(self, index):
        return self.snapshot()[index]

    @property
    def version(self) -> int:
        """Monotone change counter: bumped by every ``append``/``remove``.

        Two equal versions guarantee the pending set (and therefore every snapshot
        view) is unchanged; round-over-round caches key off it.
        """
        return self._version

    def append(self, query: Query) -> None:
        """Admit one arriving query (ids must be unique among pending queries)."""
        if query.query_id in self._positions:
            raise ValueError(f"query {query.query_id} is already pending")
        self._positions[query.query_id] = len(self._entries)
        self._entries.append(query)
        self._live += 1
        self._snapshot = None
        self._arrays = None
        self._version += 1

    def remove(self, query_id: int) -> Query:
        """Remove (and return) a pending query by id; raises ``KeyError`` if absent.

        Removal leaves a tombstone; the backing list is compacted once more than half
        of it is tombstones, keeping removal O(1) amortized while preserving order.
        """
        position = self._positions.pop(query_id, None)
        if position is None:
            raise KeyError(query_id)
        query = self._entries[position]
        assert query is not None
        self._entries[position] = None
        self._live -= 1
        self._snapshot = None
        self._arrays = None
        self._version += 1
        if len(self._entries) > 32 and self._live * 2 < len(self._entries):
            self._compact()
        return query

    def snapshot(self) -> List[Query]:
        """The pending queries in arrival order.

        The returned list is memoized until the next ``append``/``remove`` — callers
        (scheduling policies) must treat it as read-only.
        """
        if self._snapshot is None:
            self._snapshot = [q for q in self._entries if q is not None]
        return self._snapshot

    def snapshot_arrays(self) -> Tuple[List[Query], np.ndarray, np.ndarray]:
        """``(queries, batch_sizes, arrival_times)`` for the current snapshot.

        The arrays parallel :meth:`snapshot` (``batch_sizes`` as the platform int
        dtype the cost matrix always used, ``arrival_times`` as float64), are
        memoized together with it, and are read-only shared state — slice, never
        mutate.  One queue change rebuilds them once; unchanged queues serve any
        number of scheduling rounds for free.
        """
        if self._arrays is None:
            snapshot = self.snapshot()
            batches = np.asarray([q.batch_size for q in snapshot], dtype=int)
            arrivals = np.asarray([q.arrival_time_ms for q in snapshot], dtype=float)
            self._arrays = (batches, arrivals)
        return self.snapshot(), self._arrays[0], self._arrays[1]

    def _compact(self) -> None:
        self._entries = [q for q in self._entries if q is not None]
        self._positions = {q.query_id: i for i, q in enumerate(self._entries)}
