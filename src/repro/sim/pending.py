"""The central controller's pending queue, without per-round list churn.

The serving simulators used to copy the whole pending list every scheduling round
(``list(pending)``), rebuild a ``query_id`` set on every commit, and reconstruct the
list after each round (``pending[:] = [q for q in pending if ...]``) — O(n) work per
commit that turns long backlogs into O(n^2) churn.  :class:`PendingQueue` keeps the
same arrival-ordered semantics with O(1) membership tests, O(1) removal (tombstones +
amortized compaction), and a memoized snapshot that is only rebuilt when the queue
actually changed between rounds.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.workload.query import Query


class PendingQueue:
    """Arrival-ordered pending queries with O(1) lookup/removal by ``query_id``.

    The iteration/snapshot order is exactly the append order of the still-pending
    queries — identical to the plain-list implementation it replaces, which is what
    keeps optimized runs byte-identical per seed.
    """

    __slots__ = ("_entries", "_positions", "_live", "_snapshot")

    def __init__(self) -> None:
        self._entries: List[Optional[Query]] = []
        self._positions: Dict[int, int] = {}
        self._live = 0
        self._snapshot: Optional[List[Query]] = None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._positions

    def __iter__(self) -> Iterator[Query]:
        return iter(self.snapshot())

    def append(self, query: Query) -> None:
        """Admit one arriving query (ids must be unique among pending queries)."""
        if query.query_id in self._positions:
            raise ValueError(f"query {query.query_id} is already pending")
        self._positions[query.query_id] = len(self._entries)
        self._entries.append(query)
        self._live += 1
        self._snapshot = None

    def remove(self, query_id: int) -> Query:
        """Remove (and return) a pending query by id; raises ``KeyError`` if absent.

        Removal leaves a tombstone; the backing list is compacted once more than half
        of it is tombstones, keeping removal O(1) amortized while preserving order.
        """
        position = self._positions.pop(query_id, None)
        if position is None:
            raise KeyError(query_id)
        query = self._entries[position]
        assert query is not None
        self._entries[position] = None
        self._live -= 1
        self._snapshot = None
        if len(self._entries) > 32 and self._live * 2 < len(self._entries):
            self._compact()
        return query

    def snapshot(self) -> List[Query]:
        """The pending queries in arrival order.

        The returned list is memoized until the next ``append``/``remove`` — callers
        (scheduling policies) must treat it as read-only.
        """
        if self._snapshot is None:
            self._snapshot = [q for q in self._entries if q is not None]
        return self._snapshot

    def _compact(self) -> None:
        self._entries = [q for q in self._entries if q is not None]
        self._positions = {q.query_id: i for i, q in enumerate(self._entries)}
