"""Gray-failure detection and mitigation: health scoring, breakers, hedging.

The chaos layer (PR 7) covers *fail-stop* faults — a crashed server disappears
and the loop reacts.  Gray failures are worse: a server silently degrades,
flaps, or goes zombie (accepts dispatches, never completes) while the scheduler
keeps matching deadline-bound work onto it.  This module supplies the detection
and mitigation side; injection lives in :mod:`repro.sim.faults`.

Three cooperating pieces, all oracle-free (they observe only what a real
control plane could — dispatch times and completions):

* :class:`ServerHealthMonitor` — per-server health scoring from two signals.
  **Latency ratio**: an EWMA of each server's per-item service latency compared
  against the per-type fleet EWMA baseline; a server whose ratio exceeds
  ``degrade_ratio`` (with at least ``min_samples`` observations) is degraded.
  **Suspicion**: a phi-accrual-style score over expected-completion overdue
  time — every dispatched attempt schedules a health check at
  ``overdue_grace_factor`` times its expected duration, and if the attempt is
  still unresolved when the check fires, suspicion accrues by the overdue time
  normalised by the expected duration.  Zombies never complete, so their
  suspicion crosses ``suspicion_threshold`` after a bounded number of stuck
  dispatches; any genuine completion resets it.
* :class:`CircuitBreaker` — the per-server isolation lifecycle: *closed*
  (healthy) → *open* (quarantined: the server leaves every active view, the
  controller is notified, its idle burn is partitioned as ``cost_of_quarantine``)
  → *half-open* after a deterministic probation dwell (exponentially backed off
  per re-open) during which probe completions either close the breaker or
  re-open it.
* :class:`HedgeManager` — tail-tolerant speculative retry: per-type attempt
  latencies feed a quantile estimate, and an in-flight attempt that outlives
  ``delay_factor`` times that quantile is duplicated onto the best eligible
  idle server.  First completion wins; the loser is cancelled and its partial
  occupancy billed exactly as ``cost_of_hedges``.  Each query is served exactly
  once (the hedge-exactly-once invariant).

Everything here is deterministic — no RNG draws — so enabling monitoring on a
gray-free run changes behaviour only through the decisions it takes, and a
monitor that never trips is byte-identical to no monitor at all.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.utils.validation import check_positive

__all__ = [
    "HealthConfig",
    "HedgePolicy",
    "ServerHealthMonitor",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "HedgeManager",
]


@dataclass(frozen=True)
class HealthConfig:
    """Tuning of the health monitor and breaker lifecycle.

    Attributes
    ----------
    ewma_alpha:
        Weight of each new per-item latency sample in the server/fleet EWMAs.
    degrade_ratio:
        Server-EWMA over fleet-EWMA ratio at which a server counts as degraded.
    min_samples:
        Per-server completions required before the latency ratio is trusted.
    suspicion_threshold:
        Accrued overdue score at which a server counts as suspect (zombie).
    overdue_grace_factor:
        A health check fires this multiple of the expected attempt duration
        after dispatch (must exceed 1 so genuine completions beat their check).
    probation_ms:
        Quarantine dwell before the half-open probation probe.
    probation_backoff:
        Dwell multiplier per consecutive re-open of the same breaker.
    probe_successes:
        Consecutive healthy completions in half-open needed to close.
    """

    ewma_alpha: float = 0.3
    degrade_ratio: float = 2.0
    min_samples: int = 4
    suspicion_threshold: float = 1.0
    overdue_grace_factor: float = 3.0
    probation_ms: float = 10_000.0
    probation_backoff: float = 2.0
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must lie in (0, 1], got {self.ewma_alpha}")
        if self.degrade_ratio <= 1.0:
            raise ValueError(f"degrade_ratio must be > 1, got {self.degrade_ratio}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        check_positive(self.suspicion_threshold, "suspicion_threshold")
        if self.overdue_grace_factor <= 1.0:
            raise ValueError(
                f"overdue_grace_factor must be > 1, got {self.overdue_grace_factor}"
            )
        check_positive(self.probation_ms, "probation_ms")
        if self.probation_backoff < 1.0:
            raise ValueError(
                f"probation_backoff must be >= 1, got {self.probation_backoff}"
            )
        if self.probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )


@dataclass(frozen=True)
class HedgePolicy:
    """Tuning of speculative duplicate dispatch.

    Attributes
    ----------
    quantile:
        Per-type attempt-latency quantile the hedge delay is anchored to.
    delay_factor:
        Hedge delay = ``delay_factor`` x the quantile latency (> 1 so hedges
        only fire on genuine stragglers).
    min_samples:
        Per-type completions required before hedging arms (cold types never
        hedge — the quantile would be noise).
    """

    quantile: float = 0.9
    delay_factor: float = 1.5
    min_samples: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must lie in (0, 1), got {self.quantile}")
        if self.delay_factor <= 1.0:
            raise ValueError(f"delay_factor must be > 1, got {self.delay_factor}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Per-server isolation lifecycle: closed -> open -> half-open -> closed.

    The breaker holds no policy — the monitor decides *when* to trip and the
    serving loop performs the quarantine side effects — it just keeps the state
    machine and the probation-backoff arithmetic deterministic.
    """

    state: str = BREAKER_CLOSED
    opened_at_ms: float = 0.0
    open_count: int = 0
    probes_ok: int = 0

    def trip(self, now_ms: float) -> None:
        """Closed/half-open -> open (quarantine)."""
        if self.state == BREAKER_OPEN:
            raise RuntimeError("breaker already open")
        self.state = BREAKER_OPEN
        self.opened_at_ms = now_ms
        self.open_count += 1
        self.probes_ok = 0

    def half_open(self) -> None:
        """Open -> half-open (probation: server re-admitted, on trial)."""
        if self.state != BREAKER_OPEN:
            raise RuntimeError(f"cannot half-open a {self.state} breaker")
        self.state = BREAKER_HALF_OPEN
        self.probes_ok = 0

    def close(self) -> None:
        """Half-open -> closed (recovered)."""
        if self.state != BREAKER_HALF_OPEN:
            raise RuntimeError(f"cannot close a {self.state} breaker")
        self.state = BREAKER_CLOSED
        self.probes_ok = 0

    def probation_delay_ms(self, config: HealthConfig) -> float:
        """Quarantine dwell before the next probe: exponential in prior re-opens."""
        return config.probation_ms * config.probation_backoff ** max(
            0, self.open_count - 1
        )


class ServerHealthMonitor:
    """Oracle-free per-server health scoring against a per-type fleet baseline."""

    def __init__(self, config: Optional[HealthConfig] = None):
        self.config = config if config is not None else HealthConfig()
        self._fleet_ewma: Dict[str, float] = {}
        self._server_ewma: Dict[int, float] = {}
        self._server_samples: Dict[int, int] = {}
        self._suspicion: Dict[int, float] = {}

    # -- observations --------------------------------------------------------------------
    def observe_completion(
        self, server_id: int, type_name: str, service_ms: float, batch_size: int
    ) -> None:
        """Feed one genuine completion; resets the server's zombie suspicion."""
        per_item = float(service_ms) / max(1, int(batch_size))
        alpha = self.config.ewma_alpha
        fleet = self._fleet_ewma.get(type_name)
        self._fleet_ewma[type_name] = (
            per_item if fleet is None else fleet + alpha * (per_item - fleet)
        )
        mine = self._server_ewma.get(server_id)
        self._server_ewma[server_id] = (
            per_item if mine is None else mine + alpha * (per_item - mine)
        )
        self._server_samples[server_id] = self._server_samples.get(server_id, 0) + 1
        self._suspicion.pop(server_id, None)

    def record_overdue(
        self, server_id: int, overdue_ms: float, expected_ms: float
    ) -> float:
        """Accrue phi-style suspicion for one overdue attempt; returns the new score."""
        score = self._suspicion.get(server_id, 0.0) + max(0.0, float(overdue_ms)) / max(
            1e-9, float(expected_ms)
        )
        self._suspicion[server_id] = score
        return score

    # -- verdicts ------------------------------------------------------------------------
    def latency_ratio(self, server_id: int, type_name: str) -> Optional[float]:
        """Server EWMA / fleet EWMA, or ``None`` before ``min_samples`` observations."""
        if self._server_samples.get(server_id, 0) < self.config.min_samples:
            return None
        fleet = self._fleet_ewma.get(type_name)
        mine = self._server_ewma.get(server_id)
        if fleet is None or mine is None or fleet <= 0.0:
            return None
        return mine / fleet

    def sample_ratio(self, type_name: str, service_ms: float, batch_size: int) -> float:
        """One sample's per-item latency over the fleet baseline (probe verdicts)."""
        fleet = self._fleet_ewma.get(type_name)
        if fleet is None or fleet <= 0.0:
            return 1.0
        return (float(service_ms) / max(1, int(batch_size))) / fleet

    def suspicion(self, server_id: int) -> float:
        return self._suspicion.get(server_id, 0.0)

    def is_degraded(self, server_id: int, type_name: str) -> bool:
        ratio = self.latency_ratio(server_id, type_name)
        return ratio is not None and ratio >= self.config.degrade_ratio

    def is_suspect(self, server_id: int) -> bool:
        return self.suspicion(server_id) >= self.config.suspicion_threshold

    # -- lifecycle -----------------------------------------------------------------------
    def reset_server(self, server_id: int) -> None:
        """Fresh trial on probation re-admit: forget the server's samples and suspicion."""
        self._server_ewma.pop(server_id, None)
        self._server_samples.pop(server_id, None)
        self._suspicion.pop(server_id, None)

    def forget(self, server_id: int) -> None:
        """Drop all state for a decommissioned/crashed server."""
        self.reset_server(server_id)


class HedgeManager:
    """Per-type hedge-delay estimation from observed attempt latencies.

    Keeps a bounded window of the most recent attempt durations per instance
    type (insertion-ordered ring, sorted view maintained incrementally) and
    answers the hedge delay as ``delay_factor`` times the configured quantile.
    Deterministic: no RNG, and the quantile index is a plain floor.
    """

    WINDOW = 256

    def __init__(self, policy: Optional[HedgePolicy] = None):
        self.policy = policy if policy is not None else HedgePolicy()
        self._recent: Dict[str, List[float]] = {}
        self._sorted: Dict[str, List[float]] = {}

    def observe(self, type_name: str, attempt_ms: float) -> None:
        """Feed one genuine attempt duration (dispatch to completion)."""
        value = float(attempt_ms)
        recent = self._recent.setdefault(type_name, [])
        ordered = self._sorted.setdefault(type_name, [])
        recent.append(value)
        bisect.insort(ordered, value)
        if len(recent) > self.WINDOW:
            evicted = recent.pop(0)
            del ordered[bisect.bisect_left(ordered, evicted)]

    def samples(self, type_name: str) -> int:
        return len(self._recent.get(type_name, ()))

    def hedge_delay_ms(self, type_name: str) -> Optional[float]:
        """Current hedge delay for ``type_name``, or ``None`` while still cold."""
        ordered = self._sorted.get(type_name)
        if ordered is None or len(ordered) < self.policy.min_samples:
            return None
        index = int(self.policy.quantile * (len(ordered) - 1))
        return self.policy.delay_factor * ordered[index]
