"""Elastic serving simulation: provisioning events, draining, and online re-planning.

:class:`ElasticServingSimulation` generalizes :class:`~repro.sim.simulation.ServingSimulation`
to clusters whose membership changes mid-run.  Everything — arrivals, completions, and
the new provisioning events — flows through one :class:`~repro.sim.engine.EventQueue`
under the existing ordering contract (completions before arrivals at equal
timestamps), so elastic runs are exactly as deterministic as static ones.

Lifecycle of a scale action:

``SCALE_UP``
    An :class:`~repro.core.controller.ElasticKairosController` decision (or an explicit
    scripted event) requests ``count`` instances of a type.  Billing starts immediately
    (clouds charge for boot time) and an ``INSTANCE_READY`` event fires after
    ``startup_delay_ms``; only then does the instance join the schedulable set.

``SCALE_DOWN``
    The least-loaded instances of the type stop accepting work (*draining*).  An idle
    instance is decommissioned on the spot; a busy one finishes its local queue and is
    removed at its final completion.  Billing stops at decommission time.

Scheduling happens on an index-stable :class:`~repro.sim.cluster.ClusterView` of the
currently accepting servers, rebuilt (and the policy re-bound) whenever membership
changes, so existing policies work unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cloud.billing import SPAN_HEDGE, SPAN_QUARANTINE, InstanceUsageLedger
from repro.core.controller import ElasticKairosController, ReplanDecision
from repro.sim.cluster import Cluster, ClusterView
from repro.sim.engine import EventQueue, SimulationClock
from repro.sim.events import CrashStorm, Event, EventKind, ScaleRequest
from repro.sim.faults import (
    AdmissionController,
    DeadLetterEntry,
    FaultInjector,
    RetryPolicy,
    ShedEntry,
    select_shed_victims,
)
from repro.sim.health import (
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    HealthConfig,
    HedgeManager,
    HedgePolicy,
    ServerHealthMonitor,
)
from repro.sim.metrics import QueryRecord, ServingMetrics
from repro.sim.pending import PendingQueue
from repro.sim.server import ServerInstance, ServiceNoiseModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative
from repro.workload.query import Query


def _probe_batches(max_batch: int) -> List[int]:
    """Deterministic geometric batch ladder probing a type's QoS-feasible range."""
    ladder = []
    b = 1
    while b < max_batch:
        ladder.append(b)
        b *= 2
    ladder.append(max_batch)
    return ladder


def drain_cost_efficiency(
    profiles, model, type_name: str, *, probe_batches: Optional[Sequence[int]] = None
) -> float:
    """$/hr freed per unit of QoS-feasible serving capacity lost by draining one instance.

    Higher scores drain first: an expensive type contributing little within-QoS
    throughput frees the most budget per qps given up.  A type that cannot serve any
    probed batch within the model's QoS scores ``inf`` — draining it costs no serving
    capacity at all.  The probe mix is a fixed geometric ladder so the score depends
    only on the profiles, keeping elastic runs deterministic.
    """
    batches = (
        list(probe_batches) if probe_batches is not None else _probe_batches(model.max_batch_size)
    )
    qps = profiles.standalone_qps(model, type_name, batches)
    price = profiles.catalog[type_name].price_per_hour
    if qps <= 0.0:
        return float("inf")
    return price / qps


def scale_down_priority(profiles, model, type_names: Sequence[str]) -> List[str]:
    """Order instance types for draining, most cost-efficient-to-shed first.

    Ties (equal $/hr-per-qps scores) keep catalog order for determinism.
    """
    ranked = sorted(
        type_names,
        key=lambda name: (-drain_cost_efficiency(profiles, model, name),
                          profiles.catalog.index_of(name)),
    )
    return ranked


def select_drain_victims(
    cluster: Cluster, requests: Mapping[str, int], now_ms: float
) -> List[ServerInstance]:
    """Synchronously drain a multi-type shrink in cost-aware order (ROADMAP item).

    Types are processed by :func:`scale_down_priority` (most $/hr freed per lost qps
    first); within a type the cluster's least-loaded-first rule picks the instances.
    The returned list is ordered as drained; all victims are put into draining.

    This is the selection policy in callable form, for scripted scenarios and direct
    cluster surgery.  The event-driven simulators apply the *same* ordering by
    emitting their replan ``SCALE_DOWN`` events in :func:`scale_down_priority` order
    (cancellation of still-booting instances has to happen inside the event handler,
    so they cannot drain synchronously through this helper).
    """
    victims: List[ServerInstance] = []
    for type_name in scale_down_priority(cluster.profiles, cluster.model, list(requests)):
        count = int(requests[type_name])
        if count > 0:
            victims.extend(cluster.drain_servers(type_name, count, now_ms))
    return victims


@dataclass
class ScaleLogEntry:
    """One applied provisioning action (for reports and tests)."""

    time_ms: float
    kind: str  # "scale_up" | "scale_down" | "instance_ready" | "decommission"
    type_name: str
    count: int
    reason: str = ""


@dataclass
class ElasticSimulationReport:
    """Everything an elastic serving run produced."""

    metrics: ServingMetrics
    cluster: Cluster
    ledger: InstanceUsageLedger
    policy_name: str
    scheduling_rounds: int
    dispatched_queries: int
    total_queries: int
    simulated_duration_ms: float
    #: Absolute sim time the run ended at (>= any ledger interval end).  The makespan
    #: in ``simulated_duration_ms`` is a *length* that can start after t=0 (warm-up),
    #: so billing integrals must use this absolute horizon instead.
    billing_horizon_ms: float = 0.0
    replans: List[ReplanDecision] = field(default_factory=list)
    scale_log: List[ScaleLogEntry] = field(default_factory=list)
    peak_instances: int = 0
    #: Queries dropped by admission control under overload (graceful degradation).
    shed_queries: List[ShedEntry] = field(default_factory=list)
    #: Queries that exhausted their retry budget — accounted, never silently lost.
    dead_letters: List[DeadLetterEntry] = field(default_factory=list)
    #: Re-admissions pushed by the retry layer (crash- or timeout-failed attempts).
    retries: int = 0
    #: Queries still pending when the run ended (the policy declined the remainder).
    unserved_queries: int = 0
    #: Speculative duplicate dispatches launched by the hedge layer.
    hedges_launched: int = 0
    #: Hedge attempts cancelled (every launched race resolves with exactly one).
    hedges_cancelled: int = 0
    #: Hedge races won by the duplicate (the speculation paid off).
    hedge_wins: int = 0

    @property
    def quarantine_events(self) -> int:
        """Breaker trips (quarantines) that fired during the run."""
        return sum(e.count for e in self.scale_log if e.kind == "quarantine")

    @property
    def completed_all(self) -> bool:
        return self.dispatched_queries == self.total_queries

    @property
    def instance_failures(self) -> int:
        """Unannounced instance crashes that fired during the run."""
        return sum(e.count for e in self.scale_log if e.kind == "instance_failed")

    def total_cost(self) -> float:
        """Dollar spend over the whole run (ledger integral to the run's end)."""
        return self.ledger.total_cost(self.billing_horizon_ms)

    def summary(self) -> Dict[str, float]:
        data = dict(self.metrics.summary())
        data["scheduling_rounds"] = float(self.scheduling_rounds)
        data["simulated_duration_ms"] = self.simulated_duration_ms
        data["num_replans"] = float(len(self.replans))
        data["total_cost"] = self.total_cost()
        data["peak_instances"] = float(self.peak_instances)
        return data


class ElasticServingSimulation:
    """Serve a query stream on a cluster that can grow and shrink mid-run.

    Parameters
    ----------
    cluster:
        The initial cluster (typically built from the controller's initial plan).
    policy:
        A query-distribution policy (:class:`~repro.schedulers.base.SchedulingPolicy`
        protocol).  It is re-bound on every membership change; policies that learn
        online (the Kairos estimator) keep their learned state across re-binds.
    controller:
        Optional :class:`~repro.core.controller.ElasticKairosController`.  Without one
        the simulation is *static through the elastic code path*: same event loop, no
        provisioning — the honest baseline for re-planning comparisons.
    startup_delay_ms:
        Provisioning delay between a scale-up request and the instance becoming
        schedulable (billing covers the delay).
    scripted_events:
        Optional pre-scheduled provisioning events (``SCALE_UP`` / ``SCALE_DOWN`` with a
        :class:`~repro.sim.events.ScaleRequest` payload, or ``INSTANCE_FAILED`` with a
        :class:`~repro.sim.events.CrashStorm` when fault injection is enabled), e.g.
        for tests or scenarios with known maintenance windows.
    faults:
        Optional :class:`~repro.sim.faults.FaultInjector` arming *unannounced* crash
        and transient-slowdown timers on every commissioned instance.  ``None`` (or a
        zero-hazard injector) leaves the run byte-identical to a fault-free one.
    fault_rng:
        Dedicated generator for fault-delay draws, separate from the service noise
        stream so arming injection never perturbs service times.
    retry:
        Optional :class:`~repro.sim.faults.RetryPolicy`: failed attempts (crash-voided
        or response-timed-out dispatches) re-enter the pending queue after exponential
        backoff until the retry budget is spent, then dead-letter.  Without one, a
        crash-voided query dead-letters immediately (the naive no-retry loop).
        Spot preemption keeps its own announced-loss re-queue path (immediate,
        unbounded) — the retry budget governs *unannounced* failures only.
    admission:
        Optional :class:`~repro.sim.faults.AdmissionController` throttling each
        scheduling round's admitted concurrency from observed latency and shedding
        the lowest-value backlog overflow under overload.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy,
        *,
        controller: Optional[ElasticKairosController] = None,
        qos_ms: Optional[float] = None,
        qos_percentile: float = 99.0,
        startup_delay_ms: float = 2_000.0,
        noise: Optional[ServiceNoiseModel] = None,
        rng: RngLike = None,
        warmup_queries: int = 0,
        scripted_events: Sequence[Event] = (),
        faults: Optional[FaultInjector] = None,
        fault_rng: RngLike = None,
        retry: Optional[RetryPolicy] = None,
        admission: Optional[AdmissionController] = None,
        sharded_events: bool = False,
        gray_rng: RngLike = None,
        health: Optional[HealthConfig] = None,
        hedge: Optional[HedgePolicy] = None,
    ):
        check_non_negative(startup_delay_ms, "startup_delay_ms")
        if warmup_queries < 0:
            raise ValueError("warmup_queries must be non-negative")
        if faults is not None and any(p.zombies_per_hour > 0.0 for p in faults):
            # a zombie attempt has no completion event; without a recovery path the
            # query could never settle and conservation would break by construction
            if health is None and (retry is None or retry.response_timeout_ms is None):
                raise ValueError(
                    "zombie hazards need a recovery path: enable health monitoring "
                    "or a retry response timeout"
                )
        self.cluster = cluster
        self.policy = policy
        self.controller = controller
        self.qos_ms = float(qos_ms) if qos_ms is not None else cluster.model.qos_ms
        self.qos_percentile = float(qos_percentile)
        self.startup_delay_ms = float(startup_delay_ms)
        self.noise = noise
        self.rng = ensure_rng(rng)
        self.warmup_queries = int(warmup_queries)
        self.faults = faults
        self._fault_rng = ensure_rng(fault_rng)
        self.retry = retry
        self.admission = admission
        #: drive the run off a ShardedEventQueue (per-kind shards); byte-identical
        #: to the single-heap path (see repro.sim.sharding)
        self.sharded_events = bool(sharded_events)
        # -- shared chaos/preemption machinery (subclasses reuse all of it) ------------
        #: per-server records dispatched but not yet completed (the voiding source)
        self._inflight: Dict[int, List[QueryRecord]] = {}
        #: object ids of records whose server crashed/was killed (completions are void)
        self._killed: Set[int] = set()
        #: object ids of records abandoned at their response deadline
        self._timed_out: Set[int] = set()
        #: query ids re-injected as arrivals (skip controller rate observation)
        self._requeued_ids: Set[int] = set()
        #: failed attempts per query id (drives the bounded retry budget)
        self._attempt_failures: Dict[int, int] = {}
        #: queries not yet terminally settled; gates replacement provisioning/timers
        self._outstanding = 0
        #: dispatches voided by a kill/crash/timeout (re-dispatches must not
        #: double-count in the report)
        self._voided_dispatches = 0
        #: re-plans forced by capacity loss (merged into the report's list)
        self._forced_replans: List = []
        self._retries = 0
        self.dead_letters: List[DeadLetterEntry] = []
        self.shed_queries: List[ShedEntry] = []
        # -- gray-failure machinery (health scoring, breakers, hedging) ----------------
        self.health = health
        self.monitor = ServerHealthMonitor(health) if health is not None else None
        self.hedge = hedge
        self.hedges = HedgeManager(hedge) if hedge is not None else None
        #: dedicated generator for gray-mode delay draws ([seed, 606] by convention);
        #: separate from the fault stream so gray hazards never perturb crash draws
        self._gray_rng = ensure_rng(gray_rng)
        #: per-server breaker state (created lazily at first trip)
        self._breakers: Dict[int, CircuitBreaker] = {}
        #: server ids that have gone zombie (accept work, never emit completions)
        self._zombie_ids: Set[int] = set()
        #: object ids of records dispatched into a zombie: no completion event exists,
        #: so void paths must not expect one (unlike _killed/_timed_out bookkeeping)
        self._zombie_attempts: Set[int] = set()
        #: object ids of cancelled attempts whose queued completion must be silently
        #: absorbed (local queue popped, no metrics) — hedge losers, stuck-voids
        self._absorbed: Set[int] = set()
        #: query id -> (primary, duplicate) of an unresolved hedge race
        self._hedge_pairs: Dict[int, Tuple[QueryRecord, QueryRecord]] = {}
        #: open quarantine attribution spans per server id
        self._quarantine_spans: Dict[int, object] = {}
        #: hedge dispatches (not routed through _commit's counter)
        self._hedge_extra_dispatches = 0
        self.hedges_launched = 0
        self.hedges_cancelled = 0
        self.hedge_wins = 0
        #: whether dispatches must be tracked for voiding (crash or timeout possible)
        self._track_inflight = (
            faults is not None
            or (retry is not None and retry.response_timeout_ms is not None)
            or health is not None
            or hedge is not None
        )
        self.scripted_events = tuple(scripted_events)
        for event in self.scripted_events:
            self._validate_scripted(event)
        self._ran = False

    def _validate_scripted(self, event: Event) -> None:
        """Reject unsupported scripted events (subclasses widen the accepted kinds)."""
        if event.kind == EventKind.INSTANCE_FAILED:
            if not isinstance(event.payload, CrashStorm):
                raise ValueError(
                    "scripted instance failures must carry a CrashStorm payload"
                )
            if self.faults is None:
                raise ValueError("scripted crash storms require a FaultInjector")
            return
        if event.kind not in (EventKind.SCALE_UP, EventKind.SCALE_DOWN):
            raise ValueError("scripted events must be SCALE_UP or SCALE_DOWN")
        if not isinstance(event.payload, ScaleRequest):
            raise ValueError("scripted scale events must carry a ScaleRequest payload")

    def run(self, queries: Sequence[Query]) -> ElasticSimulationReport:
        """Serve ``queries`` once.  Unlike :class:`~repro.sim.simulation.ServingSimulation`
        this driver is one-shot: a run permanently mutates cluster membership and the
        controller's observation history, so repeat runs must build fresh objects."""
        if self._ran:
            raise RuntimeError(
                "ElasticServingSimulation is one-shot: cluster membership and "
                "controller state are consumed by run(); build a fresh simulation "
                "(and controller) for another run"
            )
        self._ran = True
        # An empty stream is a valid no-op: zero offered load serves zero queries
        # with empty metrics (scripted provisioning events still apply).
        ordered = sorted(queries, key=lambda q: (q.arrival_time_ms, q.query_id))
        n = len(ordered)
        self._outstanding = n
        self.cluster.reset()
        metrics = ServingMetrics(self.qos_ms, self.qos_percentile)
        scale_log: List[ScaleLogEntry] = []
        replans: List[ReplanDecision] = []

        clock = SimulationClock(0.0)
        if self.sharded_events:
            from repro.sim.sharding import ShardedEventQueue, shard_key_by_kind

            events = ShardedEventQueue(shard_key_by_kind)
        else:
            events = EventQueue()
        for q in ordered:
            events.push(Event(q.arrival_time_ms, EventKind.QUERY_ARRIVAL, q))
        events.push_all(self.scripted_events)
        ledger = InstanceUsageLedger(self.cluster.config.catalog)
        self._open_initial_billing(ledger, events)
        self._arm_initial_faults(events)

        pending = PendingQueue()
        warmup_ids = {q.query_id for q in ordered[: self.warmup_queries]}
        # Scale-ups in flight: reserved ids per type that have not fired INSTANCE_READY
        # yet.  A scale-down cancels these (newest first) before draining live servers,
        # so a replan reversing a recent scale-up cannot strand booting instances.
        self._booting: Dict[str, List[int]] = {}
        self._cancelled: set = set()
        dispatched = 0
        rounds = 0
        peak = len(self.cluster)
        view = self.cluster.active_view()
        self.policy.bind(view, self.qos_ms)
        # generous guard against a policy that never makes progress
        max_steps = 20 * n + 1000
        steps = 0

        while events:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"simulation exceeded {max_steps} steps; the scheduling policy "
                    f"{type(self.policy).__name__} appears to be making no progress"
                )
            now = clock.advance_to(events.peek_time())
            membership_changed = False
            saw_arrival = False

            # Drain the whole timestamp batch; handlers may push follow-up events at
            # `now` (a replan's scale requests), which the inner loop picks up before
            # the scheduling round so new decisions act in the same instant.
            batch = events.pop_batch(now)
            while batch:
                for event in batch:
                    kind_changed, kind_arrival = self._handle(
                        event, now, metrics, ledger, scale_log, warmup_ids, events
                    )
                    membership_changed = membership_changed or kind_changed
                    saw_arrival = saw_arrival or kind_arrival
                    if kind_arrival:
                        pending.append(event.payload)
                # The controller reacts right after the arrivals of this instant are
                # observed — the one-shot re-plan (Fig. 12) happens inside the event
                # loop, not between runs.  Replan BEFORE re-popping: the decision's
                # same-instant scale events must land in the next inner batch, or an
                # empty re-pop would strand them past this round and the outer loop
                # would re-wake at the same `now` for a duplicate scheduling round.
                if saw_arrival and self.controller is not None:
                    decision = self.controller.maybe_replan(now)
                    if decision is not None:
                        replans.append(decision)
                        self._emit_scale_events(decision, now, events)
                    saw_arrival = False
                batch = events.pop_batch(now)

            if membership_changed:
                view = self.cluster.active_view()
                # A fully drained fleet leaves nothing to bind or schedule; queries
                # wait centrally until an INSTANCE_READY brings capacity back (the
                # next membership change re-binds).
                if len(view):
                    self.policy.bind(view, self.qos_ms)
                peak = max(peak, len(self.cluster))

            # scheduling round over the accepting servers (behind the admission valve)
            if pending and len(view):
                admitted = self._admit(pending, now, events)
                if admitted:
                    assignments = self.policy.schedule(now, admitted, view)
                    rounds += 1
                    if assignments:
                        dispatched += self._commit(
                            assignments, pending, view, now, events
                        )

            # Nothing left to fire and the policy declines the remainder: end the run.
            # Recurring fault/reclaim timers are not "something to fire" for this
            # purpose: once every queued event is a hazard timer, no completion,
            # arrival, boot, or scale action is in flight, so nothing the timers do
            # to an idle fleet can serve a backlog the policy already declined — the
            # run has quiesced exactly like the chaos-free case.  A zombie-held
            # attempt breaks that reasoning: it is in flight with NO completion
            # queued, and its recovery watchdog (health check or response timeout)
            # is itself an idle-kind timer — so the run must stay alive until the
            # watchdog voids the attempt to a terminal outcome.
            if (
                pending
                and not self._zombie_attempts
                and (not events or events.only_kinds(self._idle_timer_kinds()))
            ):
                break

        duration = metrics.makespan_ms() if len(metrics) else clock.now_ms
        # Completions flow through the event queue, so the clock ends at or after the
        # last completion; that is the absolute billing horizon.
        horizon = clock.now_ms
        ledger.close_all(horizon)
        # A voided dispatch never completed; its query re-dispatched (or settled
        # terminally) later, so only the dispatch that stood counts — completed_all
        # keeps its exact meaning.
        if self._forced_replans:
            replans = sorted(replans + self._forced_replans, key=lambda d: d.time_ms)
        return ElasticSimulationReport(
            metrics=metrics,
            cluster=self.cluster,
            ledger=ledger,
            policy_name=getattr(self.policy, "name", type(self.policy).__name__),
            scheduling_rounds=rounds,
            dispatched_queries=dispatched
            + self._hedge_extra_dispatches
            - self._voided_dispatches,
            total_queries=n,
            simulated_duration_ms=duration,
            billing_horizon_ms=horizon,
            replans=replans,
            scale_log=scale_log,
            peak_instances=peak,
            shed_queries=self.shed_queries,
            dead_letters=self.dead_letters,
            retries=self._retries,
            unserved_queries=len(pending),
            hedges_launched=self.hedges_launched,
            hedges_cancelled=self.hedges_cancelled,
            hedge_wins=self.hedge_wins,
        )

    # -- subclass hooks -----------------------------------------------------------------
    # The preemption simulator (repro.sim.preemption) extends the lifecycle through
    # these hooks instead of forking the event loop; all defaults reproduce the
    # pre-spot behaviour exactly (locked down by the seed-stability suite).
    def _open_initial_billing(self, ledger: InstanceUsageLedger, events: EventQueue) -> None:
        """Open billing for the initial fleet (``events`` lets subclasses arm timers)."""
        for server in self.cluster:
            ledger.start(server.server_id, server.instance_type, 0.0)

    def _start_billing(
        self,
        ledger: InstanceUsageLedger,
        server_id: int,
        itype,
        now: float,
        request: ScaleRequest,
    ) -> None:
        """Open billing for one scale-up instance (subclasses price by market)."""
        ledger.start(server_id, itype, now)

    def _after_instance_ready(
        self, server_id: int, type_name: str, now: float, events: EventQueue
    ) -> None:
        """Called once a provisioned instance joins the schedulable set."""
        self._arm_fault_timers(server_id, type_name, now, events)

    def _after_dispatch(self, record: QueryRecord) -> None:
        """Called for every committed dispatch, before its completion is scheduled."""
        if self._track_inflight:
            self._inflight.setdefault(record.server_id, []).append(record)

    def _market_label(self, server_id: int) -> str:
        """Purchase market of a crashed instance's like-for-like replacement."""
        return "on-demand"

    # -- fault injection -----------------------------------------------------------------
    def _arm_initial_faults(self, events: EventQueue) -> None:
        """Arm crash/slowdown timers for the initial fleet (no-op without injection)."""
        if self.faults is None or self._outstanding <= 0:
            return
        for server in self.cluster:
            self._arm_fault_timers(server.server_id, server.type_name, 0.0, events)

    def _arm_fault_timers(
        self, server_id: int, type_name: str, now: float, events: EventQueue
    ) -> None:
        """Draw this instance's crash and first-slowdown delays (zero-hazard: no draw).

        Gated on outstanding work so a replacement that becomes ready after the trace
        is fully served cannot re-arm timers and drag the billing horizon past the
        work (the same contract as the spot reclaim timers).
        """
        if self.faults is None or self._outstanding <= 0:
            return
        delay = self.faults.draw_failure_delay_ms(type_name, self._fault_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.INSTANCE_FAILED, (server_id, type_name))
            )
        delay = self.faults.draw_slowdown_delay_ms(type_name, self._fault_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.SLOWDOWN_BEGIN, (server_id, type_name))
            )
        # gray modes draw from the dedicated gray stream, after the fault-stream
        # draws above, so arming them never perturbs crash/slowdown schedules
        delay = self.faults.draw_degradation_delay_ms(type_name, self._gray_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.DEGRADATION_ONSET, (server_id, type_name))
            )
        delay = self.faults.draw_flaky_delay_ms(type_name, self._gray_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.FLAKY_BEGIN, (server_id, type_name))
            )
        delay = self.faults.draw_zombie_delay_ms(type_name, self._gray_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.ZOMBIE_ONSET, (server_id, type_name))
            )

    def _idle_timer_kinds(self) -> Set[EventKind]:
        """Event kinds that must not outlive the workload (subclasses widen)."""
        kinds: Set[EventKind] = set()
        if self.faults is not None:
            kinds |= {
                EventKind.INSTANCE_FAILED,
                EventKind.SLOWDOWN_BEGIN,
                EventKind.SLOWDOWN_END,
                EventKind.DEGRADATION_ONSET,
                EventKind.FLAKY_BEGIN,
                EventKind.FLAKY_END,
                EventKind.ZOMBIE_ONSET,
            }
        if self.retry is not None and self.retry.response_timeout_ms is not None:
            kinds.add(EventKind.RESPONSE_TIMEOUT)
        # Health checks and probes must not keep a settled run alive; a probe that is
        # discarded leaves its server quarantined through the horizon, which is the
        # correct billing outcome for capacity parked when the trace ended.
        if self.monitor is not None:
            kinds |= {EventKind.HEALTH_CHECK, EventKind.HEALTH_PROBE}
        if self.hedges is not None:
            kinds.add(EventKind.HEDGE_TIMER)
        return kinds

    def _settle_outstanding(self, events: EventQueue) -> None:
        """One query reached a terminal outcome; at zero, drop lingering timers.

        Pending fault/timeout (and, in subclasses, reclaim) timers must not keep the
        run — and therefore every instance's billing — alive once the trace is fully
        settled, exactly like a chaos-free run ending with its last completion.
        """
        self._outstanding -= 1
        if self._outstanding == 0:
            kinds = self._idle_timer_kinds()
            if kinds:
                events.discard(lambda e: e.kind in kinds)

    def _fail_attempt(
        self,
        query: Query,
        now: float,
        reason: str,
        events: EventQueue,
    ) -> None:
        """One dispatch attempt failed (crash-voided or timed out): retry or dead-letter.

        With retry budget left the query re-enters the pending queue after exponential
        backoff (re-injected as an arrival event, like the preemption re-queue, so the
        normal scheduling round redistributes it); exhausted queries go to the
        dead-letter account — every arrival ends in exactly one terminal outcome.
        """
        qid = query.query_id
        failures = self._attempt_failures.get(qid, 0) + 1
        self._attempt_failures[qid] = failures
        if self.retry is not None and failures < self.retry.max_attempts:
            self._requeued_ids.add(qid)
            self._retries += 1
            events.push(
                Event(
                    now + self.retry.backoff_ms(failures), EventKind.QUERY_ARRIVAL, query
                )
            )
        else:
            self.dead_letters.append(DeadLetterEntry(query, now, reason, failures))
            self._settle_outstanding(events)

    # -- admission control ---------------------------------------------------------------
    def _admit(self, pending: PendingQueue, now: float, events: EventQueue):
        """The admission valve before a scheduling round (identity without a controller).

        Sheds the lowest-value backlog overflow terminally (recorded, settled), then
        caps the round at the adaptive concurrency limit by handing the policy a
        prefix of the queue instead of the whole backlog.
        """
        if self.admission is None:
            return pending
        overflow = self.admission.to_shed(len(pending))
        if overflow > 0:
            for query in select_shed_victims(pending.snapshot(), overflow):
                pending.remove(query.query_id)
                self.shed_queries.append(ShedEntry(query, now))
                self._settle_outstanding(events)
            self.admission.record_shed(overflow)
        limit = self.admission.concurrency_limit
        if len(pending) > limit:
            return list(pending.snapshot()[:limit])
        return pending

    # -- crash / slowdown / timeout handling ---------------------------------------------
    def _handle_instance_failure(
        self,
        payload,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        """Apply one ``INSTANCE_FAILED`` event; returns True when membership changed."""
        if isinstance(payload, CrashStorm):
            changed = False
            for server in self._storm_victims(payload):
                changed = (
                    self._crash_server(server, now, events, ledger, scale_log, payload.reason)
                    or changed
                )
            return changed
        server_id, _type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return False  # already decommissioned, killed, or cancelled
        return self._crash_server(server, now, events, ledger, scale_log, "hazard")

    def _storm_victims(self, storm: CrashStorm) -> List[ServerInstance]:
        """A scripted storm's victims: first ``count`` live servers in cluster order.

        A storm is indiscriminate (rack power loss takes whatever was racked there),
        so no cost-aware ordering applies — cluster iteration order is the
        deterministic stand-in for physical placement.
        """
        victims = [
            s
            for s in self.cluster
            if storm.type_name is None or s.type_name == storm.type_name
        ]
        return victims[: storm.count]

    def _crash_server(
        self,
        server: ServerInstance,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        reason: str,
    ) -> bool:
        """An unannounced crash: no warning window, no draining, in-flight work voided.

        Billing closes exactly at the failure instant with the interval tagged failed
        (clouds do not charge past a host death).  Replacement mirrors the preemption
        path — the controller absorbs the loss via ``observe_failure`` and force-replans,
        or the injector's ``auto_replace`` issues a like-for-like ``SCALE_UP`` — gated
        on outstanding work so the replacement chain cannot outlive the trace.
        """
        server_id = server.server_id
        self.cluster.remove_server(server_id)
        ledger.stop(server_id, now, failed=True)
        scale_log.append(
            ScaleLogEntry(now, "instance_failed", server.type_name, 1, reason)
        )
        if self._outstanding > 0:
            observe = getattr(self.controller, "observe_failure", None)
            if observe is not None:
                observe(server.type_name, now)
                decision = self.controller.maybe_replan(now)
                if decision is not None:
                    self._forced_replans.append(decision)
                    self._emit_scale_events(decision, now, events)
            elif self.faults is not None and self.faults.auto_replace:
                events.push(
                    Event(
                        now,
                        EventKind.SCALE_UP,
                        ScaleRequest(
                            server.type_name,
                            1,
                            reason="replace_failed",
                            market=self._market_label(server_id),
                        ),
                    )
                )
        voided = self._inflight.pop(server_id, [])
        for record in voided:
            # void the scheduled completion; the attempt failed with no warning, so
            # it goes through the retry/dead-letter account (unlike the announced
            # preemption path, which re-queues unconditionally)
            if id(record) in self._zombie_attempts:
                # a zombie attempt has no completion event to void
                self._zombie_attempts.discard(id(record))
            else:
                self._killed.add(id(record))
            self._voided_dispatches += 1
            pair = self._hedge_pairs.pop(record.query.query_id, None)
            if pair is not None:
                # the surviving hedge attempt still serves this query; the crash
                # resolved the race instead of failing the client path
                self.hedges_cancelled += 1
                continue
            self._fail_attempt(record.query, now, "crash", events)
        if voided:
            scale_log.append(
                ScaleLogEntry(now, "void_inflight", server.type_name, len(voided), reason)
            )
        # drop gray-failure state for the dead server
        if self.monitor is not None:
            self.monitor.forget(server_id)
        span = self._quarantine_spans.pop(server_id, None)
        if span is not None:
            span.end_ms = now  # the failed interval takes the whole cost anyway
        self._zombie_ids.discard(server_id)
        self._breakers.pop(server_id, None)
        return True

    def _handle_slowdown_begin(
        self, payload, now: float, events: EventQueue
    ) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return  # crashed/decommissioned before the slowdown started
        profile = self.faults[type_name]
        until = now + profile.slowdown_duration_ms
        server.begin_slowdown(profile.slowdown_factor, until)
        events.push(Event(until, EventKind.SLOWDOWN_END, (server_id, type_name)))

    def _handle_slowdown_end(
        self, payload, now: float, events: EventQueue
    ) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return  # died mid-slowdown: nothing to restore, nothing to re-arm
        server.end_slowdown()
        if self._outstanding > 0:
            delay = self.faults.draw_slowdown_delay_ms(type_name, self._fault_rng)
            if delay is not None:
                events.push(
                    Event(now + delay, EventKind.SLOWDOWN_BEGIN, (server_id, type_name))
                )

    def _handle_response_timeout(self, record: QueryRecord, now: float, events: EventQueue) -> None:
        """The response deadline elapsed before the completion: abandon the attempt.

        The server still finishes the work (its local queue drains at the original
        completion time — the client has gone away, the GPU has not), but the
        dispatch is voided and the query retries elsewhere or dead-letters.
        """
        inflight = self._inflight.get(record.server_id)
        if inflight is None or record not in inflight:
            return  # completed, crash-voided, or preempted before the deadline
        inflight.remove(record)
        if not inflight:
            del self._inflight[record.server_id]
        if id(record) in self._zombie_attempts:
            # a zombie attempt has no completion event to swallow
            self._zombie_attempts.discard(id(record))
        else:
            self._timed_out.add(id(record))
        self._voided_dispatches += 1
        pair = self._hedge_pairs.pop(record.query.query_id, None)
        if pair is not None:
            # the partner attempt is still in flight and will serve the query; the
            # timeout resolved the hedge race instead of failing the client path
            self.hedges_cancelled += 1
            return
        self._fail_attempt(record.query, now, "timeout", events)

    # -- gray-failure injection handlers -------------------------------------------------
    def _handle_degradation_onset(
        self, payload, now: float, scale_log: List[ScaleLogEntry]
    ) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return  # crashed/decommissioned before the onset
        server.begin_degradation(self.faults[type_name].degradation_factor)
        scale_log.append(
            ScaleLogEntry(now, "degradation_onset", type_name, 1, f"server{server_id}")
        )

    def _handle_flaky_begin(self, payload, now: float, events: EventQueue) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return
        profile = self.faults[type_name]
        until = now + profile.flaky_duration_ms
        server.begin_slowdown(profile.flaky_factor, until)
        events.push(Event(until, EventKind.FLAKY_END, (server_id, type_name)))

    def _handle_flaky_end(self, payload, now: float, events: EventQueue) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return
        server.end_slowdown()
        if self._outstanding > 0:
            delay = self.faults.draw_flaky_delay_ms(type_name, self._gray_rng)
            if delay is not None:
                events.push(
                    Event(now + delay, EventKind.FLAKY_BEGIN, (server_id, type_name))
                )

    def _handle_zombie_onset(
        self, payload, now: float, scale_log: List[ScaleLogEntry]
    ) -> None:
        server_id, type_name = payload
        try:
            self.cluster.server_by_id(server_id)
        except KeyError:
            return
        self._zombie_ids.add(server_id)
        scale_log.append(
            ScaleLogEntry(now, "zombie_onset", type_name, 1, f"server{server_id}")
        )

    # -- quarantine lifecycle ------------------------------------------------------------
    def _breaker(self, server_id: int) -> CircuitBreaker:
        return self._breakers.setdefault(server_id, CircuitBreaker())

    def _quarantine_pool(self, server: ServerInstance) -> List[ServerInstance]:
        """The capacity pool the liveness guard counts (subclasses scope per model)."""
        return list(self.cluster)

    def _hedge_targets(self, record: QueryRecord) -> List[ServerInstance]:
        """Candidate servers for a hedge duplicate (subclasses scope per model)."""
        return self.cluster.active_servers()

    def _quarantine_server(
        self,
        server: ServerInstance,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        reason: str,
    ) -> bool:
        """Open the server's breaker: isolate, bill, notify, probe later.

        Returns True when membership changed.  The probation-liveness guard
        refuses to quarantine the last accepting server of its pool — a fully
        quarantined fleet could never serve the probe traffic that re-admits
        servers, so one (possibly unhealthy) server always stays eligible.
        """
        if server.draining or server.quarantined:
            return False
        accepting = sum(1 for s in self._quarantine_pool(server) if s.accepting)
        if accepting <= 1:
            return False
        server_id = server.server_id
        breaker = self._breaker(server_id)
        breaker.trip(now)
        server.begin_quarantine()
        scale_log.append(
            ScaleLogEntry(
                now, "quarantine", server.type_name, 1, f"server{server_id}:{reason}"
            )
        )
        self._quarantine_spans[server_id] = ledger.record_span(
            server_id, SPAN_QUARANTINE, now
        )
        # stuck zombie attempts can never complete; abandon them now so their
        # queries re-enter the client path (retry/dead-letter) immediately
        stuck = [
            r
            for r in self._inflight.get(server_id, ())
            if id(r) in self._zombie_attempts
        ]
        for record in stuck:
            self._void_stuck_attempt(record, now, events, "quarantine")
        if self._outstanding > 0:
            observe = getattr(self.controller, "observe_quarantine", None)
            if observe is not None:
                observe(server.type_name, now)
                decision = self.controller.maybe_replan(now)
                if decision is not None:
                    self._forced_replans.append(decision)
                    self._emit_scale_events(decision, now, events)
        events.push(
            Event(
                now + breaker.probation_delay_ms(self.health),
                EventKind.HEALTH_PROBE,
                (server_id, server.type_name),
            )
        )
        return True

    def _handle_health_probe(
        self,
        payload,
        now: float,
        events: EventQueue,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        """Probation dwell elapsed: breaker half-open, server re-admitted on trial."""
        server_id, type_name = payload
        breaker = self._breakers.get(server_id)
        if breaker is None or breaker.state != BREAKER_OPEN:
            return False
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return False  # crashed/decommissioned while quarantined
        if not server.quarantined:
            return False
        breaker.half_open()
        server.end_quarantine()
        span = self._quarantine_spans.pop(server_id, None)
        if span is not None:
            span.end_ms = now
        if self.monitor is not None:
            # fresh trial: old degraded samples must not instantly re-trip
            self.monitor.reset_server(server_id)
        scale_log.append(
            ScaleLogEntry(now, "probation", type_name, 1, f"server{server_id}")
        )
        if self._outstanding > 0:
            observe = getattr(self.controller, "observe_readmit", None)
            if observe is not None:
                observe(type_name, now)
                decision = self.controller.maybe_replan(now)
                if decision is not None:
                    self._forced_replans.append(decision)
                    self._emit_scale_events(decision, now, events)
        return True

    def _void_stuck_attempt(
        self, record: QueryRecord, now: float, events: EventQueue, reason: str
    ) -> None:
        """Abandon an attempt that can never complete (zombie-stuck or overdue)."""
        inflight = self._inflight.get(record.server_id)
        if inflight is not None and record in inflight:
            inflight.remove(record)
            if not inflight:
                del self._inflight[record.server_id]
        self._voided_dispatches += 1
        if id(record) in self._zombie_attempts:
            self._zombie_attempts.discard(id(record))
        else:
            self._absorbed.add(id(record))
        pair = self._hedge_pairs.pop(record.query.query_id, None)
        if pair is not None:
            # the partner attempt still serves the query
            self.hedges_cancelled += 1
            return
        self._fail_attempt(record.query, now, reason, events)

    def _handle_health_check(
        self,
        payload,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        """An attempt's expected completion is overdue: accrue suspicion, isolate.

        Fires only for attempts that never resolved — a genuine completion always
        lands strictly before its check (the grace factor exceeds 1), so this path
        carries zero false positives from queueing delay.  Whether or not the
        breaker trips (the liveness guard may refuse), the overdue attempt itself
        is abandoned so its query re-enters the client path — conservation never
        depends on isolation succeeding.
        """
        record, expected_ms = payload
        if self.monitor is None:
            return False
        inflight = self._inflight.get(record.server_id)
        if inflight is None or record not in inflight:
            return False  # resolved before the check fired
        overdue = now - record.completion_ms
        self.monitor.record_overdue(record.server_id, overdue, expected_ms)
        changed = False
        if self.monitor.is_suspect(record.server_id):
            try:
                server = self.cluster.server_by_id(record.server_id)
            except KeyError:
                server = None
            if server is not None:
                changed = self._quarantine_server(
                    server, now, events, ledger, scale_log, "suspect"
                )
        still = self._inflight.get(record.server_id)
        if still is not None and record in still:
            self._void_stuck_attempt(record, now, events, "overdue")
        return changed

    # -- hedged dispatch -----------------------------------------------------------------
    def _arm_watchdogs(
        self, record: QueryRecord, now: float, completion: float, events: EventQueue
    ) -> None:
        """Arm the overdue health check and (maybe) the hedge timer for one dispatch."""
        if self.monitor is not None:
            expected = max(completion - now, 1e-6)
            events.push(
                Event(
                    now + self.health.overdue_grace_factor * expected,
                    EventKind.HEALTH_CHECK,
                    (record, expected),
                )
            )
        if self.hedges is not None and record.query.query_id not in self._hedge_pairs:
            delay = self.hedges.hedge_delay_ms(record.server_type)
            if delay is not None and (
                id(record) in self._zombie_attempts or completion - now > delay
            ):
                events.push(Event(now + delay, EventKind.HEDGE_TIMER, record))

    def _handle_hedge_timer(
        self, record: QueryRecord, now: float, events: EventQueue
    ) -> None:
        """The attempt outlived its hedge delay: duplicate onto the best idle server."""
        inflight = self._inflight.get(record.server_id)
        if inflight is None or record not in inflight:
            return  # resolved before the timer fired
        qid = record.query.query_id
        if qid in self._hedge_pairs:
            return  # already hedged once
        candidates = [
            s
            for s in self._hedge_targets(record)
            if s.accepting and s.is_idle(now) and s.server_id != record.server_id
        ]
        if not candidates:
            return  # no eligible idle capacity; the primary keeps its chance
        best = min(
            candidates,
            key=lambda s: (s.profile.latency_ms(record.query.batch_size), s.server_id),
        )
        start, completion, service = best.dispatch(
            record.query, now, noise=self.noise, rng=self.rng
        )
        duplicate = QueryRecord(
            query=record.query,
            server_id=best.server_id,
            server_type=best.type_name,
            start_ms=start,
            completion_ms=completion,
            service_ms=service,
        )
        self._after_dispatch(duplicate)
        self._hedge_extra_dispatches += 1
        self.hedges_launched += 1
        self._hedge_pairs[qid] = (record, duplicate)
        if best.server_id in self._zombie_ids:
            self._zombie_attempts.add(id(duplicate))
        else:
            events.push(Event(completion, EventKind.SERVICE_COMPLETION, duplicate))
        timeout = self.retry.response_timeout_ms if self.retry is not None else None
        if timeout is not None and (
            best.server_id in self._zombie_ids or completion - now > timeout
        ):
            # the duplicate needs its own recovery path: without it, a hedge
            # landing on a zombie under timeout-only recovery strands the query
            events.push(Event(now + timeout, EventKind.RESPONSE_TIMEOUT, duplicate))
        if self.monitor is not None:
            expected = max(completion - now, 1e-6)
            events.push(
                Event(
                    now + self.health.overdue_grace_factor * expected,
                    EventKind.HEALTH_CHECK,
                    (duplicate, expected),
                )
            )

    def _cancel_hedge_loser(
        self, loser: QueryRecord, now: float, ledger: InstanceUsageLedger
    ) -> None:
        """First completion won the race: cancel the loser, bill its partial work."""
        inflight = self._inflight.get(loser.server_id)
        if inflight is not None and loser in inflight:
            inflight.remove(loser)
            if not inflight:
                del self._inflight[loser.server_id]
        self._voided_dispatches += 1
        self.hedges_cancelled += 1
        if id(loser) in self._zombie_attempts:
            self._zombie_attempts.discard(id(loser))
        else:
            self._absorbed.add(id(loser))
        # partial work: the loser occupied its server from service start (if it
        # started at all) until the cancellation instant
        span_start = min(loser.start_ms, now)
        if now > span_start:
            ledger.record_span(loser.server_id, SPAN_HEDGE, span_start, now)

    def _observe_health(
        self,
        record: QueryRecord,
        server: ServerInstance,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        """Feed one genuine completion to the hedge/health layers; maybe quarantine."""
        if self.hedges is not None:
            self.hedges.observe(record.server_type, record.service_ms)
        if self.monitor is None:
            return False
        server_id = server.server_id
        breaker = self._breakers.get(server_id)
        if breaker is not None and breaker.state == BREAKER_OPEN:
            # in-flight work finishing behind an open breaker: not probe traffic,
            # and degraded-period samples must not poison the fresh trial
            return False
        if breaker is not None and breaker.state == BREAKER_HALF_OPEN:
            ratio = self.monitor.sample_ratio(
                record.server_type, record.service_ms, record.query.batch_size
            )
            self.monitor.observe_completion(
                server_id, record.server_type, record.service_ms, record.query.batch_size
            )
            if ratio >= self.health.degrade_ratio:
                return self._quarantine_server(
                    server, now, events, ledger, scale_log, "probe_failed"
                )
            breaker.probes_ok += 1
            if breaker.probes_ok >= self.health.probe_successes:
                breaker.close()
                scale_log.append(
                    ScaleLogEntry(
                        now, "breaker_close", record.server_type, 1, f"server{server_id}"
                    )
                )
            return False
        self.monitor.observe_completion(
            server_id, record.server_type, record.service_ms, record.query.batch_size
        )
        if server.accepting and self.monitor.is_degraded(server_id, record.server_type):
            return self._quarantine_server(
                server, now, events, ledger, scale_log, "degraded"
            )
        return False

    # -- event handling -----------------------------------------------------------------
    def _handle(
        self,
        event: Event,
        now: float,
        metrics: ServingMetrics,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        warmup_ids,
        events: EventQueue,
    ) -> Tuple[bool, bool]:
        """Apply one event; returns ``(membership_changed, was_arrival)``."""
        if event.kind == EventKind.SERVICE_COMPLETION:
            record: QueryRecord = event.payload
            if id(record) in self._killed:
                # the server died mid-service; the attempt was voided and this
                # completion never happened
                self._killed.discard(id(record))
                return False, False
            timed_out = id(record) in self._timed_out
            absorbed = id(record) in self._absorbed
            # a swallowed completion drains the server's local queue (the GPU
            # finished the work) but the client path already moved on — timeout
            # abandonments and cancelled hedge/stuck attempts alike
            swallowed = timed_out or absorbed
            if swallowed:
                self._timed_out.discard(id(record))
                self._absorbed.discard(id(record))
                try:
                    self.cluster.server_by_id(record.server_id)
                except KeyError:
                    # The abandoned attempt's server crashed after the timeout
                    # (the crash could not void the record: the timeout had
                    # already pulled it out of the in-flight set), so this
                    # phantom completion has no server left to account against.
                    return False, False
            else:
                inflight = self._inflight.get(record.server_id)
                if inflight is not None:
                    inflight.remove(record)
                    if not inflight:
                        del self._inflight[record.server_id]
                self._settle_outstanding(events)
            server = self.cluster.server_by_id(record.server_id)
            server.complete_one()
            health_changed = False
            if not swallowed:
                pair = self._hedge_pairs.pop(record.query.query_id, None)
                if pair is not None:
                    # first genuine completion wins the race; the partner is
                    # cancelled and its partial occupancy billed as hedge cost
                    primary, duplicate = pair
                    if record is duplicate:
                        self.hedge_wins += 1
                        self._cancel_hedge_loser(primary, now, ledger)
                    else:
                        self._cancel_hedge_loser(duplicate, now, ledger)
                if record.query.query_id not in warmup_ids:
                    metrics.record(record)
                    if self.admission is not None:
                        self.admission.observe_latency(record.latency_ms)
                self.policy.observe_completion(record)
                health_changed = self._observe_health(
                    record, server, now, events, ledger, scale_log
                )
            if server.drained:
                self.cluster.remove_server(server.server_id)
                ledger.stop(server.server_id, now)
                scale_log.append(
                    ScaleLogEntry(now, "decommission", server.type_name, 1)
                )
                return True, False
            return health_changed, False

        if event.kind == EventKind.QUERY_ARRIVAL:
            query: Query = event.payload
            if query.query_id in self._requeued_ids:
                # a re-queue (preemption or retry backoff), not fresh offered load:
                # it joins the pending queue but must not inflate the controller's
                # arrival-rate estimate
                self._requeued_ids.discard(query.query_id)
                return False, True
            if self.controller is not None:
                self.controller.observe_arrival(query, now)
            return False, True

        if event.kind == EventKind.INSTANCE_FAILED:
            return (
                self._handle_instance_failure(event.payload, now, events, ledger, scale_log),
                False,
            )

        if event.kind == EventKind.SLOWDOWN_BEGIN:
            self._handle_slowdown_begin(event.payload, now, events)
            return False, False

        if event.kind == EventKind.SLOWDOWN_END:
            self._handle_slowdown_end(event.payload, now, events)
            return False, False

        if event.kind == EventKind.RESPONSE_TIMEOUT:
            self._handle_response_timeout(event.payload, now, events)
            return False, False

        if event.kind == EventKind.DEGRADATION_ONSET:
            self._handle_degradation_onset(event.payload, now, scale_log)
            return False, False

        if event.kind == EventKind.FLAKY_BEGIN:
            self._handle_flaky_begin(event.payload, now, events)
            return False, False

        if event.kind == EventKind.FLAKY_END:
            self._handle_flaky_end(event.payload, now, events)
            return False, False

        if event.kind == EventKind.ZOMBIE_ONSET:
            self._handle_zombie_onset(event.payload, now, scale_log)
            return False, False

        if event.kind == EventKind.HEALTH_CHECK:
            return (
                self._handle_health_check(event.payload, now, events, ledger, scale_log),
                False,
            )

        if event.kind == EventKind.HEALTH_PROBE:
            return (
                self._handle_health_probe(event.payload, now, events, scale_log),
                False,
            )

        if event.kind == EventKind.HEDGE_TIMER:
            self._handle_hedge_timer(event.payload, now, events)
            return False, False

        if event.kind == EventKind.SCALE_UP:
            request: ScaleRequest = event.payload
            itype = self.cluster.config.catalog[request.type_name]
            for _ in range(request.count):
                # billing starts at the request; the instance is schedulable only
                # after the startup delay
                server_id = self.cluster.reserve_server_id()
                self._start_billing(ledger, server_id, itype, now, request)
                self._booting.setdefault(request.type_name, []).append(server_id)
                events.push(
                    Event(
                        now + self.startup_delay_ms,
                        EventKind.INSTANCE_READY,
                        (server_id, request.type_name),
                    )
                )
            scale_log.append(
                ScaleLogEntry(now, "scale_up", request.type_name, request.count, request.reason)
            )
            return False, False

        if event.kind == EventKind.SCALE_DOWN:
            request = event.payload
            self.cluster.config.catalog[request.type_name]  # raises on unknown type
            remaining = request.count
            # cancel still-booting instances first (newest first): they have not
            # served anything, so reversing them is free apart from the boot billing
            booting = self._booting.get(request.type_name, [])
            while remaining > 0 and booting:
                server_id = booting.pop()
                self._cancelled.add(server_id)
                ledger.stop(server_id, now)
                scale_log.append(
                    ScaleLogEntry(now, "cancel_startup", request.type_name, 1, request.reason)
                )
                remaining -= 1
            victims = (
                self.cluster.drain_servers(request.type_name, remaining, now)
                if remaining > 0
                else []
            )
            changed = False
            for server in victims:
                if server.drained:  # already idle: decommission on the spot
                    self.cluster.remove_server(server.server_id)
                    ledger.stop(server.server_id, now)
                    scale_log.append(
                        ScaleLogEntry(now, "decommission", server.type_name, 1)
                    )
                changed = True
            scale_log.append(
                ScaleLogEntry(
                    now, "scale_down", request.type_name, len(victims), request.reason
                )
            )
            return changed, False

        if event.kind == EventKind.INSTANCE_READY:
            server_id, type_name = event.payload
            if server_id in self._cancelled:
                self._cancelled.discard(server_id)
                return False, False
            booting = self._booting.get(type_name, [])
            if server_id in booting:
                booting.remove(server_id)
            self.cluster.add_server(type_name, now_ms=now, server_id=server_id)
            scale_log.append(ScaleLogEntry(now, "instance_ready", type_name, 1))
            self._after_instance_ready(server_id, type_name, now, events)
            return True, False

        return False, False  # CONTROL and future kinds: no-op

    def _emit_scale_events(
        self, decision: ReplanDecision, now: float, events: EventQueue
    ) -> None:
        for type_name, delta in decision.scale_deltas.items():
            if delta > 0:
                events.push(
                    Event(
                        now,
                        EventKind.SCALE_UP,
                        ScaleRequest(type_name, delta, reason="replan"),
                    )
                )
        # When several types shrink at once, drain the most cost-efficient victims
        # first ($/hr freed per unit of lost QoS-feasible capacity): same-timestamp
        # SCALE_DOWN events process in insertion order, so the priority here decides
        # which types give up booting instances and live servers first.
        shrinking = [name for name, delta in decision.scale_deltas.items() if delta < 0]
        for type_name in scale_down_priority(
            self.cluster.profiles, self.cluster.model, shrinking
        ):
            events.push(
                Event(
                    now,
                    EventKind.SCALE_DOWN,
                    ScaleRequest(
                        type_name, -decision.scale_deltas[type_name], reason="replan"
                    ),
                )
            )

    def _commit(
        self,
        assignments: Sequence[Tuple[Query, int]],
        pending: PendingQueue,
        view: ClusterView,
        now: float,
        events: EventQueue,
    ) -> int:
        count = 0
        for query, server_idx in assignments:
            if query.query_id not in pending:
                raise ValueError(
                    f"policy assigned query {query.query_id}, which is not pending"
                )
            if not 0 <= server_idx < len(view):
                raise ValueError(f"policy assigned an unknown server index {server_idx}")
            pending.remove(query.query_id)
            server = view[server_idx]
            start, completion, service = server.dispatch(
                query, now, noise=self.noise, rng=self.rng
            )
            record = QueryRecord(
                query=query,
                server_id=server.server_id,
                server_type=server.type_name,
                start_ms=start,
                completion_ms=completion,
                service_ms=service,
            )
            self._after_dispatch(record)
            zombie = server.server_id in self._zombie_ids
            if zombie:
                # a zombie accepts the dispatch but never emits its completion:
                # the attempt resolves only through a watchdog (health check,
                # response timeout, quarantine void, or a winning hedge partner)
                self._zombie_attempts.add(id(record))
            else:
                events.push(Event(completion, EventKind.SERVICE_COMPLETION, record))
            timeout = self.retry.response_timeout_ms if self.retry is not None else None
            if timeout is not None and (zombie or completion - now > timeout):
                # the deadline will elapse strictly before the completion: arm the
                # abandon timer (never armed when the attempt will make it in time;
                # a zombie attempt never makes it, so it is always armed)
                events.push(Event(now + timeout, EventKind.RESPONSE_TIMEOUT, record))
            if self.monitor is not None or self.hedges is not None:
                self._arm_watchdogs(record, now, completion, events)
            count += 1
        return count


def simulate_elastic_serving(
    cluster: Cluster,
    policy,
    queries: Sequence[Query],
    *,
    controller: Optional[ElasticKairosController] = None,
    **kwargs,
) -> ElasticSimulationReport:
    """Convenience wrapper mirroring :func:`~repro.sim.simulation.simulate_serving`."""
    sim = ElasticServingSimulation(cluster, policy, controller=controller, **kwargs)
    return sim.run(queries)
