"""Elastic serving simulation: provisioning events, draining, and online re-planning.

:class:`ElasticServingSimulation` generalizes :class:`~repro.sim.simulation.ServingSimulation`
to clusters whose membership changes mid-run.  Everything — arrivals, completions, and
the new provisioning events — flows through one :class:`~repro.sim.engine.EventQueue`
under the existing ordering contract (completions before arrivals at equal
timestamps), so elastic runs are exactly as deterministic as static ones.

Lifecycle of a scale action:

``SCALE_UP``
    An :class:`~repro.core.controller.ElasticKairosController` decision (or an explicit
    scripted event) requests ``count`` instances of a type.  Billing starts immediately
    (clouds charge for boot time) and an ``INSTANCE_READY`` event fires after
    ``startup_delay_ms``; only then does the instance join the schedulable set.

``SCALE_DOWN``
    The least-loaded instances of the type stop accepting work (*draining*).  An idle
    instance is decommissioned on the spot; a busy one finishes its local queue and is
    removed at its final completion.  Billing stops at decommission time.

Scheduling happens on an index-stable :class:`~repro.sim.cluster.ClusterView` of the
currently accepting servers, rebuilt (and the policy re-bound) whenever membership
changes, so existing policies work unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cloud.billing import InstanceUsageLedger
from repro.core.controller import ElasticKairosController, ReplanDecision
from repro.sim.cluster import Cluster, ClusterView
from repro.sim.engine import EventQueue, SimulationClock
from repro.sim.events import CrashStorm, Event, EventKind, ScaleRequest
from repro.sim.faults import (
    AdmissionController,
    DeadLetterEntry,
    FaultInjector,
    RetryPolicy,
    ShedEntry,
    select_shed_victims,
)
from repro.sim.metrics import QueryRecord, ServingMetrics
from repro.sim.pending import PendingQueue
from repro.sim.server import ServerInstance, ServiceNoiseModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative
from repro.workload.query import Query


def _probe_batches(max_batch: int) -> List[int]:
    """Deterministic geometric batch ladder probing a type's QoS-feasible range."""
    ladder = []
    b = 1
    while b < max_batch:
        ladder.append(b)
        b *= 2
    ladder.append(max_batch)
    return ladder


def drain_cost_efficiency(
    profiles, model, type_name: str, *, probe_batches: Optional[Sequence[int]] = None
) -> float:
    """$/hr freed per unit of QoS-feasible serving capacity lost by draining one instance.

    Higher scores drain first: an expensive type contributing little within-QoS
    throughput frees the most budget per qps given up.  A type that cannot serve any
    probed batch within the model's QoS scores ``inf`` — draining it costs no serving
    capacity at all.  The probe mix is a fixed geometric ladder so the score depends
    only on the profiles, keeping elastic runs deterministic.
    """
    batches = (
        list(probe_batches) if probe_batches is not None else _probe_batches(model.max_batch_size)
    )
    qps = profiles.standalone_qps(model, type_name, batches)
    price = profiles.catalog[type_name].price_per_hour
    if qps <= 0.0:
        return float("inf")
    return price / qps


def scale_down_priority(profiles, model, type_names: Sequence[str]) -> List[str]:
    """Order instance types for draining, most cost-efficient-to-shed first.

    Ties (equal $/hr-per-qps scores) keep catalog order for determinism.
    """
    ranked = sorted(
        type_names,
        key=lambda name: (-drain_cost_efficiency(profiles, model, name),
                          profiles.catalog.index_of(name)),
    )
    return ranked


def select_drain_victims(
    cluster: Cluster, requests: Mapping[str, int], now_ms: float
) -> List[ServerInstance]:
    """Synchronously drain a multi-type shrink in cost-aware order (ROADMAP item).

    Types are processed by :func:`scale_down_priority` (most $/hr freed per lost qps
    first); within a type the cluster's least-loaded-first rule picks the instances.
    The returned list is ordered as drained; all victims are put into draining.

    This is the selection policy in callable form, for scripted scenarios and direct
    cluster surgery.  The event-driven simulators apply the *same* ordering by
    emitting their replan ``SCALE_DOWN`` events in :func:`scale_down_priority` order
    (cancellation of still-booting instances has to happen inside the event handler,
    so they cannot drain synchronously through this helper).
    """
    victims: List[ServerInstance] = []
    for type_name in scale_down_priority(cluster.profiles, cluster.model, list(requests)):
        count = int(requests[type_name])
        if count > 0:
            victims.extend(cluster.drain_servers(type_name, count, now_ms))
    return victims


@dataclass
class ScaleLogEntry:
    """One applied provisioning action (for reports and tests)."""

    time_ms: float
    kind: str  # "scale_up" | "scale_down" | "instance_ready" | "decommission"
    type_name: str
    count: int
    reason: str = ""


@dataclass
class ElasticSimulationReport:
    """Everything an elastic serving run produced."""

    metrics: ServingMetrics
    cluster: Cluster
    ledger: InstanceUsageLedger
    policy_name: str
    scheduling_rounds: int
    dispatched_queries: int
    total_queries: int
    simulated_duration_ms: float
    #: Absolute sim time the run ended at (>= any ledger interval end).  The makespan
    #: in ``simulated_duration_ms`` is a *length* that can start after t=0 (warm-up),
    #: so billing integrals must use this absolute horizon instead.
    billing_horizon_ms: float = 0.0
    replans: List[ReplanDecision] = field(default_factory=list)
    scale_log: List[ScaleLogEntry] = field(default_factory=list)
    peak_instances: int = 0
    #: Queries dropped by admission control under overload (graceful degradation).
    shed_queries: List[ShedEntry] = field(default_factory=list)
    #: Queries that exhausted their retry budget — accounted, never silently lost.
    dead_letters: List[DeadLetterEntry] = field(default_factory=list)
    #: Re-admissions pushed by the retry layer (crash- or timeout-failed attempts).
    retries: int = 0
    #: Queries still pending when the run ended (the policy declined the remainder).
    unserved_queries: int = 0

    @property
    def completed_all(self) -> bool:
        return self.dispatched_queries == self.total_queries

    @property
    def instance_failures(self) -> int:
        """Unannounced instance crashes that fired during the run."""
        return sum(e.count for e in self.scale_log if e.kind == "instance_failed")

    def total_cost(self) -> float:
        """Dollar spend over the whole run (ledger integral to the run's end)."""
        return self.ledger.total_cost(self.billing_horizon_ms)

    def summary(self) -> Dict[str, float]:
        data = dict(self.metrics.summary())
        data["scheduling_rounds"] = float(self.scheduling_rounds)
        data["simulated_duration_ms"] = self.simulated_duration_ms
        data["num_replans"] = float(len(self.replans))
        data["total_cost"] = self.total_cost()
        data["peak_instances"] = float(self.peak_instances)
        return data


class ElasticServingSimulation:
    """Serve a query stream on a cluster that can grow and shrink mid-run.

    Parameters
    ----------
    cluster:
        The initial cluster (typically built from the controller's initial plan).
    policy:
        A query-distribution policy (:class:`~repro.schedulers.base.SchedulingPolicy`
        protocol).  It is re-bound on every membership change; policies that learn
        online (the Kairos estimator) keep their learned state across re-binds.
    controller:
        Optional :class:`~repro.core.controller.ElasticKairosController`.  Without one
        the simulation is *static through the elastic code path*: same event loop, no
        provisioning — the honest baseline for re-planning comparisons.
    startup_delay_ms:
        Provisioning delay between a scale-up request and the instance becoming
        schedulable (billing covers the delay).
    scripted_events:
        Optional pre-scheduled provisioning events (``SCALE_UP`` / ``SCALE_DOWN`` with a
        :class:`~repro.sim.events.ScaleRequest` payload, or ``INSTANCE_FAILED`` with a
        :class:`~repro.sim.events.CrashStorm` when fault injection is enabled), e.g.
        for tests or scenarios with known maintenance windows.
    faults:
        Optional :class:`~repro.sim.faults.FaultInjector` arming *unannounced* crash
        and transient-slowdown timers on every commissioned instance.  ``None`` (or a
        zero-hazard injector) leaves the run byte-identical to a fault-free one.
    fault_rng:
        Dedicated generator for fault-delay draws, separate from the service noise
        stream so arming injection never perturbs service times.
    retry:
        Optional :class:`~repro.sim.faults.RetryPolicy`: failed attempts (crash-voided
        or response-timed-out dispatches) re-enter the pending queue after exponential
        backoff until the retry budget is spent, then dead-letter.  Without one, a
        crash-voided query dead-letters immediately (the naive no-retry loop).
        Spot preemption keeps its own announced-loss re-queue path (immediate,
        unbounded) — the retry budget governs *unannounced* failures only.
    admission:
        Optional :class:`~repro.sim.faults.AdmissionController` throttling each
        scheduling round's admitted concurrency from observed latency and shedding
        the lowest-value backlog overflow under overload.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy,
        *,
        controller: Optional[ElasticKairosController] = None,
        qos_ms: Optional[float] = None,
        qos_percentile: float = 99.0,
        startup_delay_ms: float = 2_000.0,
        noise: Optional[ServiceNoiseModel] = None,
        rng: RngLike = None,
        warmup_queries: int = 0,
        scripted_events: Sequence[Event] = (),
        faults: Optional[FaultInjector] = None,
        fault_rng: RngLike = None,
        retry: Optional[RetryPolicy] = None,
        admission: Optional[AdmissionController] = None,
        sharded_events: bool = False,
    ):
        check_non_negative(startup_delay_ms, "startup_delay_ms")
        if warmup_queries < 0:
            raise ValueError("warmup_queries must be non-negative")
        self.cluster = cluster
        self.policy = policy
        self.controller = controller
        self.qos_ms = float(qos_ms) if qos_ms is not None else cluster.model.qos_ms
        self.qos_percentile = float(qos_percentile)
        self.startup_delay_ms = float(startup_delay_ms)
        self.noise = noise
        self.rng = ensure_rng(rng)
        self.warmup_queries = int(warmup_queries)
        self.faults = faults
        self._fault_rng = ensure_rng(fault_rng)
        self.retry = retry
        self.admission = admission
        #: drive the run off a ShardedEventQueue (per-kind shards); byte-identical
        #: to the single-heap path (see repro.sim.sharding)
        self.sharded_events = bool(sharded_events)
        # -- shared chaos/preemption machinery (subclasses reuse all of it) ------------
        #: per-server records dispatched but not yet completed (the voiding source)
        self._inflight: Dict[int, List[QueryRecord]] = {}
        #: object ids of records whose server crashed/was killed (completions are void)
        self._killed: Set[int] = set()
        #: object ids of records abandoned at their response deadline
        self._timed_out: Set[int] = set()
        #: query ids re-injected as arrivals (skip controller rate observation)
        self._requeued_ids: Set[int] = set()
        #: failed attempts per query id (drives the bounded retry budget)
        self._attempt_failures: Dict[int, int] = {}
        #: queries not yet terminally settled; gates replacement provisioning/timers
        self._outstanding = 0
        #: dispatches voided by a kill/crash/timeout (re-dispatches must not
        #: double-count in the report)
        self._voided_dispatches = 0
        #: re-plans forced by capacity loss (merged into the report's list)
        self._forced_replans: List = []
        self._retries = 0
        self.dead_letters: List[DeadLetterEntry] = []
        self.shed_queries: List[ShedEntry] = []
        #: whether dispatches must be tracked for voiding (crash or timeout possible)
        self._track_inflight = faults is not None or (
            retry is not None and retry.response_timeout_ms is not None
        )
        self.scripted_events = tuple(scripted_events)
        for event in self.scripted_events:
            self._validate_scripted(event)
        self._ran = False

    def _validate_scripted(self, event: Event) -> None:
        """Reject unsupported scripted events (subclasses widen the accepted kinds)."""
        if event.kind == EventKind.INSTANCE_FAILED:
            if not isinstance(event.payload, CrashStorm):
                raise ValueError(
                    "scripted instance failures must carry a CrashStorm payload"
                )
            if self.faults is None:
                raise ValueError("scripted crash storms require a FaultInjector")
            return
        if event.kind not in (EventKind.SCALE_UP, EventKind.SCALE_DOWN):
            raise ValueError("scripted events must be SCALE_UP or SCALE_DOWN")
        if not isinstance(event.payload, ScaleRequest):
            raise ValueError("scripted scale events must carry a ScaleRequest payload")

    def run(self, queries: Sequence[Query]) -> ElasticSimulationReport:
        """Serve ``queries`` once.  Unlike :class:`~repro.sim.simulation.ServingSimulation`
        this driver is one-shot: a run permanently mutates cluster membership and the
        controller's observation history, so repeat runs must build fresh objects."""
        if self._ran:
            raise RuntimeError(
                "ElasticServingSimulation is one-shot: cluster membership and "
                "controller state are consumed by run(); build a fresh simulation "
                "(and controller) for another run"
            )
        self._ran = True
        # An empty stream is a valid no-op: zero offered load serves zero queries
        # with empty metrics (scripted provisioning events still apply).
        ordered = sorted(queries, key=lambda q: (q.arrival_time_ms, q.query_id))
        n = len(ordered)
        self._outstanding = n
        self.cluster.reset()
        metrics = ServingMetrics(self.qos_ms, self.qos_percentile)
        scale_log: List[ScaleLogEntry] = []
        replans: List[ReplanDecision] = []

        clock = SimulationClock(0.0)
        if self.sharded_events:
            from repro.sim.sharding import ShardedEventQueue, shard_key_by_kind

            events = ShardedEventQueue(shard_key_by_kind)
        else:
            events = EventQueue()
        for q in ordered:
            events.push(Event(q.arrival_time_ms, EventKind.QUERY_ARRIVAL, q))
        events.push_all(self.scripted_events)
        ledger = InstanceUsageLedger(self.cluster.config.catalog)
        self._open_initial_billing(ledger, events)
        self._arm_initial_faults(events)

        pending = PendingQueue()
        warmup_ids = {q.query_id for q in ordered[: self.warmup_queries]}
        # Scale-ups in flight: reserved ids per type that have not fired INSTANCE_READY
        # yet.  A scale-down cancels these (newest first) before draining live servers,
        # so a replan reversing a recent scale-up cannot strand booting instances.
        self._booting: Dict[str, List[int]] = {}
        self._cancelled: set = set()
        dispatched = 0
        rounds = 0
        peak = len(self.cluster)
        view = self.cluster.active_view()
        self.policy.bind(view, self.qos_ms)
        # generous guard against a policy that never makes progress
        max_steps = 20 * n + 1000
        steps = 0

        while events:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"simulation exceeded {max_steps} steps; the scheduling policy "
                    f"{type(self.policy).__name__} appears to be making no progress"
                )
            now = clock.advance_to(events.peek_time())
            membership_changed = False
            saw_arrival = False

            # Drain the whole timestamp batch; handlers may push follow-up events at
            # `now` (a replan's scale requests), which the inner loop picks up before
            # the scheduling round so new decisions act in the same instant.
            batch = events.pop_batch(now)
            while batch:
                for event in batch:
                    kind_changed, kind_arrival = self._handle(
                        event, now, metrics, ledger, scale_log, warmup_ids, events
                    )
                    membership_changed = membership_changed or kind_changed
                    saw_arrival = saw_arrival or kind_arrival
                    if kind_arrival:
                        pending.append(event.payload)
                # The controller reacts right after the arrivals of this instant are
                # observed — the one-shot re-plan (Fig. 12) happens inside the event
                # loop, not between runs.  Replan BEFORE re-popping: the decision's
                # same-instant scale events must land in the next inner batch, or an
                # empty re-pop would strand them past this round and the outer loop
                # would re-wake at the same `now` for a duplicate scheduling round.
                if saw_arrival and self.controller is not None:
                    decision = self.controller.maybe_replan(now)
                    if decision is not None:
                        replans.append(decision)
                        self._emit_scale_events(decision, now, events)
                    saw_arrival = False
                batch = events.pop_batch(now)

            if membership_changed:
                view = self.cluster.active_view()
                # A fully drained fleet leaves nothing to bind or schedule; queries
                # wait centrally until an INSTANCE_READY brings capacity back (the
                # next membership change re-binds).
                if len(view):
                    self.policy.bind(view, self.qos_ms)
                peak = max(peak, len(self.cluster))

            # scheduling round over the accepting servers (behind the admission valve)
            if pending and len(view):
                admitted = self._admit(pending, now, events)
                if admitted:
                    assignments = self.policy.schedule(now, admitted, view)
                    rounds += 1
                    if assignments:
                        dispatched += self._commit(
                            assignments, pending, view, now, events
                        )

            # Nothing left to fire and the policy declines the remainder: end the run.
            # Recurring fault/reclaim timers are not "something to fire" for this
            # purpose: once every queued event is a hazard timer, no completion,
            # arrival, boot, or scale action is in flight, so nothing the timers do
            # to an idle fleet can serve a backlog the policy already declined — the
            # run has quiesced exactly like the chaos-free case.
            if pending and (not events or events.only_kinds(self._idle_timer_kinds())):
                break

        duration = metrics.makespan_ms() if len(metrics) else clock.now_ms
        # Completions flow through the event queue, so the clock ends at or after the
        # last completion; that is the absolute billing horizon.
        horizon = clock.now_ms
        ledger.close_all(horizon)
        # A voided dispatch never completed; its query re-dispatched (or settled
        # terminally) later, so only the dispatch that stood counts — completed_all
        # keeps its exact meaning.
        if self._forced_replans:
            replans = sorted(replans + self._forced_replans, key=lambda d: d.time_ms)
        return ElasticSimulationReport(
            metrics=metrics,
            cluster=self.cluster,
            ledger=ledger,
            policy_name=getattr(self.policy, "name", type(self.policy).__name__),
            scheduling_rounds=rounds,
            dispatched_queries=dispatched - self._voided_dispatches,
            total_queries=n,
            simulated_duration_ms=duration,
            billing_horizon_ms=horizon,
            replans=replans,
            scale_log=scale_log,
            peak_instances=peak,
            shed_queries=self.shed_queries,
            dead_letters=self.dead_letters,
            retries=self._retries,
            unserved_queries=len(pending),
        )

    # -- subclass hooks -----------------------------------------------------------------
    # The preemption simulator (repro.sim.preemption) extends the lifecycle through
    # these hooks instead of forking the event loop; all defaults reproduce the
    # pre-spot behaviour exactly (locked down by the seed-stability suite).
    def _open_initial_billing(self, ledger: InstanceUsageLedger, events: EventQueue) -> None:
        """Open billing for the initial fleet (``events`` lets subclasses arm timers)."""
        for server in self.cluster:
            ledger.start(server.server_id, server.instance_type, 0.0)

    def _start_billing(
        self,
        ledger: InstanceUsageLedger,
        server_id: int,
        itype,
        now: float,
        request: ScaleRequest,
    ) -> None:
        """Open billing for one scale-up instance (subclasses price by market)."""
        ledger.start(server_id, itype, now)

    def _after_instance_ready(
        self, server_id: int, type_name: str, now: float, events: EventQueue
    ) -> None:
        """Called once a provisioned instance joins the schedulable set."""
        self._arm_fault_timers(server_id, type_name, now, events)

    def _after_dispatch(self, record: QueryRecord) -> None:
        """Called for every committed dispatch, before its completion is scheduled."""
        if self._track_inflight:
            self._inflight.setdefault(record.server_id, []).append(record)

    def _market_label(self, server_id: int) -> str:
        """Purchase market of a crashed instance's like-for-like replacement."""
        return "on-demand"

    # -- fault injection -----------------------------------------------------------------
    def _arm_initial_faults(self, events: EventQueue) -> None:
        """Arm crash/slowdown timers for the initial fleet (no-op without injection)."""
        if self.faults is None or self._outstanding <= 0:
            return
        for server in self.cluster:
            self._arm_fault_timers(server.server_id, server.type_name, 0.0, events)

    def _arm_fault_timers(
        self, server_id: int, type_name: str, now: float, events: EventQueue
    ) -> None:
        """Draw this instance's crash and first-slowdown delays (zero-hazard: no draw).

        Gated on outstanding work so a replacement that becomes ready after the trace
        is fully served cannot re-arm timers and drag the billing horizon past the
        work (the same contract as the spot reclaim timers).
        """
        if self.faults is None or self._outstanding <= 0:
            return
        delay = self.faults.draw_failure_delay_ms(type_name, self._fault_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.INSTANCE_FAILED, (server_id, type_name))
            )
        delay = self.faults.draw_slowdown_delay_ms(type_name, self._fault_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.SLOWDOWN_BEGIN, (server_id, type_name))
            )

    def _idle_timer_kinds(self) -> Set[EventKind]:
        """Event kinds that must not outlive the workload (subclasses widen)."""
        kinds: Set[EventKind] = set()
        if self.faults is not None:
            kinds |= {
                EventKind.INSTANCE_FAILED,
                EventKind.SLOWDOWN_BEGIN,
                EventKind.SLOWDOWN_END,
            }
        if self.retry is not None and self.retry.response_timeout_ms is not None:
            kinds.add(EventKind.RESPONSE_TIMEOUT)
        return kinds

    def _settle_outstanding(self, events: EventQueue) -> None:
        """One query reached a terminal outcome; at zero, drop lingering timers.

        Pending fault/timeout (and, in subclasses, reclaim) timers must not keep the
        run — and therefore every instance's billing — alive once the trace is fully
        settled, exactly like a chaos-free run ending with its last completion.
        """
        self._outstanding -= 1
        if self._outstanding == 0:
            kinds = self._idle_timer_kinds()
            if kinds:
                events.discard(lambda e: e.kind in kinds)

    def _fail_attempt(
        self,
        query: Query,
        now: float,
        reason: str,
        events: EventQueue,
    ) -> None:
        """One dispatch attempt failed (crash-voided or timed out): retry or dead-letter.

        With retry budget left the query re-enters the pending queue after exponential
        backoff (re-injected as an arrival event, like the preemption re-queue, so the
        normal scheduling round redistributes it); exhausted queries go to the
        dead-letter account — every arrival ends in exactly one terminal outcome.
        """
        qid = query.query_id
        failures = self._attempt_failures.get(qid, 0) + 1
        self._attempt_failures[qid] = failures
        if self.retry is not None and failures < self.retry.max_attempts:
            self._requeued_ids.add(qid)
            self._retries += 1
            events.push(
                Event(
                    now + self.retry.backoff_ms(failures), EventKind.QUERY_ARRIVAL, query
                )
            )
        else:
            self.dead_letters.append(DeadLetterEntry(query, now, reason, failures))
            self._settle_outstanding(events)

    # -- admission control ---------------------------------------------------------------
    def _admit(self, pending: PendingQueue, now: float, events: EventQueue):
        """The admission valve before a scheduling round (identity without a controller).

        Sheds the lowest-value backlog overflow terminally (recorded, settled), then
        caps the round at the adaptive concurrency limit by handing the policy a
        prefix of the queue instead of the whole backlog.
        """
        if self.admission is None:
            return pending
        overflow = self.admission.to_shed(len(pending))
        if overflow > 0:
            for query in select_shed_victims(pending.snapshot(), overflow):
                pending.remove(query.query_id)
                self.shed_queries.append(ShedEntry(query, now))
                self._settle_outstanding(events)
            self.admission.record_shed(overflow)
        limit = self.admission.concurrency_limit
        if len(pending) > limit:
            return list(pending.snapshot()[:limit])
        return pending

    # -- crash / slowdown / timeout handling ---------------------------------------------
    def _handle_instance_failure(
        self,
        payload,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        """Apply one ``INSTANCE_FAILED`` event; returns True when membership changed."""
        if isinstance(payload, CrashStorm):
            changed = False
            for server in self._storm_victims(payload):
                changed = (
                    self._crash_server(server, now, events, ledger, scale_log, payload.reason)
                    or changed
                )
            return changed
        server_id, _type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return False  # already decommissioned, killed, or cancelled
        return self._crash_server(server, now, events, ledger, scale_log, "hazard")

    def _storm_victims(self, storm: CrashStorm) -> List[ServerInstance]:
        """A scripted storm's victims: first ``count`` live servers in cluster order.

        A storm is indiscriminate (rack power loss takes whatever was racked there),
        so no cost-aware ordering applies — cluster iteration order is the
        deterministic stand-in for physical placement.
        """
        victims = [
            s
            for s in self.cluster
            if storm.type_name is None or s.type_name == storm.type_name
        ]
        return victims[: storm.count]

    def _crash_server(
        self,
        server: ServerInstance,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        reason: str,
    ) -> bool:
        """An unannounced crash: no warning window, no draining, in-flight work voided.

        Billing closes exactly at the failure instant with the interval tagged failed
        (clouds do not charge past a host death).  Replacement mirrors the preemption
        path — the controller absorbs the loss via ``observe_failure`` and force-replans,
        or the injector's ``auto_replace`` issues a like-for-like ``SCALE_UP`` — gated
        on outstanding work so the replacement chain cannot outlive the trace.
        """
        server_id = server.server_id
        self.cluster.remove_server(server_id)
        ledger.stop(server_id, now, failed=True)
        scale_log.append(
            ScaleLogEntry(now, "instance_failed", server.type_name, 1, reason)
        )
        if self._outstanding > 0:
            observe = getattr(self.controller, "observe_failure", None)
            if observe is not None:
                observe(server.type_name, now)
                decision = self.controller.maybe_replan(now)
                if decision is not None:
                    self._forced_replans.append(decision)
                    self._emit_scale_events(decision, now, events)
            elif self.faults is not None and self.faults.auto_replace:
                events.push(
                    Event(
                        now,
                        EventKind.SCALE_UP,
                        ScaleRequest(
                            server.type_name,
                            1,
                            reason="replace_failed",
                            market=self._market_label(server_id),
                        ),
                    )
                )
        voided = self._inflight.pop(server_id, [])
        for record in voided:
            # void the scheduled completion; the attempt failed with no warning, so
            # it goes through the retry/dead-letter account (unlike the announced
            # preemption path, which re-queues unconditionally)
            self._killed.add(id(record))
            self._voided_dispatches += 1
            self._fail_attempt(record.query, now, "crash", events)
        if voided:
            scale_log.append(
                ScaleLogEntry(now, "void_inflight", server.type_name, len(voided), reason)
            )
        return True

    def _handle_slowdown_begin(
        self, payload, now: float, events: EventQueue
    ) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return  # crashed/decommissioned before the slowdown started
        profile = self.faults[type_name]
        until = now + profile.slowdown_duration_ms
        server.begin_slowdown(profile.slowdown_factor, until)
        events.push(Event(until, EventKind.SLOWDOWN_END, (server_id, type_name)))

    def _handle_slowdown_end(
        self, payload, now: float, events: EventQueue
    ) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return  # died mid-slowdown: nothing to restore, nothing to re-arm
        server.end_slowdown()
        if self._outstanding > 0:
            delay = self.faults.draw_slowdown_delay_ms(type_name, self._fault_rng)
            if delay is not None:
                events.push(
                    Event(now + delay, EventKind.SLOWDOWN_BEGIN, (server_id, type_name))
                )

    def _handle_response_timeout(self, record: QueryRecord, now: float, events: EventQueue) -> None:
        """The response deadline elapsed before the completion: abandon the attempt.

        The server still finishes the work (its local queue drains at the original
        completion time — the client has gone away, the GPU has not), but the
        dispatch is voided and the query retries elsewhere or dead-letters.
        """
        inflight = self._inflight.get(record.server_id)
        if inflight is None or record not in inflight:
            return  # completed, crash-voided, or preempted before the deadline
        inflight.remove(record)
        if not inflight:
            del self._inflight[record.server_id]
        self._timed_out.add(id(record))
        self._voided_dispatches += 1
        self._fail_attempt(record.query, now, "timeout", events)

    # -- event handling -----------------------------------------------------------------
    def _handle(
        self,
        event: Event,
        now: float,
        metrics: ServingMetrics,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        warmup_ids,
        events: EventQueue,
    ) -> Tuple[bool, bool]:
        """Apply one event; returns ``(membership_changed, was_arrival)``."""
        if event.kind == EventKind.SERVICE_COMPLETION:
            record: QueryRecord = event.payload
            if id(record) in self._killed:
                # the server died mid-service; the attempt was voided and this
                # completion never happened
                self._killed.discard(id(record))
                return False, False
            timed_out = id(record) in self._timed_out
            if timed_out:
                self._timed_out.discard(id(record))
                try:
                    self.cluster.server_by_id(record.server_id)
                except KeyError:
                    # The abandoned attempt's server crashed after the timeout
                    # (the crash could not void the record: the timeout had
                    # already pulled it out of the in-flight set), so this
                    # phantom completion has no server left to account against.
                    return False, False
            else:
                inflight = self._inflight.get(record.server_id)
                if inflight is not None:
                    inflight.remove(record)
                    if not inflight:
                        del self._inflight[record.server_id]
                self._settle_outstanding(events)
            server = self.cluster.server_by_id(record.server_id)
            server.complete_one()
            if not timed_out:
                if record.query.query_id not in warmup_ids:
                    metrics.record(record)
                    if self.admission is not None:
                        self.admission.observe_latency(record.latency_ms)
                self.policy.observe_completion(record)
            if server.drained:
                self.cluster.remove_server(server.server_id)
                ledger.stop(server.server_id, now)
                scale_log.append(
                    ScaleLogEntry(now, "decommission", server.type_name, 1)
                )
                return True, False
            return False, False

        if event.kind == EventKind.QUERY_ARRIVAL:
            query: Query = event.payload
            if query.query_id in self._requeued_ids:
                # a re-queue (preemption or retry backoff), not fresh offered load:
                # it joins the pending queue but must not inflate the controller's
                # arrival-rate estimate
                self._requeued_ids.discard(query.query_id)
                return False, True
            if self.controller is not None:
                self.controller.observe_arrival(query, now)
            return False, True

        if event.kind == EventKind.INSTANCE_FAILED:
            return (
                self._handle_instance_failure(event.payload, now, events, ledger, scale_log),
                False,
            )

        if event.kind == EventKind.SLOWDOWN_BEGIN:
            self._handle_slowdown_begin(event.payload, now, events)
            return False, False

        if event.kind == EventKind.SLOWDOWN_END:
            self._handle_slowdown_end(event.payload, now, events)
            return False, False

        if event.kind == EventKind.RESPONSE_TIMEOUT:
            self._handle_response_timeout(event.payload, now, events)
            return False, False

        if event.kind == EventKind.SCALE_UP:
            request: ScaleRequest = event.payload
            itype = self.cluster.config.catalog[request.type_name]
            for _ in range(request.count):
                # billing starts at the request; the instance is schedulable only
                # after the startup delay
                server_id = self.cluster.reserve_server_id()
                self._start_billing(ledger, server_id, itype, now, request)
                self._booting.setdefault(request.type_name, []).append(server_id)
                events.push(
                    Event(
                        now + self.startup_delay_ms,
                        EventKind.INSTANCE_READY,
                        (server_id, request.type_name),
                    )
                )
            scale_log.append(
                ScaleLogEntry(now, "scale_up", request.type_name, request.count, request.reason)
            )
            return False, False

        if event.kind == EventKind.SCALE_DOWN:
            request = event.payload
            self.cluster.config.catalog[request.type_name]  # raises on unknown type
            remaining = request.count
            # cancel still-booting instances first (newest first): they have not
            # served anything, so reversing them is free apart from the boot billing
            booting = self._booting.get(request.type_name, [])
            while remaining > 0 and booting:
                server_id = booting.pop()
                self._cancelled.add(server_id)
                ledger.stop(server_id, now)
                scale_log.append(
                    ScaleLogEntry(now, "cancel_startup", request.type_name, 1, request.reason)
                )
                remaining -= 1
            victims = (
                self.cluster.drain_servers(request.type_name, remaining, now)
                if remaining > 0
                else []
            )
            changed = False
            for server in victims:
                if server.drained:  # already idle: decommission on the spot
                    self.cluster.remove_server(server.server_id)
                    ledger.stop(server.server_id, now)
                    scale_log.append(
                        ScaleLogEntry(now, "decommission", server.type_name, 1)
                    )
                changed = True
            scale_log.append(
                ScaleLogEntry(
                    now, "scale_down", request.type_name, len(victims), request.reason
                )
            )
            return changed, False

        if event.kind == EventKind.INSTANCE_READY:
            server_id, type_name = event.payload
            if server_id in self._cancelled:
                self._cancelled.discard(server_id)
                return False, False
            booting = self._booting.get(type_name, [])
            if server_id in booting:
                booting.remove(server_id)
            self.cluster.add_server(type_name, now_ms=now, server_id=server_id)
            scale_log.append(ScaleLogEntry(now, "instance_ready", type_name, 1))
            self._after_instance_ready(server_id, type_name, now, events)
            return True, False

        return False, False  # CONTROL and future kinds: no-op

    def _emit_scale_events(
        self, decision: ReplanDecision, now: float, events: EventQueue
    ) -> None:
        for type_name, delta in decision.scale_deltas.items():
            if delta > 0:
                events.push(
                    Event(
                        now,
                        EventKind.SCALE_UP,
                        ScaleRequest(type_name, delta, reason="replan"),
                    )
                )
        # When several types shrink at once, drain the most cost-efficient victims
        # first ($/hr freed per unit of lost QoS-feasible capacity): same-timestamp
        # SCALE_DOWN events process in insertion order, so the priority here decides
        # which types give up booting instances and live servers first.
        shrinking = [name for name, delta in decision.scale_deltas.items() if delta < 0]
        for type_name in scale_down_priority(
            self.cluster.profiles, self.cluster.model, shrinking
        ):
            events.push(
                Event(
                    now,
                    EventKind.SCALE_DOWN,
                    ScaleRequest(
                        type_name, -decision.scale_deltas[type_name], reason="replan"
                    ),
                )
            )

    def _commit(
        self,
        assignments: Sequence[Tuple[Query, int]],
        pending: PendingQueue,
        view: ClusterView,
        now: float,
        events: EventQueue,
    ) -> int:
        count = 0
        for query, server_idx in assignments:
            if query.query_id not in pending:
                raise ValueError(
                    f"policy assigned query {query.query_id}, which is not pending"
                )
            if not 0 <= server_idx < len(view):
                raise ValueError(f"policy assigned an unknown server index {server_idx}")
            pending.remove(query.query_id)
            server = view[server_idx]
            start, completion, service = server.dispatch(
                query, now, noise=self.noise, rng=self.rng
            )
            record = QueryRecord(
                query=query,
                server_id=server.server_id,
                server_type=server.type_name,
                start_ms=start,
                completion_ms=completion,
                service_ms=service,
            )
            self._after_dispatch(record)
            events.push(Event(completion, EventKind.SERVICE_COMPLETION, record))
            timeout = self.retry.response_timeout_ms if self.retry is not None else None
            if timeout is not None and completion - now > timeout:
                # the deadline will elapse strictly before the completion: arm the
                # abandon timer (never armed when the attempt will make it in time)
                events.push(Event(now + timeout, EventKind.RESPONSE_TIMEOUT, record))
            count += 1
        return count


def simulate_elastic_serving(
    cluster: Cluster,
    policy,
    queries: Sequence[Query],
    *,
    controller: Optional[ElasticKairosController] = None,
    **kwargs,
) -> ElasticSimulationReport:
    """Convenience wrapper mirroring :func:`~repro.sim.simulation.simulate_serving`."""
    sim = ElasticServingSimulation(cluster, policy, controller=controller, **kwargs)
    return sim.run(queries)
