"""Elastic serving simulation: provisioning events, draining, and online re-planning.

:class:`ElasticServingSimulation` generalizes :class:`~repro.sim.simulation.ServingSimulation`
to clusters whose membership changes mid-run.  Everything — arrivals, completions, and
the new provisioning events — flows through one :class:`~repro.sim.engine.EventQueue`
under the existing ordering contract (completions before arrivals at equal
timestamps), so elastic runs are exactly as deterministic as static ones.

Lifecycle of a scale action:

``SCALE_UP``
    An :class:`~repro.core.controller.ElasticKairosController` decision (or an explicit
    scripted event) requests ``count`` instances of a type.  Billing starts immediately
    (clouds charge for boot time) and an ``INSTANCE_READY`` event fires after
    ``startup_delay_ms``; only then does the instance join the schedulable set.

``SCALE_DOWN``
    The least-loaded instances of the type stop accepting work (*draining*).  An idle
    instance is decommissioned on the spot; a busy one finishes its local queue and is
    removed at its final completion.  Billing stops at decommission time.

Scheduling happens on an index-stable :class:`~repro.sim.cluster.ClusterView` of the
currently accepting servers, rebuilt (and the policy re-bound) whenever membership
changes, so existing policies work unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cloud.billing import InstanceUsageLedger
from repro.core.controller import ElasticKairosController, ReplanDecision
from repro.sim.cluster import Cluster, ClusterView
from repro.sim.engine import EventQueue, SimulationClock
from repro.sim.events import Event, EventKind, ScaleRequest
from repro.sim.metrics import QueryRecord, ServingMetrics
from repro.sim.pending import PendingQueue
from repro.sim.server import ServerInstance, ServiceNoiseModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative
from repro.workload.query import Query


def _probe_batches(max_batch: int) -> List[int]:
    """Deterministic geometric batch ladder probing a type's QoS-feasible range."""
    ladder = []
    b = 1
    while b < max_batch:
        ladder.append(b)
        b *= 2
    ladder.append(max_batch)
    return ladder


def drain_cost_efficiency(
    profiles, model, type_name: str, *, probe_batches: Optional[Sequence[int]] = None
) -> float:
    """$/hr freed per unit of QoS-feasible serving capacity lost by draining one instance.

    Higher scores drain first: an expensive type contributing little within-QoS
    throughput frees the most budget per qps given up.  A type that cannot serve any
    probed batch within the model's QoS scores ``inf`` — draining it costs no serving
    capacity at all.  The probe mix is a fixed geometric ladder so the score depends
    only on the profiles, keeping elastic runs deterministic.
    """
    batches = (
        list(probe_batches) if probe_batches is not None else _probe_batches(model.max_batch_size)
    )
    qps = profiles.standalone_qps(model, type_name, batches)
    price = profiles.catalog[type_name].price_per_hour
    if qps <= 0.0:
        return float("inf")
    return price / qps


def scale_down_priority(profiles, model, type_names: Sequence[str]) -> List[str]:
    """Order instance types for draining, most cost-efficient-to-shed first.

    Ties (equal $/hr-per-qps scores) keep catalog order for determinism.
    """
    ranked = sorted(
        type_names,
        key=lambda name: (-drain_cost_efficiency(profiles, model, name),
                          profiles.catalog.index_of(name)),
    )
    return ranked


def select_drain_victims(
    cluster: Cluster, requests: Mapping[str, int], now_ms: float
) -> List[ServerInstance]:
    """Synchronously drain a multi-type shrink in cost-aware order (ROADMAP item).

    Types are processed by :func:`scale_down_priority` (most $/hr freed per lost qps
    first); within a type the cluster's least-loaded-first rule picks the instances.
    The returned list is ordered as drained; all victims are put into draining.

    This is the selection policy in callable form, for scripted scenarios and direct
    cluster surgery.  The event-driven simulators apply the *same* ordering by
    emitting their replan ``SCALE_DOWN`` events in :func:`scale_down_priority` order
    (cancellation of still-booting instances has to happen inside the event handler,
    so they cannot drain synchronously through this helper).
    """
    victims: List[ServerInstance] = []
    for type_name in scale_down_priority(cluster.profiles, cluster.model, list(requests)):
        count = int(requests[type_name])
        if count > 0:
            victims.extend(cluster.drain_servers(type_name, count, now_ms))
    return victims


@dataclass
class ScaleLogEntry:
    """One applied provisioning action (for reports and tests)."""

    time_ms: float
    kind: str  # "scale_up" | "scale_down" | "instance_ready" | "decommission"
    type_name: str
    count: int
    reason: str = ""


@dataclass
class ElasticSimulationReport:
    """Everything an elastic serving run produced."""

    metrics: ServingMetrics
    cluster: Cluster
    ledger: InstanceUsageLedger
    policy_name: str
    scheduling_rounds: int
    dispatched_queries: int
    total_queries: int
    simulated_duration_ms: float
    #: Absolute sim time the run ended at (>= any ledger interval end).  The makespan
    #: in ``simulated_duration_ms`` is a *length* that can start after t=0 (warm-up),
    #: so billing integrals must use this absolute horizon instead.
    billing_horizon_ms: float = 0.0
    replans: List[ReplanDecision] = field(default_factory=list)
    scale_log: List[ScaleLogEntry] = field(default_factory=list)
    peak_instances: int = 0

    @property
    def completed_all(self) -> bool:
        return self.dispatched_queries == self.total_queries

    def total_cost(self) -> float:
        """Dollar spend over the whole run (ledger integral to the run's end)."""
        return self.ledger.total_cost(self.billing_horizon_ms)

    def summary(self) -> Dict[str, float]:
        data = dict(self.metrics.summary())
        data["scheduling_rounds"] = float(self.scheduling_rounds)
        data["simulated_duration_ms"] = self.simulated_duration_ms
        data["num_replans"] = float(len(self.replans))
        data["total_cost"] = self.total_cost()
        data["peak_instances"] = float(self.peak_instances)
        return data


class ElasticServingSimulation:
    """Serve a query stream on a cluster that can grow and shrink mid-run.

    Parameters
    ----------
    cluster:
        The initial cluster (typically built from the controller's initial plan).
    policy:
        A query-distribution policy (:class:`~repro.schedulers.base.SchedulingPolicy`
        protocol).  It is re-bound on every membership change; policies that learn
        online (the Kairos estimator) keep their learned state across re-binds.
    controller:
        Optional :class:`~repro.core.controller.ElasticKairosController`.  Without one
        the simulation is *static through the elastic code path*: same event loop, no
        provisioning — the honest baseline for re-planning comparisons.
    startup_delay_ms:
        Provisioning delay between a scale-up request and the instance becoming
        schedulable (billing covers the delay).
    scripted_events:
        Optional pre-scheduled provisioning events (``SCALE_UP`` / ``SCALE_DOWN`` with a
        :class:`~repro.sim.events.ScaleRequest` payload), e.g. for tests or scenarios
        with known maintenance windows.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy,
        *,
        controller: Optional[ElasticKairosController] = None,
        qos_ms: Optional[float] = None,
        qos_percentile: float = 99.0,
        startup_delay_ms: float = 2_000.0,
        noise: Optional[ServiceNoiseModel] = None,
        rng: RngLike = None,
        warmup_queries: int = 0,
        scripted_events: Sequence[Event] = (),
    ):
        check_non_negative(startup_delay_ms, "startup_delay_ms")
        if warmup_queries < 0:
            raise ValueError("warmup_queries must be non-negative")
        self.cluster = cluster
        self.policy = policy
        self.controller = controller
        self.qos_ms = float(qos_ms) if qos_ms is not None else cluster.model.qos_ms
        self.qos_percentile = float(qos_percentile)
        self.startup_delay_ms = float(startup_delay_ms)
        self.noise = noise
        self.rng = ensure_rng(rng)
        self.warmup_queries = int(warmup_queries)
        self.scripted_events = tuple(scripted_events)
        for event in self.scripted_events:
            self._validate_scripted(event)
        self._ran = False

    def _validate_scripted(self, event: Event) -> None:
        """Reject unsupported scripted events (subclasses widen the accepted kinds)."""
        if event.kind not in (EventKind.SCALE_UP, EventKind.SCALE_DOWN):
            raise ValueError("scripted events must be SCALE_UP or SCALE_DOWN")
        if not isinstance(event.payload, ScaleRequest):
            raise ValueError("scripted scale events must carry a ScaleRequest payload")

    def run(self, queries: Sequence[Query]) -> ElasticSimulationReport:
        """Serve ``queries`` once.  Unlike :class:`~repro.sim.simulation.ServingSimulation`
        this driver is one-shot: a run permanently mutates cluster membership and the
        controller's observation history, so repeat runs must build fresh objects."""
        if self._ran:
            raise RuntimeError(
                "ElasticServingSimulation is one-shot: cluster membership and "
                "controller state are consumed by run(); build a fresh simulation "
                "(and controller) for another run"
            )
        self._ran = True
        if not queries:
            raise ValueError("cannot simulate an empty query stream")
        ordered = sorted(queries, key=lambda q: (q.arrival_time_ms, q.query_id))
        n = len(ordered)
        self.cluster.reset()
        metrics = ServingMetrics(self.qos_ms, self.qos_percentile)
        scale_log: List[ScaleLogEntry] = []
        replans: List[ReplanDecision] = []

        clock = SimulationClock(0.0)
        events = EventQueue()
        for q in ordered:
            events.push(Event(q.arrival_time_ms, EventKind.QUERY_ARRIVAL, q))
        events.push_all(self.scripted_events)
        ledger = InstanceUsageLedger(self.cluster.config.catalog)
        self._open_initial_billing(ledger, events)

        pending = PendingQueue()
        warmup_ids = {q.query_id for q in ordered[: self.warmup_queries]}
        # Scale-ups in flight: reserved ids per type that have not fired INSTANCE_READY
        # yet.  A scale-down cancels these (newest first) before draining live servers,
        # so a replan reversing a recent scale-up cannot strand booting instances.
        self._booting: Dict[str, List[int]] = {}
        self._cancelled: set = set()
        dispatched = 0
        rounds = 0
        peak = len(self.cluster)
        view = self.cluster.active_view()
        self.policy.bind(view, self.qos_ms)
        # generous guard against a policy that never makes progress
        max_steps = 20 * n + 1000
        steps = 0

        while events:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"simulation exceeded {max_steps} steps; the scheduling policy "
                    f"{type(self.policy).__name__} appears to be making no progress"
                )
            now = clock.advance_to(events.peek_time())
            membership_changed = False
            saw_arrival = False

            # Drain the whole timestamp batch; handlers may push follow-up events at
            # `now` (a replan's scale requests), which the inner loop picks up before
            # the scheduling round so new decisions act in the same instant.
            batch = events.pop_batch(now)
            while batch:
                for event in batch:
                    kind_changed, kind_arrival = self._handle(
                        event, now, metrics, ledger, scale_log, warmup_ids, events
                    )
                    membership_changed = membership_changed or kind_changed
                    saw_arrival = saw_arrival or kind_arrival
                    if kind_arrival:
                        pending.append(event.payload)
                batch = events.pop_batch(now)

                # The controller reacts right after the arrivals of this instant are
                # observed — the one-shot re-plan (Fig. 12) happens inside the event
                # loop, not between runs.
                if saw_arrival and self.controller is not None:
                    decision = self.controller.maybe_replan(now)
                    if decision is not None:
                        replans.append(decision)
                        self._emit_scale_events(decision, now, events)
                    saw_arrival = False

            if membership_changed:
                view = self.cluster.active_view()
                # A fully drained fleet leaves nothing to bind or schedule; queries
                # wait centrally until an INSTANCE_READY brings capacity back (the
                # next membership change re-binds).
                if len(view):
                    self.policy.bind(view, self.qos_ms)
                peak = max(peak, len(self.cluster))

            # scheduling round over the accepting servers
            if pending and len(view):
                assignments = self.policy.schedule(now, pending, view)
                rounds += 1
                if assignments:
                    dispatched += self._commit(assignments, pending, view, now, events)

            # Nothing left to fire and the policy declines the remainder: end the run.
            if not events and pending:
                break

        duration = metrics.makespan_ms() if len(metrics) else clock.now_ms
        # Completions flow through the event queue, so the clock ends at or after the
        # last completion; that is the absolute billing horizon.
        horizon = clock.now_ms
        ledger.close_all(horizon)
        return ElasticSimulationReport(
            metrics=metrics,
            cluster=self.cluster,
            ledger=ledger,
            policy_name=getattr(self.policy, "name", type(self.policy).__name__),
            scheduling_rounds=rounds,
            dispatched_queries=dispatched,
            total_queries=n,
            simulated_duration_ms=duration,
            billing_horizon_ms=horizon,
            replans=replans,
            scale_log=scale_log,
            peak_instances=peak,
        )

    # -- subclass hooks -----------------------------------------------------------------
    # The preemption simulator (repro.sim.preemption) extends the lifecycle through
    # these hooks instead of forking the event loop; all defaults reproduce the
    # pre-spot behaviour exactly (locked down by the seed-stability suite).
    def _open_initial_billing(self, ledger: InstanceUsageLedger, events: EventQueue) -> None:
        """Open billing for the initial fleet (``events`` lets subclasses arm timers)."""
        for server in self.cluster:
            ledger.start(server.server_id, server.instance_type, 0.0)

    def _start_billing(
        self,
        ledger: InstanceUsageLedger,
        server_id: int,
        itype,
        now: float,
        request: ScaleRequest,
    ) -> None:
        """Open billing for one scale-up instance (subclasses price by market)."""
        ledger.start(server_id, itype, now)

    def _after_instance_ready(
        self, server_id: int, type_name: str, now: float, events: EventQueue
    ) -> None:
        """Called once a provisioned instance joins the schedulable set."""

    def _after_dispatch(self, record: QueryRecord) -> None:
        """Called for every committed dispatch, before its completion is scheduled."""

    # -- event handling -----------------------------------------------------------------
    def _handle(
        self,
        event: Event,
        now: float,
        metrics: ServingMetrics,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        warmup_ids,
        events: EventQueue,
    ) -> Tuple[bool, bool]:
        """Apply one event; returns ``(membership_changed, was_arrival)``."""
        if event.kind == EventKind.SERVICE_COMPLETION:
            record: QueryRecord = event.payload
            server = self.cluster.server_by_id(record.server_id)
            server.complete_one()
            if record.query.query_id not in warmup_ids:
                metrics.record(record)
            self.policy.observe_completion(record)
            if server.drained:
                self.cluster.remove_server(server.server_id)
                ledger.stop(server.server_id, now)
                scale_log.append(
                    ScaleLogEntry(now, "decommission", server.type_name, 1)
                )
                return True, False
            return False, False

        if event.kind == EventKind.QUERY_ARRIVAL:
            if self.controller is not None:
                self.controller.observe_arrival(event.payload, now)
            return False, True

        if event.kind == EventKind.SCALE_UP:
            request: ScaleRequest = event.payload
            itype = self.cluster.config.catalog[request.type_name]
            for _ in range(request.count):
                # billing starts at the request; the instance is schedulable only
                # after the startup delay
                server_id = self.cluster.reserve_server_id()
                self._start_billing(ledger, server_id, itype, now, request)
                self._booting.setdefault(request.type_name, []).append(server_id)
                events.push(
                    Event(
                        now + self.startup_delay_ms,
                        EventKind.INSTANCE_READY,
                        (server_id, request.type_name),
                    )
                )
            scale_log.append(
                ScaleLogEntry(now, "scale_up", request.type_name, request.count, request.reason)
            )
            return False, False

        if event.kind == EventKind.SCALE_DOWN:
            request = event.payload
            self.cluster.config.catalog[request.type_name]  # raises on unknown type
            remaining = request.count
            # cancel still-booting instances first (newest first): they have not
            # served anything, so reversing them is free apart from the boot billing
            booting = self._booting.get(request.type_name, [])
            while remaining > 0 and booting:
                server_id = booting.pop()
                self._cancelled.add(server_id)
                ledger.stop(server_id, now)
                scale_log.append(
                    ScaleLogEntry(now, "cancel_startup", request.type_name, 1, request.reason)
                )
                remaining -= 1
            victims = (
                self.cluster.drain_servers(request.type_name, remaining, now)
                if remaining > 0
                else []
            )
            changed = False
            for server in victims:
                if server.drained:  # already idle: decommission on the spot
                    self.cluster.remove_server(server.server_id)
                    ledger.stop(server.server_id, now)
                    scale_log.append(
                        ScaleLogEntry(now, "decommission", server.type_name, 1)
                    )
                changed = True
            scale_log.append(
                ScaleLogEntry(
                    now, "scale_down", request.type_name, len(victims), request.reason
                )
            )
            return changed, False

        if event.kind == EventKind.INSTANCE_READY:
            server_id, type_name = event.payload
            if server_id in self._cancelled:
                self._cancelled.discard(server_id)
                return False, False
            booting = self._booting.get(type_name, [])
            if server_id in booting:
                booting.remove(server_id)
            self.cluster.add_server(type_name, now_ms=now, server_id=server_id)
            scale_log.append(ScaleLogEntry(now, "instance_ready", type_name, 1))
            self._after_instance_ready(server_id, type_name, now, events)
            return True, False

        return False, False  # CONTROL and future kinds: no-op

    def _emit_scale_events(
        self, decision: ReplanDecision, now: float, events: EventQueue
    ) -> None:
        for type_name, delta in decision.scale_deltas.items():
            if delta > 0:
                events.push(
                    Event(
                        now,
                        EventKind.SCALE_UP,
                        ScaleRequest(type_name, delta, reason="replan"),
                    )
                )
        # When several types shrink at once, drain the most cost-efficient victims
        # first ($/hr freed per unit of lost QoS-feasible capacity): same-timestamp
        # SCALE_DOWN events process in insertion order, so the priority here decides
        # which types give up booting instances and live servers first.
        shrinking = [name for name, delta in decision.scale_deltas.items() if delta < 0]
        for type_name in scale_down_priority(
            self.cluster.profiles, self.cluster.model, shrinking
        ):
            events.push(
                Event(
                    now,
                    EventKind.SCALE_DOWN,
                    ScaleRequest(
                        type_name, -decision.scale_deltas[type_name], reason="replan"
                    ),
                )
            )

    def _commit(
        self,
        assignments: Sequence[Tuple[Query, int]],
        pending: PendingQueue,
        view: ClusterView,
        now: float,
        events: EventQueue,
    ) -> int:
        count = 0
        for query, server_idx in assignments:
            if query.query_id not in pending:
                raise ValueError(
                    f"policy assigned query {query.query_id}, which is not pending"
                )
            if not 0 <= server_idx < len(view):
                raise ValueError(f"policy assigned an unknown server index {server_idx}")
            pending.remove(query.query_id)
            server = view[server_idx]
            start, completion, service = server.dispatch(
                query, now, noise=self.noise, rng=self.rng
            )
            record = QueryRecord(
                query=query,
                server_id=server.server_id,
                server_type=server.type_name,
                start_ms=start,
                completion_ms=completion,
                service_ms=service,
            )
            self._after_dispatch(record)
            events.push(Event(completion, EventKind.SERVICE_COMPLETION, record))
            count += 1
        return count


def simulate_elastic_serving(
    cluster: Cluster,
    policy,
    queries: Sequence[Query],
    *,
    controller: Optional[ElasticKairosController] = None,
    **kwargs,
) -> ElasticSimulationReport:
    """Convenience wrapper mirroring :func:`~repro.sim.simulation.simulate_serving`."""
    sim = ElasticServingSimulation(cluster, policy, controller=controller, **kwargs)
    return sim.run(queries)
