"""End-to-end serving simulation.

``simulate_serving`` drives a :class:`~repro.sim.cluster.Cluster` through a query
stream under a pluggable query-distribution policy:

1. queries arrive at the central controller and join the pending queue;
2. whenever an event fires (arrival or a server finishing a query) the policy is asked
   to map pending queries to servers;
3. committed queries are dispatched to their server's local FIFO queue, their true
   service latency is drawn from the latency profile (plus optional noise), and a
   completion event is scheduled;
4. per-query records feed :class:`~repro.sim.metrics.ServingMetrics`.

A policy is any object implementing the small protocol documented in
:class:`repro.schedulers.base.SchedulingPolicy` (``bind``, ``schedule``,
``observe_completion``); the simulator itself only relies on duck typing so the Kairos
controller and all baselines plug in identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry
from repro.sim.cluster import Cluster
from repro.sim.engine import TIME_EPSILON_MS, EventQueue, SimulationClock
from repro.sim.events import Event, EventKind
from repro.sim.faults import (
    AdmissionController,
    DeadLetterEntry,
    RetryPolicy,
    ShedEntry,
    select_shed_victims,
)
from repro.sim.metrics import QueryRecord, ServingMetrics
from repro.sim.pending import PendingQueue
from repro.sim.server import ServiceNoiseModel
from repro.utils.rng import RngLike, ensure_rng
from repro.workload.query import Query


@dataclass
class SimulationReport:
    """Everything a serving run produced."""

    metrics: ServingMetrics
    cluster: Cluster
    policy_name: str
    scheduling_rounds: int
    dispatched_queries: int
    total_queries: int
    simulated_duration_ms: float
    early_stopped: bool = False
    shed_queries: List[ShedEntry] = field(default_factory=list)
    dead_letters: List[DeadLetterEntry] = field(default_factory=list)
    retries: int = 0
    unserved_queries: int = 0

    @property
    def completed_all(self) -> bool:
        return self.dispatched_queries == self.total_queries and not self.early_stopped

    def utilization_by_type(self) -> Dict[str, float]:
        return self.cluster.utilization_by_type(self.simulated_duration_ms)

    def summary(self) -> Dict[str, float]:
        data = dict(self.metrics.summary())
        data["scheduling_rounds"] = float(self.scheduling_rounds)
        data["simulated_duration_ms"] = self.simulated_duration_ms
        data["early_stopped"] = float(self.early_stopped)
        return data


class ServingSimulation:
    """Reusable serving-simulation driver (see module docstring)."""

    def __init__(
        self,
        cluster: Cluster,
        policy,
        *,
        qos_ms: Optional[float] = None,
        qos_percentile: float = 99.0,
        noise: Optional[ServiceNoiseModel] = None,
        rng: RngLike = None,
        max_violations: Optional[int] = None,
        warmup_queries: int = 0,
        retry: Optional[RetryPolicy] = None,
        admission: Optional[AdmissionController] = None,
        sharded_events: bool = False,
    ):
        self.cluster = cluster
        self.policy = policy
        #: drive the run off a ShardedEventQueue (per-kind shards); byte-identical
        #: to the single-heap path by the sequence-number merge argument in
        #: repro.sim.sharding
        self.sharded_events = bool(sharded_events)
        self.qos_ms = float(qos_ms) if qos_ms is not None else cluster.model.qos_ms
        self.qos_percentile = float(qos_percentile)
        self.noise = noise
        self.rng = ensure_rng(rng)
        self.max_violations = max_violations
        # Graceful-degradation knobs. ``retry.response_timeout_ms`` arms a per-attempt
        # response deadline: an attempt that would finish past it is abandoned at the
        # deadline and re-queued with exponential backoff until the budget is spent,
        # then dead-lettered. ``admission`` sheds lowest-value pending queries under
        # overload and caps each scheduling round at the adaptive concurrency limit.
        # The static loop has a fixed fleet, so crash injection lives only in the
        # elastic loops (see repro.sim.faults.FaultInjector).
        self.retry = retry
        self.admission = admission
        self._inflight_ids: set = set()
        self._timed_out_ids: set = set()
        if warmup_queries < 0:
            raise ValueError("warmup_queries must be non-negative")
        # Queries with an id below this threshold are served normally but excluded from
        # the QoS/throughput metrics — they cover the online latency learner's cold start
        # (the paper measures steady-state allowable throughput on long runs).
        self.warmup_queries = int(warmup_queries)

    def run(self, queries: Sequence[Query]) -> SimulationReport:
        """Serve ``queries`` to completion (or until the early-stop violation budget).

        An empty stream is a valid no-op and returns a report with empty metrics.
        """
        ordered = sorted(queries, key=lambda q: (q.arrival_time_ms, q.query_id))
        self.cluster.reset()
        if self.admission is not None:
            self.admission.reset()
        metrics = ServingMetrics(self.qos_ms, self.qos_percentile)
        self.policy.bind(self.cluster, self.qos_ms)

        clock = SimulationClock(0.0)
        # carries SERVICE_COMPLETION plus, under a retry policy, RESPONSE_TIMEOUT
        # deadlines and backoff re-queues (QUERY_ARRIVAL)
        if self.sharded_events:
            from repro.sim.sharding import ShardedEventQueue, shard_key_by_kind

            events = ShardedEventQueue(shard_key_by_kind)
        else:
            events = EventQueue()
        pending = PendingQueue()
        arrival_idx = 0
        n = len(ordered)
        dispatched = 0
        rounds = 0
        violations = 0
        early_stopped = False
        # every query ends exactly one way: served, shed, or dead-lettered — the run
        # ends when no query remains outstanding (or when the policy gives up)
        outstanding = n
        shed: List[ShedEntry] = []
        dead_letters: List[DeadLetterEntry] = []
        retries = 0
        voided = 0
        attempt_failures: Dict[int, int] = {}
        # live response deadlines: id(record) -> armed; a deadline whose attempt
        # already completed is stale and must no-op
        self._inflight_ids = set()
        self._timed_out_ids = set()
        # Queries in the warm-up window (earliest arrivals) are excluded from metrics.
        warmup_ids = {q.query_id for q in ordered[: self.warmup_queries]}
        # generous guard against a policy that never makes progress (each retry
        # attempt may add a bounded number of extra steps)
        attempts_cap = self.retry.max_attempts if self.retry is not None else 1
        max_steps = 20 * n * attempts_cap + 1000
        steps = 0

        # Hot-loop locals: the arrival-time column is read every iteration, and
        # repeated attribute lookups on `ordered` queries add up over long runs.
        arrival_times = [q.arrival_time_ms for q in ordered]

        while outstanding > 0 and not early_stopped:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"simulation exceeded {max_steps} steps; the scheduling policy "
                    f"{type(self.policy).__name__} appears to be making no progress"
                )

            next_arrival = arrival_times[arrival_idx] if arrival_idx < n else None
            next_event = events.peek_time()
            if next_arrival is None:
                if next_event is None:
                    # Pending queries but nothing scheduled and nothing in flight: the
                    # policy must act now or it never will.
                    if not pending:
                        break
                    now = clock.now_ms
                else:
                    now = clock.advance_to(next_event)
            elif next_event is None or next_arrival <= next_event:
                now = clock.advance_to(next_arrival)
            else:
                now = clock.advance_to(next_event)

            # 1. process events at `now` (frees servers before new work is placed);
            #    the whole equal-timestamp batch drains before the scheduling round
            for event in events.pop_batch(now):
                if event.kind == EventKind.QUERY_ARRIVAL:
                    # a retry re-queue surfacing after its backoff
                    pending.append(event.payload)
                    continue
                if event.kind == EventKind.RESPONSE_TIMEOUT:
                    record = event.payload
                    if id(record) not in self._inflight_ids:
                        continue  # the attempt completed before the deadline
                    self._inflight_ids.discard(id(record))
                    self._timed_out_ids.add(id(record))
                    voided += 1
                    failures = attempt_failures.get(record.query.query_id, 0) + 1
                    attempt_failures[record.query.query_id] = failures
                    if self.retry is not None and failures < self.retry.max_attempts:
                        retries += 1
                        events.push(
                            Event(
                                now + self.retry.backoff_ms(failures),
                                EventKind.QUERY_ARRIVAL,
                                record.query,
                            )
                        )
                    else:
                        dead_letters.append(
                            DeadLetterEntry(record.query, now, "timeout", failures)
                        )
                        outstanding -= 1
                    continue
                record: QueryRecord = event.payload
                timed_out = id(record) in self._timed_out_ids
                if timed_out:
                    self._timed_out_ids.discard(id(record))
                else:
                    self._inflight_ids.discard(id(record))
                    outstanding -= 1
                self.cluster[record.server_id].complete_one()
                if timed_out:
                    # the client already abandoned this attempt: the server's slot is
                    # freed but nothing is recorded or observed
                    continue
                if record.query.query_id not in warmup_ids:
                    if record.latency_ms > self.qos_ms + 1e-9:
                        violations += 1
                    metrics.record(record)
                    if self.admission is not None:
                        self.admission.observe_latency(record.latency_ms)
                self.policy.observe_completion(record)
                if self.max_violations is not None and violations > self.max_violations:
                    early_stopped = True
            if early_stopped:
                break

            # 2. admit arrivals at `now`
            limit = now + TIME_EPSILON_MS
            while arrival_idx < n and arrival_times[arrival_idx] <= limit:
                pending.append(ordered[arrival_idx])
                arrival_idx += 1

            # 3. ask the policy for assignments (through the admission valve)
            made_progress = False
            if pending:
                admitted = pending
                if self.admission is not None:
                    overflow = self.admission.to_shed(len(pending))
                    if overflow > 0:
                        for query in select_shed_victims(pending.snapshot(), overflow):
                            pending.remove(query.query_id)
                            shed.append(ShedEntry(query, now))
                            outstanding -= 1
                        self.admission.record_shed(overflow)
                    cap = self.admission.concurrency_limit
                    if len(pending) > cap:
                        admitted = list(pending.snapshot()[:cap])
                if admitted:
                    # the queue itself is handed over (it is Sequence-like): policies
                    # with an incremental fast path read its memoized snapshot arrays
                    assignments = self.policy.schedule(now, admitted, self.cluster)
                    rounds += 1
                    if assignments:
                        dispatched += self._commit(assignments, pending, now, events)
                        made_progress = True

            # 4. nothing in flight, nothing arriving, and the policy declines to place
            #    the remaining queries: end the run (the remainder counts as unserved).
            if (
                pending
                and not made_progress
                and arrival_idx >= n
                and len(events) == 0
            ):
                break

        duration = metrics.makespan_ms() if len(metrics) else clock.now_ms
        return SimulationReport(
            metrics=metrics,
            cluster=self.cluster,
            policy_name=getattr(self.policy, "name", type(self.policy).__name__),
            scheduling_rounds=rounds,
            dispatched_queries=dispatched - voided,
            total_queries=n,
            simulated_duration_ms=duration,
            early_stopped=early_stopped,
            shed_queries=shed,
            dead_letters=dead_letters,
            retries=retries,
            unserved_queries=outstanding,
        )

    # -- internals ------------------------------------------------------------------------
    def _commit(
        self,
        assignments: Sequence[Tuple[Query, int]],
        pending: PendingQueue,
        now: float,
        events: EventQueue,
    ) -> int:
        count = 0
        cluster = self.cluster
        cluster_size = len(cluster)
        noise = self.noise
        rng = self.rng
        push = events.push
        completion_kind = EventKind.SERVICE_COMPLETION
        timeout = self.retry.response_timeout_ms if self.retry is not None else None
        for query, server_idx in assignments:
            if query.query_id not in pending:
                raise ValueError(
                    f"policy assigned query {query.query_id}, which is not pending"
                )
            if not 0 <= server_idx < cluster_size:
                raise ValueError(f"policy assigned an unknown server index {server_idx}")
            pending.remove(query.query_id)
            server = cluster[server_idx]
            start, completion, service = server.dispatch(query, now, noise=noise, rng=rng)
            record = QueryRecord(
                query=query,
                server_id=server.server_id,
                server_type=server.type_name,
                start_ms=start,
                completion_ms=completion,
                service_ms=service,
            )
            if timeout is not None and completion - now > timeout:
                # the deadline will elapse strictly before the completion: arm the
                # abandon timer (never armed when the attempt will make it in time)
                self._inflight_ids.add(id(record))
                push(Event(now + timeout, EventKind.RESPONSE_TIMEOUT, record))
            push(Event(completion, completion_kind, record))
            count += 1
        return count


def simulate_serving(
    config: HeterogeneousConfig,
    model: MLModel,
    profiles: ProfileRegistry,
    policy,
    queries: Sequence[Query],
    *,
    qos_ms: Optional[float] = None,
    qos_percentile: float = 99.0,
    dispatch_overhead_ms: float = 0.0,
    noise: Optional[ServiceNoiseModel] = None,
    rng: RngLike = None,
    max_violations: Optional[int] = None,
    warmup_queries: int = 0,
) -> SimulationReport:
    """Convenience wrapper: build the cluster and run one serving simulation."""
    cluster = Cluster(config, model, profiles, dispatch_overhead_ms=dispatch_overhead_ms)
    sim = ServingSimulation(
        cluster,
        policy,
        qos_ms=qos_ms,
        qos_percentile=qos_percentile,
        noise=noise,
        rng=rng,
        max_violations=max_violations,
        warmup_queries=warmup_queries,
    )
    return sim.run(queries)


def gaussian_service_noise(relative_std: float) -> ServiceNoiseModel:
    """A multiplicative Gaussian service-time noise model (Fig. 16b uses 5%)."""
    if relative_std < 0:
        raise ValueError("relative_std must be non-negative")

    def noise(latency_ms: float, rng: np.random.Generator) -> float:
        return latency_ms * float(1.0 + relative_std * rng.standard_normal())

    return noise
