"""Discrete-event simulator for heterogeneous inference serving.

This package replaces the paper's AWS deployment: a cluster of simulated inference
servers (one model copy each, one query at a time), a central queue, a pluggable
query-distribution policy, latency/QoS metrics, and the allowable-throughput capacity
search that defines the paper's headline metric.
"""

from repro.sim.cluster import Cluster, ClusterView
from repro.sim.capacity import AllowableThroughputResult, measure_allowable_throughput
from repro.sim.elasticity import (
    ElasticServingSimulation,
    ElasticSimulationReport,
    ScaleLogEntry,
    simulate_elastic_serving,
)
from repro.sim.engine import EventQueue, SimulationClock
from repro.sim.events import Event, EventKind, PreemptionBurst, ScaleRequest
from repro.sim.faults import (
    AdmissionController,
    CrashStorm,
    DeadLetterEntry,
    FaultInjector,
    FaultProfile,
    RetryPolicy,
    ShedEntry,
)
from repro.sim.metrics import QueryRecord, ServingMetrics
from repro.sim.preemption import (
    PreemptibleElasticSimulation,
    initial_spot_server_ids,
    simulate_preemptible_serving,
)
from repro.sim.server import ServerInstance
from repro.sim.simulation import ServingSimulation, SimulationReport, simulate_serving

__all__ = [
    "Event",
    "EventKind",
    "PreemptionBurst",
    "ScaleRequest",
    "EventQueue",
    "SimulationClock",
    "ServerInstance",
    "Cluster",
    "ClusterView",
    "QueryRecord",
    "ServingMetrics",
    "ServingSimulation",
    "SimulationReport",
    "simulate_serving",
    "ElasticServingSimulation",
    "ElasticSimulationReport",
    "ScaleLogEntry",
    "simulate_elastic_serving",
    "PreemptibleElasticSimulation",
    "initial_spot_server_ids",
    "simulate_preemptible_serving",
    "AllowableThroughputResult",
    "measure_allowable_throughput",
    "FaultInjector",
    "FaultProfile",
    "CrashStorm",
    "RetryPolicy",
    "AdmissionController",
    "DeadLetterEntry",
    "ShedEntry",
]
