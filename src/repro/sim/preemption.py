"""Preemption semantics: spot instances, reclaim warnings, and re-queued work.

:class:`PreemptibleElasticSimulation` extends
:class:`~repro.sim.elasticity.ElasticServingSimulation` with the lifecycle of
revocable (spot-market) capacity:

``PREEMPTION_WARNING``
    The provider's reclaim notice for one spot instance (drawn from the market's
    Poisson hazard when the instance becomes active, or scripted as a correlated
    :class:`~repro.sim.events.PreemptionBurst`).  The warned instance enters
    *deadline-bounded draining*: it stops accepting new work and has the market's
    ``warning_ms`` grace window to finish its local queue.  Reactive re-provisioning
    fires here — while the victim drains, a replacement instance is already booting —
    either through the elastic controller (``observe_preemption`` treats the loss as
    an uncontrolled scale-down and re-plans) or through the simulator's own
    like-for-like replacement when no controller is attached.

``PREEMPTED``
    The kill at the end of the warning window.  Whatever the victim did not finish is
    re-queued through the central :class:`~repro.sim.pending.PendingQueue` (re-injected
    as same-instant arrival events, so the normal scheduling round redistributes the
    work) and billing stops at the kill — clouds do not charge past the reclaim.
    An instance that drains before the deadline is decommissioned by the ordinary
    draining path and the kill becomes a no-op.

With no market (or a zero-hazard one) this simulator never draws from its market
generator and schedules no preemption events, so it is byte-identical to
:class:`~repro.sim.elasticity.ElasticServingSimulation` — the compatibility contract
the golden suite alongside ``test_multi_model.py`` locks down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cloud.billing import InstanceUsageLedger
from repro.cloud.config import HeterogeneousConfig
from repro.cloud.spot import MARKET_ON_DEMAND, MARKET_SPOT, SpotMarket
from repro.sim.cluster import Cluster
from repro.sim.elasticity import (
    ElasticServingSimulation,
    ElasticSimulationReport,
    ScaleLogEntry,
    scale_down_priority,
)
from repro.sim.engine import EventQueue
from repro.sim.events import Event, EventKind, PreemptionBurst, ScaleRequest
from repro.sim.metrics import ServingMetrics
from repro.sim.server import ServerInstance
from repro.utils.rng import RngLike, ensure_rng
from repro.workload.query import Query


def initial_spot_server_ids(
    cluster: Cluster, spot_config: HeterogeneousConfig
) -> List[int]:
    """The server ids of a mixed cluster's initial spot portion.

    A mixed-market plan is instantiated as one :class:`~repro.sim.cluster.Cluster`
    over the *combined* (on-demand + spot) configuration; server ids are assigned in
    catalog order with same-type servers contiguous, so within each type block the
    last ``spot_config[type]`` ids are deterministically designated spot.
    """
    ids: List[int] = []
    for type_name, spot_count in spot_config:
        if spot_count <= 0:
            continue
        of_type = [s.server_id for s in cluster if s.type_name == type_name]
        if spot_count > len(of_type):
            raise ValueError(
                f"spot config wants {spot_count} x {type_name} but the cluster "
                f"only has {len(of_type)}"
            )
        ids.extend(of_type[len(of_type) - spot_count :])
    return ids


class PreemptibleElasticSimulation(ElasticServingSimulation):
    """Serve queries on a mixed on-demand + spot cluster under a preemption process.

    Parameters (beyond :class:`~repro.sim.elasticity.ElasticServingSimulation`)
    ----------
    market:
        The :class:`~repro.cloud.spot.SpotMarket` pricing and preempting the spot
        portion.  ``None`` disables the subsystem entirely (byte-identical to the
        plain elastic simulator).
    spot_server_ids:
        Ids of the initial cluster servers purchased on the spot market (see
        :func:`initial_spot_server_ids`).  They bill at the discounted rate from t=0
        and their preemption timers arm immediately.
    market_rng:
        Dedicated generator for preemption-delay draws, separate from the service
        noise stream so arming the market never perturbs service times.
    auto_reprovision:
        When True (default) and no controller is attached, every preemption warning
        emits a like-for-like replacement ``SCALE_UP`` (same type, same market) while
        work remains, hiding part of the startup delay behind the warning window.
        With a controller that implements ``observe_preemption`` the controller owns
        re-provisioning instead.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy,
        *,
        market: Optional[SpotMarket] = None,
        spot_server_ids: Sequence[int] = (),
        market_rng: RngLike = None,
        auto_reprovision: bool = True,
        **kwargs,
    ):
        self.market = market
        self.auto_reprovision = bool(auto_reprovision)
        self._market_rng = ensure_rng(market_rng)
        self._initial_spot_ids = frozenset(int(i) for i in spot_server_ids)
        if self._initial_spot_ids and market is None:
            raise ValueError("spot_server_ids requires a SpotMarket")
        #: per-server purchase market (on-demand unless bought on the spot market)
        self._market_of_id: Dict[int, str] = {}
        #: ids of currently commissioned (or booting) spot instances
        self._spot_ids: Set[int] = set()
        #: servers already holding a reclaim notice — a warned instance is never
        #: warned twice (one warning, one kill, one log entry per reclaim)
        self._warned: Set[int] = set()
        # The voiding/re-queue machinery (_inflight, _killed, _requeued_ids,
        # _outstanding, _voided_dispatches, _forced_replans) lives in the base class,
        # shared with the unannounced-crash path of the fault injector.
        super().__init__(cluster, policy, **kwargs)
        self._track_inflight = True  # a kill must always find its in-flight work
        if market is not None:
            known = {s.server_id for s in cluster}
            unknown = sorted(self._initial_spot_ids - known)
            if unknown:
                raise ValueError(f"spot_server_ids not in the cluster: {unknown}")
            for server in cluster:
                if server.server_id in self._initial_spot_ids:
                    market[server.type_name]  # raises if the type is not offered

    # -- scripted-event surface ----------------------------------------------------------
    def _validate_scripted(self, event: Event) -> None:
        if event.kind == EventKind.PREEMPTION_WARNING:
            if not isinstance(event.payload, PreemptionBurst):
                raise ValueError(
                    "scripted preemption warnings must carry a PreemptionBurst payload"
                )
            if self.market is None:
                raise ValueError("scripted preemption bursts require a SpotMarket")
            return
        super()._validate_scripted(event)

    # -- lifecycle hooks -----------------------------------------------------------------
    def _open_initial_billing(self, ledger: InstanceUsageLedger, events: EventQueue) -> None:
        for server in self.cluster:
            sid = server.server_id
            if sid in self._initial_spot_ids:
                self._register_spot(sid)
                ledger.start(
                    sid,
                    server.instance_type,
                    0.0,
                    price_multiplier=self.market.price_multiplier(server.type_name),
                    market=MARKET_SPOT,
                    price_schedule=self.market.price_schedule(server.type_name),
                )
                if self._outstanding > 0:
                    self._schedule_preemption(sid, server.type_name, 0.0, events)
            else:
                self._market_of_id[sid] = MARKET_ON_DEMAND
                ledger.start(sid, server.instance_type, 0.0)

    def _start_billing(
        self,
        ledger: InstanceUsageLedger,
        server_id: int,
        itype,
        now: float,
        request: ScaleRequest,
    ) -> None:
        if request.market == MARKET_SPOT:
            if self.market is None:
                raise ValueError(
                    f"spot scale-up for {request.type_name!r} without a SpotMarket"
                )
            self._market_of_id[server_id] = MARKET_SPOT
            ledger.start(
                server_id,
                itype,
                now,
                price_multiplier=self.market.price_multiplier(request.type_name),
                market=MARKET_SPOT,
                price_schedule=self.market.price_schedule(request.type_name),
            )
        else:
            self._market_of_id[server_id] = MARKET_ON_DEMAND
            ledger.start(server_id, itype, now)

    def _after_instance_ready(
        self, server_id: int, type_name: str, now: float, events: EventQueue
    ) -> None:
        super()._after_instance_ready(server_id, type_name, now, events)
        if self._market_of_id.get(server_id) == MARKET_SPOT:
            self._register_spot(server_id)
            # A replacement that becomes ready after the trace is fully served must
            # not re-arm a reclaim timer — the outstanding==0 discard already ended
            # the preemption process, and a fresh timer would drag the billing
            # horizon past the work again.
            if self._outstanding > 0:
                self._schedule_preemption(server_id, type_name, now, events)

    def _register_spot(self, server_id: int) -> None:
        self._market_of_id[server_id] = MARKET_SPOT
        self._spot_ids.add(server_id)

    def _market_label(self, server_id: int) -> str:
        """A crashed spot instance is replaced on the spot market (like-for-like)."""
        return self._market_of_id.get(server_id, MARKET_ON_DEMAND)

    def _idle_timer_kinds(self):
        kinds = super()._idle_timer_kinds()
        if self.market is not None:
            kinds |= {EventKind.PREEMPTION_WARNING, EventKind.PREEMPTED}
        return kinds

    def _schedule_preemption(
        self, server_id: int, type_name: str, now: float, events: EventQueue
    ) -> None:
        delay = self.market.draw_preemption_delay_ms(type_name, now, self._market_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.PREEMPTION_WARNING, (server_id, type_name))
            )

    # -- event handling ------------------------------------------------------------------
    def _handle(
        self,
        event: Event,
        now: float,
        metrics: ServingMetrics,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        warmup_ids,
        events: EventQueue,
    ) -> Tuple[bool, bool]:
        if event.kind == EventKind.SERVICE_COMPLETION:
            # Voided-completion skips, re-queue bookkeeping, and the idle-timer
            # discard at outstanding==0 all live in the base handler now.
            changed, arrival = super()._handle(
                event, now, metrics, ledger, scale_log, warmup_ids, events
            )
            if changed:
                self._spot_ids.discard(event.payload.server_id)
            return changed, arrival

        if event.kind == EventKind.PREEMPTION_WARNING:
            return self._handle_warning(event.payload, now, events, scale_log), False

        if event.kind == EventKind.PREEMPTED:
            return self._handle_kill(event.payload, now, events, ledger, scale_log), False

        changed, arrival = super()._handle(
            event, now, metrics, ledger, scale_log, warmup_ids, events
        )
        if changed and event.kind in (EventKind.SCALE_DOWN, EventKind.INSTANCE_FAILED):
            # drained-on-the-spot or crashed victims may have been decommissioned
            self._spot_ids.intersection_update(
                s.server_id for s in self.cluster
            )
        return changed, arrival

    # -- preemption lifecycle ------------------------------------------------------------
    def _handle_warning(
        self, payload, now: float, events: EventQueue, scale_log: List[ScaleLogEntry]
    ) -> bool:
        if isinstance(payload, PreemptionBurst):
            changed = False
            for server in self._burst_victims(payload, now):
                changed = (
                    self._warn_server(server, now, events, scale_log, payload.reason)
                    or changed
                )
            return changed
        server_id, _type_name = payload
        if server_id not in self._spot_ids or server_id in self._warned:
            return False  # decommissioned, cancelled, or already holding a notice
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return False  # still booting or already removed: nothing to drain
        return self._warn_server(server, now, events, scale_log, "market")

    def _warn_server(
        self,
        server: ServerInstance,
        now: float,
        events: EventQueue,
        scale_log: List[ScaleLogEntry],
        reason: str,
    ) -> bool:
        """Start deadline-bounded draining; returns True when membership changed."""
        self._warned.add(server.server_id)
        was_accepting = server.accepting
        if was_accepting:
            server.start_draining()
        events.push(
            Event(
                now + self.market.warning_ms,
                EventKind.PREEMPTED,
                (server.server_id, server.type_name),
            )
        )
        scale_log.append(
            ScaleLogEntry(now, "preemption_warning", server.type_name, 1, reason)
        )
        # Reactive re-provisioning: only for instances the plan still wanted (an
        # already-draining victim was on its way out anyway) and only while work
        # remains — otherwise the replacement chain would outlive the trace.
        if was_accepting and self._outstanding > 0:
            observe = getattr(self.controller, "observe_preemption", None)
            if observe is not None:
                # Re-provision at the warning instant, not at the next arrival —
                # a reclaim after the last arrival would otherwise never re-plan.
                observe(server.type_name, now)
                decision = self.controller.maybe_replan(now)
                if decision is not None:
                    self._forced_replans.append(decision)
                    self._emit_scale_events(decision, now, events)
            elif self.auto_reprovision:
                events.push(
                    Event(
                        now,
                        EventKind.SCALE_UP,
                        ScaleRequest(
                            server.type_name,
                            1,
                            reason="reprovision",
                            market=MARKET_SPOT,
                        ),
                    )
                )
        return was_accepting

    def _burst_victims(self, burst: PreemptionBurst, now: float) -> List[ServerInstance]:
        """Pick the burst's victims in :func:`select_drain_victims` cost-aware order."""
        spot_servers = [
            s
            for s in self.cluster
            if s.server_id in self._spot_ids
            and s.server_id not in self._warned
            and (burst.type_name is None or s.type_name == burst.type_name)
        ]
        present_types = sorted({s.type_name for s in spot_servers})
        victims: List[ServerInstance] = []
        for type_name in scale_down_priority(
            self.cluster.profiles, self.cluster.model, present_types
        ):
            of_type = [s for s in spot_servers if s.type_name == type_name]
            of_type.sort(key=lambda s: (s.local_queue_depth, s.busy_until_ms, s.server_id))
            victims.extend(of_type)
        return victims[: burst.count]

    def _handle_kill(
        self,
        payload,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return False  # drained to empty before the deadline: already decommissioned
        self.cluster.remove_server(server_id)
        ledger.stop(server_id, now)
        self._spot_ids.discard(server_id)
        scale_log.append(ScaleLogEntry(now, "preempted", server.type_name, 1))
        requeued = self._inflight.pop(server_id, [])
        for record in requeued:
            # void the scheduled completion and hand the query back to the central
            # queue at the kill instant (same-timestamp arrivals are drained by the
            # current event batch, so the next scheduling round redistributes them)
            if id(record) in self._zombie_attempts:
                # a zombie attempt has no completion event to void
                self._zombie_attempts.discard(id(record))
            else:
                self._killed.add(id(record))
            self._voided_dispatches += 1
            pair = self._hedge_pairs.pop(record.query.query_id, None)
            if pair is not None:
                # the surviving hedge attempt still serves this query; re-queueing
                # it too would double-serve
                self.hedges_cancelled += 1
                continue
            self._requeued_ids.add(record.query.query_id)
            events.push(Event(now, EventKind.QUERY_ARRIVAL, record.query))
        if requeued:
            scale_log.append(
                ScaleLogEntry(now, "requeue", server.type_name, len(requeued))
            )
        # drop gray-failure state for the reclaimed server
        if self.monitor is not None:
            self.monitor.forget(server_id)
        span = self._quarantine_spans.pop(server_id, None)
        if span is not None:
            span.end_ms = now
        self._zombie_ids.discard(server_id)
        self._breakers.pop(server_id, None)
        return True


def simulate_preemptible_serving(
    cluster: Cluster,
    policy,
    queries: Sequence[Query],
    *,
    market: Optional[SpotMarket] = None,
    **kwargs,
) -> ElasticSimulationReport:
    """Convenience wrapper mirroring :func:`~repro.sim.elasticity.simulate_elastic_serving`."""
    sim = PreemptibleElasticSimulation(cluster, policy, market=market, **kwargs)
    return sim.run(queries)
