"""Fault injection and graceful degradation: crashes, slowdowns, retries, admission.

The spot subsystem (PR 4) models *announced* capacity loss — a warning precedes every
kill and the loop drains through it.  Production fleets also lose capacity without
warning (hardware faults, kernel panics, AZ outages) and degrade without dying
(thermal throttling, noisy neighbours).  This module supplies the chaos side of the
simulator:

* :class:`FaultInjector` — a seeded per-instance-type fault process drawing
  **unannounced crash** delays (Poisson hazard, mirroring
  :meth:`~repro.cloud.spot.SpotMarket.draw_preemption_delay_ms` including its
  zero-hazard no-draw seed-stability contract) and **transient slowdown** windows
  that multiply a server's effective service latency for a bounded interval.
* :class:`RetryPolicy` — the client-side survival story: per-query response
  deadlines, re-queue through the central pending queue with a bounded retry budget
  and exponential backoff, and a **dead-letter** account for exhausted queries so no
  arrival is ever silently lost.
* :class:`AdmissionController` — an AutoThrottle-style backpressure layer: the
  admitted per-round concurrency tracks observed service latency against a target,
  and when the backlog exceeds what the current limit can plausibly clear, the
  lowest-value (smallest-batch) queries are shed instead of blowing QoS for everyone.

All draws come from a dedicated fault RNG stream, so enabling injection never
perturbs workload/service/market streams, and a zero-hazard injector is
byte-identical to no injector at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.cloud.billing import MS_PER_HOUR
from repro.cloud.instances import InstanceCatalog
from repro.sim.events import CrashStorm
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.query import Query

__all__ = [
    "FaultProfile",
    "FaultInjector",
    "CrashStorm",
    "RetryPolicy",
    "DeadLetterEntry",
    "ShedEntry",
    "AdmissionController",
]


@dataclass(frozen=True)
class FaultProfile:
    """The unannounced-fault process of one instance type.

    Attributes
    ----------
    type_name:
        Catalog instance type this profile applies to.
    failures_per_hour:
        Poisson crash hazard per commissioned instance (0 = never crashes; the
        zero-hazard profile is the byte-identity case of fault injection).
    slowdowns_per_hour:
        Poisson hazard of entering a transient slowdown window.
    slowdown_factor:
        Service-latency multiplier while slowed (>= 1).  Overlapping transient
        windows **replace** each other on the server (factors never compound
        within the transient mechanism; see
        :meth:`~repro.sim.server.ServerInstance.begin_slowdown`).
    slowdown_duration_ms:
        Length of each slowdown window.
    degradations_per_hour:
        Poisson hazard of a *permanent* gray degradation onset: service latency
        multiplies by ``degradation_factor`` with no recovery, compounding across
        onsets and with transient windows (0 = never, the byte-identity case).
    degradation_factor:
        Permanent service-latency multiplier applied at each degradation onset.
    flaky_per_hour:
        Poisson hazard of an intermittent latency flap: a bounded
        ``flaky_factor`` slowdown window of ``flaky_duration_ms`` that re-arms
        after each window — a server that keeps flapping rather than degrading
        monotonically.
    flaky_factor / flaky_duration_ms:
        Multiplier and length of each flaky window.
    zombies_per_hour:
        Poisson hazard of a zombie onset: the server keeps accepting dispatches
        but never emits a completion — the canonical gray failure the health
        layer must catch without any oracle.
    """

    type_name: str
    failures_per_hour: float = 0.0
    slowdowns_per_hour: float = 0.0
    slowdown_factor: float = 2.0
    slowdown_duration_ms: float = 30_000.0
    degradations_per_hour: float = 0.0
    degradation_factor: float = 3.0
    flaky_per_hour: float = 0.0
    flaky_factor: float = 2.5
    flaky_duration_ms: float = 500.0
    zombies_per_hour: float = 0.0

    def __post_init__(self) -> None:
        if not self.type_name:
            raise ValueError("type_name must be non-empty")
        check_non_negative(self.failures_per_hour, "failures_per_hour")
        check_non_negative(self.slowdowns_per_hour, "slowdowns_per_hour")
        if self.slowdown_factor < 1.0:
            raise ValueError(
                f"slowdown_factor must be >= 1, got {self.slowdown_factor}"
            )
        check_positive(self.slowdown_duration_ms, "slowdown_duration_ms")
        check_non_negative(self.degradations_per_hour, "degradations_per_hour")
        if self.degradation_factor < 1.0:
            raise ValueError(
                f"degradation_factor must be >= 1, got {self.degradation_factor}"
            )
        check_non_negative(self.flaky_per_hour, "flaky_per_hour")
        if self.flaky_factor < 1.0:
            raise ValueError(f"flaky_factor must be >= 1, got {self.flaky_factor}")
        check_positive(self.flaky_duration_ms, "flaky_duration_ms")
        check_non_negative(self.zombies_per_hour, "zombies_per_hour")

    @property
    def has_gray_hazards(self) -> bool:
        """True when any gray mode (degradation, flaky, zombie) can fire."""
        return (
            self.degradations_per_hour > 0.0
            or self.flaky_per_hour > 0.0
            or self.zombies_per_hour > 0.0
        )


class FaultInjector:
    """Per-type unannounced fault processes for a heterogeneous pool.

    Parameters
    ----------
    profiles:
        Per-type :class:`FaultProfile` entries (mapping or sequence).  Types without
        an entry never fault.
    auto_replace:
        When True and no controller is attached to the serving loop, every crashed
        instance is re-provisioned like-for-like (the operator's dumb-replacement
        baseline); a controller instead absorbs the loss through
        ``observe_failure`` and re-plans.
    """

    def __init__(
        self,
        profiles: Union[Mapping[str, FaultProfile], Sequence[FaultProfile]],
        *,
        auto_replace: bool = True,
    ):
        if isinstance(profiles, Mapping):
            entries = list(profiles.values())
            for name, profile in profiles.items():
                if name != profile.type_name:
                    raise ValueError(
                        f"profile keyed {name!r} describes type {profile.type_name!r}"
                    )
        else:
            entries = list(profiles)
        names = [p.type_name for p in entries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate fault profiles: {names}")
        self._profiles: Dict[str, FaultProfile] = {p.type_name: p for p in entries}
        self.auto_replace = bool(auto_replace)

    @classmethod
    def uniform(
        cls,
        catalog: InstanceCatalog,
        *,
        failures_per_hour: float = 0.0,
        slowdowns_per_hour: float = 0.0,
        slowdown_factor: float = 2.0,
        slowdown_duration_ms: float = 30_000.0,
        degradations_per_hour: float = 0.0,
        degradation_factor: float = 3.0,
        flaky_per_hour: float = 0.0,
        flaky_factor: float = 2.5,
        flaky_duration_ms: float = 500.0,
        zombies_per_hour: float = 0.0,
        auto_replace: bool = True,
    ) -> "FaultInjector":
        """One identical profile per catalog type (the common evaluation setup)."""
        return cls(
            [
                FaultProfile(
                    type_name=t.name,
                    failures_per_hour=failures_per_hour,
                    slowdowns_per_hour=slowdowns_per_hour,
                    slowdown_factor=slowdown_factor,
                    slowdown_duration_ms=slowdown_duration_ms,
                    degradations_per_hour=degradations_per_hour,
                    degradation_factor=degradation_factor,
                    flaky_per_hour=flaky_per_hour,
                    flaky_factor=flaky_factor,
                    flaky_duration_ms=flaky_duration_ms,
                    zombies_per_hour=zombies_per_hour,
                )
                for t in catalog.types
            ],
            auto_replace=auto_replace,
        )

    # -- container protocol --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[FaultProfile]:
        return iter(self._profiles.values())

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._profiles

    def __getitem__(self, type_name: str) -> FaultProfile:
        try:
            return self._profiles[type_name]
        except KeyError:
            raise KeyError(
                f"no fault profile for {type_name!r}; profiled: {list(self._profiles)}"
            ) from None

    @property
    def type_names(self) -> List[str]:
        return list(self._profiles)

    # -- simulator surface ---------------------------------------------------------------
    def draw_failure_delay_ms(
        self, type_name: str, rng: np.random.Generator
    ) -> Optional[float]:
        """Sample the time until this instance's unannounced crash, or ``None``.

        ``None`` means the type's crash hazard is zero (or the type has no profile)
        — no crash is ever scheduled and, crucially, *no random draw is consumed*,
        so a zero-hazard injector leaves every random stream byte-identical to a
        fault-free run.
        """
        profile = self._profiles.get(type_name)
        if profile is None or profile.failures_per_hour <= 0.0:
            return None
        return float(rng.exponential(MS_PER_HOUR / profile.failures_per_hour))

    def draw_slowdown_delay_ms(
        self, type_name: str, rng: np.random.Generator
    ) -> Optional[float]:
        """Sample the time until this instance's next slowdown window, or ``None``.

        Same zero-hazard no-draw contract as :meth:`draw_failure_delay_ms`.
        """
        profile = self._profiles.get(type_name)
        if profile is None or profile.slowdowns_per_hour <= 0.0:
            return None
        return float(rng.exponential(MS_PER_HOUR / profile.slowdowns_per_hour))

    # -- gray modes ----------------------------------------------------------------------
    # All gray draws come from a *dedicated* gray RNG substream (seeded
    # ``[seed, 606]`` by the serving loops), so enabling gray injection never
    # perturbs the crash/slowdown fault stream, and every method honours the
    # zero-hazard no-draw contract of :meth:`draw_failure_delay_ms`.

    def draw_degradation_delay_ms(
        self, type_name: str, rng: np.random.Generator
    ) -> Optional[float]:
        """Sample the time until this instance's permanent degradation onset, or ``None``."""
        profile = self._profiles.get(type_name)
        if profile is None or profile.degradations_per_hour <= 0.0:
            return None
        return float(rng.exponential(MS_PER_HOUR / profile.degradations_per_hour))

    def draw_flaky_delay_ms(
        self, type_name: str, rng: np.random.Generator
    ) -> Optional[float]:
        """Sample the time until this instance's next flaky window, or ``None``."""
        profile = self._profiles.get(type_name)
        if profile is None or profile.flaky_per_hour <= 0.0:
            return None
        return float(rng.exponential(MS_PER_HOUR / profile.flaky_per_hour))

    def draw_zombie_delay_ms(
        self, type_name: str, rng: np.random.Generator
    ) -> Optional[float]:
        """Sample the time until this instance goes zombie, or ``None``."""
        profile = self._profiles.get(type_name)
        if profile is None or profile.zombies_per_hour <= 0.0:
            return None
        return float(rng.exponential(MS_PER_HOUR / profile.zombies_per_hour))

    @property
    def has_gray_hazards(self) -> bool:
        """True when any profiled type has a non-zero gray hazard."""
        return any(p.has_gray_hazards for p in self._profiles.values())


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff plus an optional response deadline.

    Attributes
    ----------
    max_attempts:
        Total dispatch attempts per query (1 = no retry: first failure dead-letters).
    backoff_base_ms:
        Re-admission delay after the first failed attempt.
    backoff_factor:
        Multiplier applied per additional failed attempt (exponential backoff).
    response_timeout_ms:
        When set, a dispatched query whose completion would land more than this many
        ms after dispatch is abandoned at the deadline and retried elsewhere.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    response_timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        check_non_negative(self.backoff_base_ms, "backoff_base_ms")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.response_timeout_ms is not None:
            check_positive(self.response_timeout_ms, "response_timeout_ms")

    def backoff_ms(self, failed_attempts: int) -> float:
        """Re-admission delay after the ``failed_attempts``-th failure (1-based)."""
        if failed_attempts < 1:
            raise ValueError(
                f"failed_attempts must be >= 1, got {failed_attempts}"
            )
        return self.backoff_base_ms * self.backoff_factor ** (failed_attempts - 1)


@dataclass(frozen=True)
class DeadLetterEntry:
    """One query that exhausted its retry budget — accounted, never silently lost."""

    query: Query
    time_ms: float
    reason: str
    attempts: int


@dataclass(frozen=True)
class ShedEntry:
    """One query shed by admission control under overload."""

    query: Query
    time_ms: float
    reason: str = "overload"


@dataclass
class AdmissionController:
    """AutoThrottle-style admission control: latency-tracking concurrency + shedding.

    Modeled on scrapy's AutoThrottle: the admitted per-round concurrency is adjusted
    from *observed* service latency — when queries complete faster than
    ``target_latency_ms`` the window opens, when they complete slower it closes —
    smoothed by an EWMA so one outlier round cannot whipsaw the limit.  On top of
    the rate signal sits a shedding valve: when the backlog exceeds
    ``shed_backlog_factor`` times the current limit, the overflow is dropped
    lowest-value-first (smallest batch size) so the queries that *are* admitted
    still meet QoS instead of everyone missing it together.

    Attributes
    ----------
    target_latency_ms:
        Desired observed completion latency (typically the QoS target).
    initial_concurrency:
        Admitted per-round dispatch limit before any observation.
    min_concurrency / max_concurrency:
        Clamp bounds on the adaptive limit.
    shed_backlog_factor:
        Backlog tolerated before shedding, as a multiple of the current limit.
    smoothing:
        EWMA weight of each new latency observation in ``(0, 1]``.
    """

    target_latency_ms: float
    initial_concurrency: int = 8
    min_concurrency: int = 1
    max_concurrency: int = 256
    shed_backlog_factor: float = 4.0
    smoothing: float = 0.3

    _limit: float = field(init=False, repr=False)
    _latency_ewma_ms: Optional[float] = field(init=False, default=None, repr=False)
    shed_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        check_positive(self.target_latency_ms, "target_latency_ms")
        if self.min_concurrency < 1:
            raise ValueError(
                f"min_concurrency must be >= 1, got {self.min_concurrency}"
            )
        if not (
            self.min_concurrency <= self.initial_concurrency <= self.max_concurrency
        ):
            raise ValueError(
                "need min_concurrency <= initial_concurrency <= max_concurrency, got "
                f"{self.min_concurrency} / {self.initial_concurrency} / "
                f"{self.max_concurrency}"
            )
        if self.shed_backlog_factor < 1.0:
            raise ValueError(
                f"shed_backlog_factor must be >= 1, got {self.shed_backlog_factor}"
            )
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError(f"smoothing must lie in (0, 1], got {self.smoothing}")
        self._limit = float(self.initial_concurrency)

    # -- observation ---------------------------------------------------------------------
    def observe_latency(self, latency_ms: float) -> None:
        """Feed one completed query's client-observed latency into the EWMA."""
        if self._latency_ewma_ms is None:
            self._latency_ewma_ms = float(latency_ms)
        else:
            self._latency_ewma_ms += self.smoothing * (
                float(latency_ms) - self._latency_ewma_ms
            )
        # AutoThrottle's core rule: scale the window toward the throughput that would
        # put observed latency on target (latency above target shrinks, below grows).
        ratio = self.target_latency_ms / max(self._latency_ewma_ms, 1e-9)
        proposed = self._limit * ratio
        self._limit += self.smoothing * (proposed - self._limit)
        self._limit = min(
            float(self.max_concurrency), max(float(self.min_concurrency), self._limit)
        )

    @property
    def latency_ewma_ms(self) -> Optional[float]:
        return self._latency_ewma_ms

    # -- round surface -------------------------------------------------------------------
    @property
    def concurrency_limit(self) -> int:
        """Admitted dispatches per scheduling round (the adaptive window)."""
        return max(self.min_concurrency, int(self._limit))

    def backlog_capacity(self) -> int:
        """Backlog tolerated before shedding starts."""
        return int(self.shed_backlog_factor * self.concurrency_limit)

    def to_shed(self, backlog: int) -> int:
        """How many queries to shed from a backlog of ``backlog`` (0 when tolerable)."""
        return max(0, int(backlog) - self.backlog_capacity())

    def record_shed(self, count: int) -> None:
        self.shed_count += int(count)

    def reset(self) -> None:
        """Clear adaptive state (used when reusing a controller across runs)."""
        self._limit = float(self.initial_concurrency)
        self._latency_ewma_ms = None
        self.shed_count = 0


def select_shed_victims(pending: Sequence[Query], count: int) -> List[Query]:
    """The ``count`` lowest-value queries of a backlog: smallest batch first.

    Batch size is the per-query value proxy (a batch of 8 serves 8 users); ties
    break by queue order (oldest kept — it has waited longest and is nearest its
    deadline already being sunk cost either way, so we keep determinism simple:
    later arrivals shed first within a batch-size class).
    """
    if count <= 0:
        return []
    order = sorted(
        range(len(pending)),
        key=lambda i: (pending[i].batch_size, -i),
    )
    return [pending[i] for i in order[:count]]
