"""Event-queue engine: a deterministic binary-heap scheduler and a simulation clock."""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from repro.sim.events import Event

#: Timestamp comparison tolerance (milliseconds) shared by the whole engine: events
#: within this distance of an instant belong to the same scheduling round
#: (:meth:`EventQueue.pop_until` / :meth:`EventQueue.pop_batch`), and the clock
#: tolerates backward requests up to it (:meth:`SimulationClock.advance_to`).
#: Historically ``pop_until`` used an ad-hoc ``1e-12`` while the clock used ``1e-9``;
#: one named epsilon keeps "same instant" meaning the same thing everywhere.  Note
#: the unification *widens* the event-coalescing window from 1e-12 to 1e-9 ms:
#: events less than a nanosecond apart — below any physical meaning the simulation
#: assigns to time — now share a scheduling round.  Every committed figure, the
#: full test suite, and the pre-overhaul byte-identity digests are unchanged under
#: the wider window.
TIME_EPSILON_MS = 1e-9


class SimulationClock:
    """Monotone simulated-time clock (milliseconds)."""

    def __init__(self, start_ms: float = 0.0):
        if start_ms < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start_ms)

    @property
    def now_ms(self) -> float:
        return self._now

    def advance_to(self, time_ms: float) -> float:
        """Advance the clock; simulated time can never move backwards."""
        if time_ms < self._now - TIME_EPSILON_MS:
            raise ValueError(
                f"cannot move the clock backwards: now={self._now}, requested={time_ms}"
            )
        self._now = max(self._now, float(time_ms))
        return self._now


class EventQueue:
    """A deterministic priority queue of :class:`~repro.sim.events.Event` objects.

    Events at the same timestamp are ordered by event kind (completions before
    arrivals) and then by insertion order, which makes whole simulations reproducible
    for a fixed seed.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[tuple, Event]] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event."""
        heapq.heappush(self._heap, (event.sort_key(self._sequence), event))
        self._sequence += 1

    def push_all(self, events) -> None:
        for event in events:
            self.push(event)

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[1]

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise IndexError("peek on an empty event queue")
        return self._heap[0][1]

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][1].time_ms if self._heap else None

    def pop_until(self, time_ms: float) -> Iterator[Event]:
        """Yield and remove every event with ``time <= time_ms`` (within epsilon)."""
        while self._heap and self._heap[0][1].time_ms <= time_ms + TIME_EPSILON_MS:
            yield self.pop()

    def pop_batch(self, time_ms: Optional[float] = None) -> List[Event]:
        """Remove and return the whole equal-timestamp batch as a list, in order.

        With ``time_ms`` given, this is the eager form of :meth:`pop_until` — every
        event within :data:`TIME_EPSILON_MS` of ``time_ms`` — which the serving
        simulators use so all events of one instant trigger a *single* scheduling
        round.  Without it, the batch is taken at the earliest queued timestamp
        (empty queue returns an empty list).  Kind/insertion ordering inside the
        batch is exactly the heap order (completions before arrivals).

        **Anchor rule (load-bearing, do not change):** the batch limit is pinned at
        ``anchor + TIME_EPSILON_MS`` where the *anchor* is the single timestamp the
        batch was taken at (``time_ms`` when given, else the earliest queued event).
        Coalescing is deliberately **not transitive**: a chain of events whose
        consecutive gaps are each below epsilon still splits at the anchor boundary —
        events past ``anchor + epsilon`` stay queued and anchor the *next* batch.
        Sub-epsilon chains are therefore partitioned greedily from the earliest event
        forward, which makes the split a deterministic function of the queue contents
        alone.  Any sharded or merged queue
        (:class:`~repro.sim.sharding.ShardedEventQueue`) must reuse this exact rule
        with one **global** anchor across all shards: letting each shard anchor its
        own batch would split the same chain differently per shard and diverge from
        the unsharded event loop.
        """
        heap = self._heap
        if not heap:
            return []
        limit = (heap[0][1].time_ms if time_ms is None else time_ms) + TIME_EPSILON_MS
        batch: List[Event] = []
        pop = heapq.heappop
        while heap and heap[0][1].time_ms <= limit:
            batch.append(pop(heap)[1])
        return batch

    def only_kinds(self, kinds) -> bool:
        """True when the queue is non-empty and every queued event's kind is in ``kinds``.

        An empty ``kinds`` set always answers False: the question only makes sense
        for a real set of timer kinds, and a fault-free caller passing the empty set
        must get the same answer as before timers existed.
        """
        return bool(self._heap) and all(entry[1].kind in kinds for entry in self._heap)

    def discard(self, predicate) -> int:
        """Remove every queued event matching ``predicate``; returns how many.

        Surviving entries keep their original sort keys (timestamp, kind, insertion
        sequence), so the relative order of everything left is untouched —
        determinism is preserved.
        """
        kept = [entry for entry in self._heap if not predicate(entry[1])]
        removed = len(self._heap) - len(kept)
        if removed:
            self._heap = kept
            heapq.heapify(self._heap)
        return removed

    def clear(self) -> None:
        self._heap.clear()
