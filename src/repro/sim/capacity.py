"""Allowable-throughput measurement.

The paper's metric (Sec. 3 / Sec. 7): the allowable throughput of a configuration is
the highest query arrival rate it sustains without violating the QoS target, found by
"gradually increasing the arrival rate of queries until the QoS is violated".  This
module performs that measurement on the simulator with a bracket-then-bisect search over
the Poisson arrival rate.  Each probe simulates a full serving run; an early-stop
violation budget aborts clearly-overloaded runs to keep capacity searches cheap.

Every call to :func:`measure_allowable_throughput` is what the paper calls *one online
evaluation* of a configuration (tens of seconds on the real cloud); the configuration
search experiments (Figs. 2, 10, 11, 12) count these calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry
from repro.sim.cluster import Cluster
from repro.sim.server import ServiceNoiseModel
from repro.sim.simulation import ServingSimulation
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

#: Signature of the policy factory: called once per probe simulation with no arguments.
PolicyFactory = Callable[[], object]


@dataclass(frozen=True)
class CapacityProbe:
    """One probed arrival rate and its outcome."""

    rate_qps: float
    feasible: bool
    tail_latency_ms: float
    early_stopped: bool


@dataclass(frozen=True)
class AllowableThroughputResult:
    """Result of an allowable-throughput measurement."""

    config: HeterogeneousConfig
    model_name: str
    qps: float
    probes: Tuple[CapacityProbe, ...]
    num_queries: int
    rel_tolerance: float

    @property
    def num_simulations(self) -> int:
        return len(self.probes)

    @property
    def feasible_rates(self) -> List[float]:
        return [p.rate_qps for p in self.probes if p.feasible]

    @property
    def infeasible_rates(self) -> List[float]:
        return [p.rate_qps for p in self.probes if not p.feasible]


def _initial_rate_guess(
    cluster: Cluster, spec: WorkloadSpec
) -> float:
    """Crude aggregate service-rate estimate used to seed the bracket search."""
    mean_batch = spec.batch_sizes.mean_batch()
    total = 0.0
    for server in cluster:
        latency = float(server.profile.latency_ms(mean_batch))
        total += 1000.0 / max(latency, 1e-6)
    return max(total, 1.0)


def measure_allowable_throughput(
    config: HeterogeneousConfig,
    model: MLModel,
    profiles: ProfileRegistry,
    policy_factory: PolicyFactory,
    *,
    workload_spec: Optional[WorkloadSpec] = None,
    num_queries: Optional[int] = None,
    rng: RngLike = None,
    qos_ms: Optional[float] = None,
    qos_percentile: float = 99.0,
    dispatch_overhead_ms: float = 0.0,
    noise: Optional[ServiceNoiseModel] = None,
    rel_tolerance: float = 0.04,
    max_iterations: int = 14,
    min_rate_qps: float = 0.25,
    max_rate_qps: float = 1e6,
    early_stop: bool = True,
    warmup_queries: Optional[int] = None,
) -> AllowableThroughputResult:
    """Measure the allowable throughput of ``config`` for ``model`` under a policy.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable returning a *fresh* scheduling policy for each probe run
        (policies carry online-learning state that must not leak across probes).
    workload_spec / num_queries:
        Query-stream description; the same batch-size sequence (same derived seed) is
        used at every probed rate so probes differ only in arrival intensity.
    rel_tolerance / max_iterations:
        Bisection stops when the bracket width falls below ``rel_tolerance`` of the
        upper end or after ``max_iterations`` probes in the bisection phase.
    early_stop:
        Abort probe simulations as soon as more QoS violations have occurred than the
        QoS percentile permits (the run is already infeasible).
    warmup_queries:
        Earliest arrivals excluded from the QoS metric (they cover the online latency
        learner's cold start).  Defaults to 10% of the probe's query count.
    """
    check_positive(rel_tolerance, "rel_tolerance")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    spec = workload_spec if workload_spec is not None else WorkloadSpec()
    if num_queries is not None:
        spec = spec.with_num_queries(num_queries)
    qos = float(qos_ms) if qos_ms is not None else model.qos_ms

    master = ensure_rng(rng)
    workload_seed = int(master.integers(0, 2**62))
    noise_seed = int(master.integers(0, 2**62))

    warmup = (
        int(warmup_queries)
        if warmup_queries is not None
        else max(0, spec.num_queries // 10)
    )
    measured_queries = max(1, spec.num_queries - warmup)
    allowed_violations: Optional[int] = None
    if early_stop:
        allowed_violations = int(math.ceil((1.0 - qos_percentile / 100.0) * measured_queries)) + 1

    generator = WorkloadGenerator(spec)
    probes: List[CapacityProbe] = []

    def probe(rate: float) -> bool:
        queries = generator.generate(rate, np.random.default_rng(workload_seed))
        cluster = Cluster(config, model, profiles, dispatch_overhead_ms=dispatch_overhead_ms)
        sim = ServingSimulation(
            cluster,
            policy_factory(),
            qos_ms=qos,
            qos_percentile=qos_percentile,
            noise=noise,
            rng=np.random.default_rng(noise_seed),
            max_violations=allowed_violations,
            warmup_queries=warmup,
        )
        report = sim.run(queries)
        if report.early_stopped or not report.completed_all or len(report.metrics) == 0:
            # Overloaded, or the policy could not place every query (undeliverable
            # queries count against QoS just like violations).
            feasible = False
            tail = float("inf")
        else:
            tail = report.metrics.tail_latency_ms()
            feasible = tail <= qos + 1e-9
        probes.append(CapacityProbe(rate, feasible, tail, report.early_stopped))
        return feasible

    cluster_for_guess = Cluster(config, model, profiles)
    rate = _initial_rate_guess(cluster_for_guess, spec)
    rate = min(max(rate * 0.5, min_rate_qps), max_rate_qps)

    # --- bracket ------------------------------------------------------------------------
    lo: Optional[float] = None
    hi: Optional[float] = None
    if probe(rate):
        lo = rate
        while lo is not None and hi is None:
            candidate = min(lo * 2.0, max_rate_qps)
            if candidate <= lo * (1 + 1e-9):
                hi = candidate
                break
            if probe(candidate):
                lo = candidate
                if candidate >= max_rate_qps:
                    hi = candidate
            else:
                hi = candidate
    else:
        hi = rate
        while hi is not None and lo is None:
            candidate = hi / 2.0
            if candidate < min_rate_qps:
                break
            if probe(candidate):
                lo = candidate
            else:
                hi = candidate

    if lo is None:
        # Not even the minimum rate is feasible: allowable throughput is 0 (the paper's
        # "cannot serve standalone" case).
        return AllowableThroughputResult(
            config=config,
            model_name=model.name,
            qps=0.0,
            probes=tuple(probes),
            num_queries=spec.num_queries,
            rel_tolerance=rel_tolerance,
        )
    assert hi is not None

    # --- bisect ------------------------------------------------------------------------
    iterations = 0
    while (hi - lo) > rel_tolerance * hi and iterations < max_iterations:
        mid = 0.5 * (lo + hi)
        if probe(mid):
            lo = mid
        else:
            hi = mid
        iterations += 1

    return AllowableThroughputResult(
        config=config,
        model_name=model.name,
        qps=float(lo),
        probes=tuple(probes),
        num_queries=spec.num_queries,
        rel_tolerance=rel_tolerance,
    )
