"""Sharded event/pending queues with a deterministic, anchor-preserving merge rule.

One Python process drives one global :class:`~repro.sim.engine.EventQueue` and one
:class:`~repro.sim.pending.PendingQueue` — the explicit fleet-scale ceiling named in
the ROADMAP.  This module shards both **without changing a single observable
ordering decision**:

* :class:`ShardedEventQueue` partitions events across per-shard binary heaps (per
  model for the multi-model loop, per event-kind class for the single-model loops)
  while handing out **globally unique** insertion sequence numbers.  Every event's
  sort key ``event.sort_key(sequence)`` — ``(time, kind priority, sequence)`` — is
  therefore globally comparable and globally unique, so merging the shard heads by
  smallest key reproduces the exact pop order of one global heap, *whatever the
  partition*.  Correctness never depends on the shard-key function; shard keys only
  decide which heap absorbs the O(log n) push/pop cost.
* Batch coalescing reuses the **anchor rule** of
  :meth:`~repro.sim.engine.EventQueue.pop_batch` with one **global** anchor across
  all shards: the limit is ``anchor + TIME_EPSILON_MS`` where the anchor is the
  single timestamp the batch is taken at (the given ``time_ms``, else the earliest
  event across every shard).  Letting each shard anchor its own batch would split
  the same sub-epsilon chain differently per shard and diverge from the unsharded
  loop — the divergence the anchor rule exists to forbid.
* :class:`ShardClock` gives each shard a monotone clock advanced at round
  boundaries, plus a global round clock that is always their maximum; fault draws
  stay in commission order because pushes (and therefore sequence numbers) happen
  in exactly the order the unsharded loop performs them.
* :class:`ShardedPendingQueue` keeps one :class:`~repro.sim.pending.PendingQueue`
  per model and merges snapshots by a global admission sequence — the merged view
  is byte-identical to the append order of the single queue it replaces.

Byte-identity per seed against the unsharded path, over the full committed
regression corpus, is pinned in ``tests/regression/test_regression_scenarios.py``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.engine import TIME_EPSILON_MS, SimulationClock
from repro.sim.events import Event, EventKind
from repro.sim.pending import PendingQueue
from repro.workload.query import Query

ShardKey = Callable[[Event], object]


def shard_key_by_model(event: Event) -> object:
    """Shard key for the multi-model loop: the model the event belongs to.

    Model-tagged payloads (queries, scale requests, completion records) shard by
    model name; everything else (fault timers, control events) shards by event
    kind.  The partition is a performance choice only — the sequence-number merge
    makes any partition order-identical to the global heap.
    """
    model = getattr(event.payload, "model_name", None)
    if model is not None:
        return ("model", model)
    return ("kind", int(event.kind))


def shard_key_by_kind(event: Event) -> object:
    """Shard key for single-model loops: the event-kind class.

    Completions and arrivals (the hot kinds) each get a shard; the provisioning
    and fault kinds share a third.
    """
    if event.kind == EventKind.SERVICE_COMPLETION:
        return "completion"
    if event.kind == EventKind.QUERY_ARRIVAL:
        return "arrival"
    return "control"


class ShardClock:
    """Per-shard monotone clocks advanced at round boundaries, plus a global clock.

    The global clock is always ``max`` over the shard clocks (and never behind a
    direct :meth:`advance_round`); each shard clock advances lazily, only when its
    shard contributes events to a round.  Shard clocks exist for observability —
    the driving loops consume only the global round clock, so sharding cannot leak
    into scheduling decisions.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._start_ms = float(start_ms)
        self._global = SimulationClock(start_ms)
        self._shards: Dict[object, SimulationClock] = {}

    @property
    def now_ms(self) -> float:
        return self._global.now_ms

    def shard_now_ms(self, shard: object) -> float:
        """The shard's local clock (the start time if it never saw a round)."""
        clock = self._shards.get(shard)
        return clock.now_ms if clock is not None else self._start_ms

    def advance_round(self, time_ms: float) -> float:
        """Advance the global round clock (monotone, like the unsharded clock)."""
        return self._global.advance_to(time_ms)

    def advance_shard(self, shard: object, time_ms: float) -> float:
        """Advance one shard's clock to the round boundary it participated in."""
        clock = self._shards.get(shard)
        if clock is None:
            clock = self._shards[shard] = SimulationClock(self._start_ms)
        local = clock.advance_to(time_ms)
        # the global clock is the max over shards: a shard lagging behind another
        # shard's round boundary must not read as backward global motion
        if local > self._global.now_ms:
            self._global.advance_to(local)
        return local


class ShardedEventQueue:
    """A drop-in :class:`~repro.sim.engine.EventQueue` over per-shard heaps.

    The public API and every ordering guarantee are identical to the single-heap
    queue; see the module docstring for why the merge is exact.  ``clock`` (a
    :class:`ShardClock`, created on demand) tracks which shards participated in
    each popped batch.
    """

    def __init__(self, shard_key: Optional[ShardKey] = None) -> None:
        self._shard_key: ShardKey = shard_key or shard_key_by_kind
        self._shards: Dict[object, List[Tuple[tuple, Event]]] = {}
        self._sequence = 0  # global: makes sort keys unique across shards
        self.clock = ShardClock()

    def __len__(self) -> int:
        return sum(len(heap) for heap in self._shards.values())

    def __bool__(self) -> bool:
        return any(self._shards.values())

    @property
    def num_shards(self) -> int:
        """Live shards (shards emptied by pops still count until :meth:`clear`)."""
        return len(self._shards)

    def shard_sizes(self) -> Dict[object, int]:
        return {key: len(heap) for key, heap in self._shards.items()}

    def push(self, event: Event) -> None:
        """Insert an event into its shard; sequence numbers are global."""
        heap = self._shards.setdefault(self._shard_key(event), [])
        heapq.heappush(heap, (event.sort_key(self._sequence), event))
        self._sequence += 1

    def push_all(self, events) -> None:
        for event in events:
            self.push(event)

    def _min_shard(self) -> Optional[object]:
        """The shard whose head has the globally smallest sort key."""
        best_key: Optional[object] = None
        best_sort = None
        for key, heap in self._shards.items():
            if heap and (best_sort is None or heap[0][0] < best_sort):
                best_key, best_sort = key, heap[0][0]
        return best_key

    def pop(self) -> Event:
        """Remove and return the earliest event across all shards."""
        shard = self._min_shard()
        if shard is None:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._shards[shard])[1]

    def peek(self) -> Event:
        shard = self._min_shard()
        if shard is None:
            raise IndexError("peek on an empty event queue")
        return self._shards[shard][0][1]

    def peek_time(self) -> Optional[float]:
        shard = self._min_shard()
        return self._shards[shard][0][1].time_ms if shard is not None else None

    def pop_until(self, time_ms: float) -> Iterator[Event]:
        """Yield and remove every event with ``time <= time_ms`` (within epsilon)."""
        limit = time_ms + TIME_EPSILON_MS
        while True:
            shard = self._min_shard()
            if shard is None or self._shards[shard][0][1].time_ms > limit:
                return
            self.clock.advance_shard(shard, self._shards[shard][0][1].time_ms)
            yield heapq.heappop(self._shards[shard])[1]

    def pop_batch(self, time_ms: Optional[float] = None) -> List[Event]:
        """The whole equal-timestamp batch, merged across shards, in heap order.

        Reuses the exact anchor rule of
        :meth:`~repro.sim.engine.EventQueue.pop_batch` with one **global** anchor:
        ``limit = anchor + TIME_EPSILON_MS`` where the anchor is ``time_ms`` when
        given, else the earliest event across *every* shard.  Events are then
        drained smallest-sort-key-first across shards, which is exactly the order
        a single global heap would produce.
        """
        anchor_shard = self._min_shard()
        if time_ms is None:
            if anchor_shard is None:
                return []
            anchor = self._shards[anchor_shard][0][1].time_ms
        else:
            anchor = time_ms
        limit = anchor + TIME_EPSILON_MS
        batch: List[Event] = []
        while True:
            shard = self._min_shard()
            if shard is None:
                break
            heap = self._shards[shard]
            if heap[0][1].time_ms > limit:
                break
            self.clock.advance_shard(shard, heap[0][1].time_ms)
            batch.append(heapq.heappop(heap)[1])
        if batch:
            self.clock.advance_round(batch[-1].time_ms)
        return batch

    def only_kinds(self, kinds) -> bool:
        """True when non-empty and every queued event's kind is in ``kinds``."""
        return bool(self) and all(
            entry[1].kind in kinds
            for heap in self._shards.values()
            for entry in heap
        )

    def discard(self, predicate) -> int:
        """Remove every queued event matching ``predicate``; returns how many.

        Per-shard filter + heapify, as in the unsharded queue: survivors keep
        their original sort keys, so relative order is untouched.
        """
        removed = 0
        for key, heap in self._shards.items():
            kept = [entry for entry in heap if not predicate(entry[1])]
            if len(kept) != len(heap):
                removed += len(heap) - len(kept)
                heapq.heapify(kept)
                self._shards[key] = kept
        return removed

    def clear(self) -> None:
        self._shards.clear()


class ShardedPendingQueue:
    """Per-model pending queues whose merged view equals global append order.

    Each model (``None`` for untagged queries) gets its own
    :class:`~repro.sim.pending.PendingQueue`; every admitted query also records a
    global admission sequence number.  The merged snapshot interleaves the
    per-shard snapshots by that sequence — each shard's snapshot is already in
    increasing sequence order, so an ``heapq.merge`` reproduces exactly the append
    order of the single queue this replaces.  Scheduling policies written against
    :class:`PendingQueue` (snapshot, positional indexing, ``snapshot_arrays``)
    work unchanged.
    """

    __slots__ = (
        "_shards",
        "_shard_of",
        "_seq_of",
        "_sequence",
        "_version",
        "_snapshot",
        "_arrays",
    )

    def __init__(self) -> None:
        self._shards: Dict[Optional[str], PendingQueue] = {}
        self._shard_of: Dict[int, Optional[str]] = {}
        self._seq_of: Dict[int, int] = {}
        self._sequence = 0
        self._version = 0
        self._snapshot: Optional[List[Query]] = None
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        return len(self._shard_of)

    def __bool__(self) -> bool:
        return bool(self._shard_of)

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._shard_of

    def __iter__(self) -> Iterator[Query]:
        return iter(self.snapshot())

    def __getitem__(self, index):
        return self.snapshot()[index]

    @property
    def version(self) -> int:
        return self._version

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard(self, model_name: Optional[str]) -> Optional[PendingQueue]:
        """One model's pending queue (``None`` when that model has no backlog)."""
        return self._shards.get(model_name)

    def append(self, query: Query) -> None:
        if query.query_id in self._shard_of:
            raise ValueError(f"query {query.query_id} is already pending")
        shard = self._shards.setdefault(query.model_name, PendingQueue())
        shard.append(query)
        self._shard_of[query.query_id] = query.model_name
        self._seq_of[query.query_id] = self._sequence
        self._sequence += 1
        self._version += 1
        self._snapshot = None
        self._arrays = None

    def remove(self, query_id: int) -> Query:
        model = self._shard_of.pop(query_id, None)
        if model is None and query_id not in self._seq_of:
            raise KeyError(query_id)
        self._seq_of.pop(query_id, None)
        query = self._shards[model].remove(query_id)
        self._version += 1
        self._snapshot = None
        self._arrays = None
        return query

    def snapshot(self) -> List[Query]:
        """All pending queries, merged across shards in global admission order."""
        if self._snapshot is None:
            runs = [
                [(self._seq_of[q.query_id], q) for q in shard.snapshot()]
                for shard in self._shards.values()
                if len(shard)
            ]
            self._snapshot = [q for _, q in heapq.merge(*runs)]
        return self._snapshot

    def snapshot_arrays(self) -> Tuple[List[Query], np.ndarray, np.ndarray]:
        """``(queries, batch_sizes, arrival_times)``, as for :class:`PendingQueue`."""
        if self._arrays is None:
            snapshot = self.snapshot()
            batches = np.asarray([q.batch_size for q in snapshot], dtype=int)
            arrivals = np.asarray([q.arrival_time_ms for q in snapshot], dtype=float)
            self._arrays = (batches, arrivals)
        return self.snapshot(), self._arrays[0], self._arrays[1]
