"""Multi-model serving: N co-located models, one event loop, one shared budget.

:class:`MultiModelServingSimulation` generalizes
:class:`~repro.sim.elasticity.ElasticServingSimulation` to a
:class:`~repro.sim.cluster.MultiModelCluster`: arrivals are tagged with the model they
target, scheduling rounds run over the *union* of pending queries and every partition's
accepting instances (the policy sees a
:class:`~repro.sim.cluster.MultiModelClusterView`), metrics aggregate per model against
per-model QoS targets, and the billing ledger tags every instance with its model so
spend is attributable per tenant.

Everything flows through the same :class:`~repro.sim.engine.EventQueue` ordering
contract as the single-model simulators; with exactly one registered model the run is
event-for-event identical to the single-model elastic path (locked down by the golden
and seed-stability tests).

Elasticity carries over: ``SCALE_UP`` / ``SCALE_DOWN`` requests name the model
partition they target, and an optional
:class:`~repro.core.controller.MultiModelElasticController` re-plans the *joint*
allocation of all models under the shared budget.  When a re-plan shrinks several
(model, type) pairs at once, scale-downs are emitted most-cost-efficient-first (the
same $/hr-per-capacity rule as :func:`~repro.sim.elasticity.scale_down_priority`).

Maintenance note: the event loop, handlers, and commit path deliberately mirror
:class:`~repro.sim.elasticity.ElasticServingSimulation` statement for statement (the
single-model loop stays untouched so its seed behaviour cannot drift); a semantic fix
in either loop must be mirrored in the other, and the byte-identity suite
(``test_multi_model.py::TestSingleModelByteIdentity``) fails if they diverge on the
shared single-model behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cloud.billing import SPAN_HEDGE, SPAN_QUARANTINE, InstanceUsageLedger
from repro.sim.cluster import MultiModelCluster, MultiModelClusterView
from repro.sim.elasticity import ScaleLogEntry, drain_cost_efficiency
from repro.sim.engine import EventQueue, SimulationClock
from repro.sim.events import CrashStorm, Event, EventKind, ScaleRequest
from repro.sim.faults import (
    AdmissionController,
    DeadLetterEntry,
    FaultInjector,
    RetryPolicy,
    ShedEntry,
    select_shed_victims,
)
from repro.sim.health import (
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    HealthConfig,
    HedgeManager,
    HedgePolicy,
    ServerHealthMonitor,
)
from repro.sim.metrics import MultiModelServingMetrics, QueryRecord
from repro.sim.pending import PendingQueue
from repro.sim.server import ServiceNoiseModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative
from repro.workload.query import Query


@dataclass
class MultiModelSimulationReport:
    """Everything a multi-model serving run produced."""

    metrics: MultiModelServingMetrics
    cluster: MultiModelCluster
    ledger: InstanceUsageLedger
    policy_name: str
    scheduling_rounds: int
    dispatched_queries: int
    total_queries: int
    simulated_duration_ms: float
    billing_horizon_ms: float = 0.0
    replans: List = field(default_factory=list)
    scale_log: List[ScaleLogEntry] = field(default_factory=list)
    peak_instances: int = 0
    #: Queries dropped by admission control under overload (graceful degradation).
    shed_queries: List[ShedEntry] = field(default_factory=list)
    #: Queries that exhausted their retry budget — accounted, never silently lost.
    dead_letters: List[DeadLetterEntry] = field(default_factory=list)
    #: Re-admissions pushed by the retry layer (crash- or timeout-failed attempts).
    retries: int = 0
    #: Queries still pending when the run ended (the policy declined the remainder).
    unserved_queries: int = 0
    #: Speculative duplicate dispatches launched by the hedge layer.
    hedges_launched: int = 0
    #: Hedge attempts cancelled (every launched race resolves with exactly one).
    hedges_cancelled: int = 0
    #: Hedge races won by the duplicate (the speculation paid off).
    hedge_wins: int = 0

    @property
    def quarantine_events(self) -> int:
        """Breaker trips (quarantines) that fired during the run."""
        return sum(e.count for e in self.scale_log if e.kind == "quarantine")

    @property
    def completed_all(self) -> bool:
        return self.dispatched_queries == self.total_queries

    @property
    def instance_failures(self) -> int:
        """Unannounced instance crashes that fired during the run."""
        return sum(e.count for e in self.scale_log if e.kind == "instance_failed")

    def total_cost(self) -> float:
        """Dollar spend over the whole run (all models combined)."""
        return self.ledger.total_cost(self.billing_horizon_ms)

    def cost_by_model(self) -> Dict[str, float]:
        """Per-model attributed spend; sums to :meth:`total_cost` (ledger tags)."""
        by_tag = self.ledger.cost_by_tag(self.billing_horizon_ms)
        return {name: cost for name, cost in by_tag.items() if name is not None}

    def all_meet_qos(self) -> bool:
        return self.metrics.all_meet_qos()

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-model metric summaries plus run-level totals under ``"__run__"``."""
        data: Dict[str, Dict[str, float]] = dict(self.metrics.summary())
        cost_by_model = self.cost_by_model()
        for name in cost_by_model:
            data[name] = dict(data.get(name, {}))
            data[name]["attributed_cost"] = cost_by_model[name]
        data["__run__"] = {
            "scheduling_rounds": float(self.scheduling_rounds),
            "simulated_duration_ms": self.simulated_duration_ms,
            "num_replans": float(len(self.replans)),
            "total_cost": self.total_cost(),
            "peak_instances": float(self.peak_instances),
        }
        return data


class MultiModelServingSimulation:
    """Serve an interleaved multi-model query stream on one co-located cluster.

    Parameters mirror :class:`~repro.sim.elasticity.ElasticServingSimulation`; the
    policy must understand a :class:`~repro.sim.cluster.MultiModelClusterView`
    (:class:`~repro.schedulers.kairos_policy.MultiModelKairosPolicy` is the reference
    implementation).  Scripted scale events and controller decisions address model
    partitions via ``ScaleRequest.model_name`` (``None`` is only legal with a single
    registered model).  Like the elastic simulator this driver is one-shot.
    """

    def __init__(
        self,
        cluster: MultiModelCluster,
        policy,
        *,
        controller=None,
        qos_percentile: float = 99.0,
        startup_delay_ms: float = 2_000.0,
        noise: Optional[ServiceNoiseModel] = None,
        rng: RngLike = None,
        warmup_queries: int = 0,
        scripted_events: Sequence[Event] = (),
        faults: Optional[FaultInjector] = None,
        fault_rng: RngLike = None,
        retry: Optional[RetryPolicy] = None,
        admission: Optional[AdmissionController] = None,
        sharded_events: bool = False,
        gray_rng: RngLike = None,
        health: Optional[HealthConfig] = None,
        hedge: Optional[HedgePolicy] = None,
    ):
        check_non_negative(startup_delay_ms, "startup_delay_ms")
        if warmup_queries < 0:
            raise ValueError("warmup_queries must be non-negative")
        if faults is not None and any(p.zombies_per_hour > 0.0 for p in faults):
            # a zombie attempt has no completion event; without a recovery path the
            # query could never settle and conservation would break by construction
            if health is None and (retry is None or retry.response_timeout_ms is None):
                raise ValueError(
                    "zombie hazards need a recovery path: enable health monitoring "
                    "or a retry response timeout"
                )
        self.cluster = cluster
        self.policy = policy
        #: drive the run off per-model sharded event/pending queues; byte-identical
        #: to the single-heap path (see repro.sim.sharding)
        self.sharded_events = bool(sharded_events)
        self.controller = controller
        self.qos_percentile = float(qos_percentile)
        self.startup_delay_ms = float(startup_delay_ms)
        self.noise = noise
        self.rng = ensure_rng(rng)
        self.warmup_queries = int(warmup_queries)
        self.faults = faults
        self._fault_rng = ensure_rng(fault_rng)
        self.retry = retry
        self.admission = admission
        # chaos machinery, mirroring repro.sim.elasticity statement for statement
        self._inflight: Dict[int, List[QueryRecord]] = {}
        self._killed: Set[int] = set()
        self._timed_out: Set[int] = set()
        self._requeued_ids: Set[int] = set()
        self._attempt_failures: Dict[int, int] = {}
        self._outstanding = 0
        self._voided_dispatches = 0
        self._retries = 0
        self.dead_letters: List[DeadLetterEntry] = []
        self.shed_queries: List[ShedEntry] = []
        # gray-failure machinery, mirroring repro.sim.elasticity statement for
        # statement (health scoring, breakers, hedging)
        self.health = health
        self.monitor = ServerHealthMonitor(health) if health is not None else None
        self.hedge = hedge
        self.hedges = HedgeManager(hedge) if hedge is not None else None
        self._gray_rng = ensure_rng(gray_rng)
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._zombie_ids: Set[int] = set()
        self._zombie_attempts: Set[int] = set()
        self._absorbed: Set[int] = set()
        self._hedge_pairs: Dict[int, Tuple[QueryRecord, QueryRecord]] = {}
        self._quarantine_spans: Dict[int, object] = {}
        self._hedge_extra_dispatches = 0
        self.hedges_launched = 0
        self.hedges_cancelled = 0
        self.hedge_wins = 0
        self._track_inflight = (
            faults is not None
            or (retry is not None and retry.response_timeout_ms is not None)
            or health is not None
            or hedge is not None
        )
        self.scripted_events = tuple(scripted_events)
        for event in self.scripted_events:
            if event.kind == EventKind.INSTANCE_FAILED:
                if not isinstance(event.payload, CrashStorm):
                    raise ValueError(
                        "scripted instance failures must carry a CrashStorm payload"
                    )
                if self.faults is None:
                    raise ValueError("scripted crash storms require a FaultInjector")
                continue
            if event.kind not in (EventKind.SCALE_UP, EventKind.SCALE_DOWN):
                raise ValueError("scripted events must be SCALE_UP or SCALE_DOWN")
            if not isinstance(event.payload, ScaleRequest):
                raise ValueError("scripted scale events must carry a ScaleRequest payload")
            self._request_model(event.payload)  # validates the model tag
        self._ran = False

    # -- helpers -----------------------------------------------------------------------
    def _request_model(self, request: ScaleRequest) -> str:
        """Resolve the model a scale request targets (sole-model fallback)."""
        if request.model_name is not None:
            self.cluster.cluster_of(request.model_name)  # raises on unknown model
            return request.model_name
        names = self.cluster.model_names
        if len(names) != 1:
            raise ValueError(
                f"scale request for type {request.type_name!r} carries no model tag "
                f"but {len(names)} models are co-located"
            )
        return names[0]

    def run(self, queries: Sequence[Query]) -> MultiModelSimulationReport:
        """Serve ``queries`` once (one-shot, like the elastic simulator)."""
        if self._ran:
            raise RuntimeError(
                "MultiModelServingSimulation is one-shot: cluster membership and "
                "controller state are consumed by run(); build fresh objects for "
                "another run"
            )
        self._ran = True
        # An empty stream is a valid no-op: zero offered load serves zero queries
        # with empty metrics (scripted provisioning events still apply).
        sole = self.cluster.model_names[0] if len(self.cluster.model_names) == 1 else None
        for q in queries:
            if q.model_name is None and sole is None:
                raise ValueError(
                    f"query {q.query_id} carries no model tag but "
                    f"{len(self.cluster.model_names)} models are co-located"
                )
            if q.model_name is not None and q.model_name not in self.cluster.model_names:
                raise KeyError(
                    f"query {q.query_id} targets unregistered model {q.model_name!r}"
                )
        ordered = sorted(queries, key=lambda q: (q.arrival_time_ms, q.query_id))
        n = len(ordered)
        self._outstanding = n
        self.cluster.reset()
        metrics = MultiModelServingMetrics(
            self.cluster.qos_by_model(), self.qos_percentile
        )
        ledger = InstanceUsageLedger(self.cluster.profiles.catalog)
        for name in self.cluster.model_names:
            for server in self.cluster.cluster_of(name):
                ledger.start(server.server_id, server.instance_type, 0.0, tag=name)
        scale_log: List[ScaleLogEntry] = []
        replans: List = []

        clock = SimulationClock(0.0)
        if self.sharded_events:
            from repro.sim.sharding import (
                ShardedEventQueue,
                ShardedPendingQueue,
                shard_key_by_model,
            )

            events = ShardedEventQueue(shard_key_by_model)
            pending = ShardedPendingQueue()
        else:
            events = EventQueue()
            pending = PendingQueue()
        for q in ordered:
            events.push(Event(q.arrival_time_ms, EventKind.QUERY_ARRIVAL, q))
        events.push_all(self.scripted_events)
        if self.faults is not None and self._outstanding > 0:
            for server in self.cluster:
                self._arm_fault_timers(server.server_id, server.type_name, 0.0, events)
        # Warm-up is per model: each model's online learner has its own cold start, so
        # the first `warmup_queries` arrivals *of each model* are excluded from metrics
        # (with one model this reduces to the single-model prefix rule).
        warmup_ids = set()
        if self.warmup_queries:
            seen: Dict[Optional[str], int] = {}
            for q in ordered:
                count = seen.get(q.model_name, 0)
                if count < self.warmup_queries:
                    warmup_ids.add(q.query_id)
                    seen[q.model_name] = count + 1
        # (model, type) -> reserved ids of instances still booting (see elasticity.py)
        self._booting: Dict[Tuple[str, str], List[int]] = {}
        self._cancelled: set = set()
        dispatched = 0
        rounds = 0
        peak = len(self.cluster)
        view = self.cluster.active_view()
        self.policy.bind(view)
        max_steps = 20 * n + 1000
        steps = 0

        while events:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"simulation exceeded {max_steps} steps; the scheduling policy "
                    f"{type(self.policy).__name__} appears to be making no progress"
                )
            now = clock.advance_to(events.peek_time())
            membership_changed = False
            saw_arrival = False

            batch = events.pop_batch(now)
            while batch:
                for event in batch:
                    kind_changed, kind_arrival = self._handle(
                        event, now, metrics, ledger, scale_log, warmup_ids, events
                    )
                    membership_changed = membership_changed or kind_changed
                    saw_arrival = saw_arrival or kind_arrival
                    if kind_arrival:
                        pending.append(event.payload)
                # Replan before re-popping so the decision's same-instant scale
                # events join the next inner batch instead of stranding past this
                # round (which would re-wake the outer loop at the same `now` for a
                # duplicate scheduling round — see the elastic loop).
                if saw_arrival and self.controller is not None:
                    decision = self.controller.maybe_replan(now)
                    if decision is not None:
                        replans.append(decision)
                        self._emit_scale_events(decision, now, events)
                    saw_arrival = False
                batch = events.pop_batch(now)

            if membership_changed:
                view = self.cluster.active_view()
                if len(view):
                    self.policy.bind(view)
                peak = max(peak, len(self.cluster))

            if pending and len(view):
                admitted = self._admit(pending, now, events)
                if admitted:
                    assignments = self.policy.schedule(now, admitted, view)
                    rounds += 1
                    if assignments:
                        dispatched += self._commit(
                            assignments, pending, view, now, events
                        )

            # Recurring fault timers are not "something to fire" here: once every
            # queued event is a hazard timer, no completion, arrival, boot, or scale
            # action is in flight, so nothing the timers do to an idle fleet can
            # serve a backlog the policy already declined — the run has quiesced
            # exactly like the chaos-free case.  A zombie-held attempt breaks that
            # reasoning: it is in flight with NO completion queued, and its recovery
            # watchdog (health check or response timeout) is itself an idle-kind
            # timer — so the run must stay alive until the watchdog voids the
            # attempt to a terminal outcome.
            if (
                pending
                and not self._zombie_attempts
                and (not events or events.only_kinds(self._idle_timer_kinds()))
            ):
                break

        duration = metrics.makespan_ms() if len(metrics) else clock.now_ms
        horizon = clock.now_ms
        ledger.close_all(horizon)
        return MultiModelSimulationReport(
            metrics=metrics,
            cluster=self.cluster,
            ledger=ledger,
            policy_name=getattr(self.policy, "name", type(self.policy).__name__),
            scheduling_rounds=rounds,
            dispatched_queries=dispatched
            + self._hedge_extra_dispatches
            - self._voided_dispatches,
            total_queries=n,
            simulated_duration_ms=duration,
            billing_horizon_ms=horizon,
            replans=replans,
            scale_log=scale_log,
            peak_instances=peak,
            shed_queries=self.shed_queries,
            dead_letters=self.dead_letters,
            retries=self._retries,
            unserved_queries=len(pending),
            hedges_launched=self.hedges_launched,
            hedges_cancelled=self.hedges_cancelled,
            hedge_wins=self.hedge_wins,
        )

    # -- fault injection (mirrors repro.sim.elasticity) ----------------------------------
    def _arm_fault_timers(
        self, server_id: int, type_name: str, now: float, events: EventQueue
    ) -> None:
        """Draw this instance's crash and first-slowdown delays (zero-hazard: no draw)."""
        if self.faults is None or self._outstanding <= 0:
            return
        delay = self.faults.draw_failure_delay_ms(type_name, self._fault_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.INSTANCE_FAILED, (server_id, type_name))
            )
        delay = self.faults.draw_slowdown_delay_ms(type_name, self._fault_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.SLOWDOWN_BEGIN, (server_id, type_name))
            )
        # gray modes draw from the dedicated gray stream, after the fault-stream
        # draws above, so arming them never perturbs crash/slowdown schedules
        delay = self.faults.draw_degradation_delay_ms(type_name, self._gray_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.DEGRADATION_ONSET, (server_id, type_name))
            )
        delay = self.faults.draw_flaky_delay_ms(type_name, self._gray_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.FLAKY_BEGIN, (server_id, type_name))
            )
        delay = self.faults.draw_zombie_delay_ms(type_name, self._gray_rng)
        if delay is not None:
            events.push(
                Event(now + delay, EventKind.ZOMBIE_ONSET, (server_id, type_name))
            )

    def _idle_timer_kinds(self) -> Set[EventKind]:
        kinds: Set[EventKind] = set()
        if self.faults is not None:
            kinds |= {
                EventKind.INSTANCE_FAILED,
                EventKind.SLOWDOWN_BEGIN,
                EventKind.SLOWDOWN_END,
                EventKind.DEGRADATION_ONSET,
                EventKind.FLAKY_BEGIN,
                EventKind.FLAKY_END,
                EventKind.ZOMBIE_ONSET,
            }
        if self.retry is not None and self.retry.response_timeout_ms is not None:
            kinds.add(EventKind.RESPONSE_TIMEOUT)
        # Health checks and probes must not keep a settled run alive; a probe that is
        # discarded leaves its server quarantined through the horizon, which is the
        # correct billing outcome for capacity parked when the trace ended.
        if self.monitor is not None:
            kinds |= {EventKind.HEALTH_CHECK, EventKind.HEALTH_PROBE}
        if self.hedges is not None:
            kinds.add(EventKind.HEDGE_TIMER)
        return kinds

    def _settle_outstanding(self, events: EventQueue) -> None:
        """One query reached a terminal outcome; at zero, drop lingering timers."""
        self._outstanding -= 1
        if self._outstanding == 0:
            kinds = self._idle_timer_kinds()
            if kinds:
                events.discard(lambda e: e.kind in kinds)

    def _fail_attempt(
        self, query: Query, now: float, reason: str, events: EventQueue
    ) -> None:
        """One dispatch attempt failed: retry with backoff or dead-letter."""
        qid = query.query_id
        failures = self._attempt_failures.get(qid, 0) + 1
        self._attempt_failures[qid] = failures
        if self.retry is not None and failures < self.retry.max_attempts:
            self._requeued_ids.add(qid)
            self._retries += 1
            events.push(
                Event(
                    now + self.retry.backoff_ms(failures), EventKind.QUERY_ARRIVAL, query
                )
            )
        else:
            self.dead_letters.append(DeadLetterEntry(query, now, reason, failures))
            self._settle_outstanding(events)

    def _admit(self, pending: PendingQueue, now: float, events: EventQueue):
        """The admission valve before a scheduling round (identity without a controller)."""
        if self.admission is None:
            return pending
        overflow = self.admission.to_shed(len(pending))
        if overflow > 0:
            for query in select_shed_victims(pending.snapshot(), overflow):
                pending.remove(query.query_id)
                self.shed_queries.append(ShedEntry(query, now))
                self._settle_outstanding(events)
            self.admission.record_shed(overflow)
        limit = self.admission.concurrency_limit
        if len(pending) > limit:
            return list(pending.snapshot()[:limit])
        return pending

    def _handle_instance_failure(
        self,
        payload,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        """Apply one ``INSTANCE_FAILED`` event; returns True when membership changed."""
        if isinstance(payload, CrashStorm):
            victims = [
                s
                for s in self.cluster
                if payload.type_name is None or s.type_name == payload.type_name
            ][: payload.count]
            changed = False
            for server in victims:
                changed = (
                    self._crash_server(server, now, events, ledger, scale_log, payload.reason)
                    or changed
                )
            return changed
        server_id, _type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return False  # already decommissioned or cancelled
        return self._crash_server(server, now, events, ledger, scale_log, "hazard")

    def _crash_server(
        self,
        server,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        reason: str,
    ) -> bool:
        """An unannounced crash: billing stops at the failure instant, work is voided."""
        server_id = server.server_id
        model_name = self.cluster.model_of_server(server_id)
        self.cluster.remove_server(server_id)
        ledger.stop(server_id, now, failed=True)
        scale_log.append(
            ScaleLogEntry(now, "instance_failed", server.type_name, 1, reason)
        )
        if self._outstanding > 0:
            observe = getattr(self.controller, "observe_failure", None)
            if observe is not None:
                observe(server.type_name, now)
                decision = self.controller.maybe_replan(now)
                if decision is not None:
                    self._emit_scale_events(decision, now, events)
            elif self.faults is not None and self.faults.auto_replace:
                events.push(
                    Event(
                        now,
                        EventKind.SCALE_UP,
                        ScaleRequest(
                            server.type_name,
                            1,
                            reason="replace_failed",
                            model_name=model_name,
                        ),
                    )
                )
        voided = self._inflight.pop(server_id, [])
        for record in voided:
            if id(record) in self._zombie_attempts:
                # a zombie attempt has no completion event to void
                self._zombie_attempts.discard(id(record))
            else:
                self._killed.add(id(record))
            self._voided_dispatches += 1
            pair = self._hedge_pairs.pop(record.query.query_id, None)
            if pair is not None:
                # the surviving hedge attempt still serves this query; the crash
                # resolved the race instead of failing the client path
                self.hedges_cancelled += 1
                continue
            self._fail_attempt(record.query, now, "crash", events)
        if voided:
            scale_log.append(
                ScaleLogEntry(now, "void_inflight", server.type_name, len(voided), reason)
            )
        # drop gray-failure state for the dead server
        if self.monitor is not None:
            self.monitor.forget(server_id)
        span = self._quarantine_spans.pop(server_id, None)
        if span is not None:
            span.end_ms = now  # the failed interval takes the whole cost anyway
        self._zombie_ids.discard(server_id)
        self._breakers.pop(server_id, None)
        return True

    def _handle_slowdown_begin(self, payload, now: float, events: EventQueue) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return
        profile = self.faults[type_name]
        until = now + profile.slowdown_duration_ms
        server.begin_slowdown(profile.slowdown_factor, until)
        events.push(Event(until, EventKind.SLOWDOWN_END, (server_id, type_name)))

    def _handle_slowdown_end(self, payload, now: float, events: EventQueue) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return
        server.end_slowdown()
        if self._outstanding > 0:
            delay = self.faults.draw_slowdown_delay_ms(type_name, self._fault_rng)
            if delay is not None:
                events.push(
                    Event(now + delay, EventKind.SLOWDOWN_BEGIN, (server_id, type_name))
                )

    def _handle_response_timeout(
        self, record: QueryRecord, now: float, events: EventQueue
    ) -> None:
        """The response deadline elapsed before the completion: abandon the attempt."""
        inflight = self._inflight.get(record.server_id)
        if inflight is None or record not in inflight:
            return  # completed or crash-voided before the deadline
        inflight.remove(record)
        if not inflight:
            del self._inflight[record.server_id]
        if id(record) in self._zombie_attempts:
            # a zombie attempt has no completion event to swallow
            self._zombie_attempts.discard(id(record))
        else:
            self._timed_out.add(id(record))
        self._voided_dispatches += 1
        pair = self._hedge_pairs.pop(record.query.query_id, None)
        if pair is not None:
            # the partner attempt is still in flight and will serve the query; the
            # timeout resolved the hedge race instead of failing the client path
            self.hedges_cancelled += 1
            return
        self._fail_attempt(record.query, now, "timeout", events)

    # -- gray-failure injection handlers (mirror repro.sim.elasticity) -------------------
    def _handle_degradation_onset(
        self, payload, now: float, scale_log: List[ScaleLogEntry]
    ) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return  # crashed/decommissioned before the onset
        server.begin_degradation(self.faults[type_name].degradation_factor)
        scale_log.append(
            ScaleLogEntry(now, "degradation_onset", type_name, 1, f"server{server_id}")
        )

    def _handle_flaky_begin(self, payload, now: float, events: EventQueue) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return
        profile = self.faults[type_name]
        until = now + profile.flaky_duration_ms
        server.begin_slowdown(profile.flaky_factor, until)
        events.push(Event(until, EventKind.FLAKY_END, (server_id, type_name)))

    def _handle_flaky_end(self, payload, now: float, events: EventQueue) -> None:
        server_id, type_name = payload
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return
        server.end_slowdown()
        if self._outstanding > 0:
            delay = self.faults.draw_flaky_delay_ms(type_name, self._gray_rng)
            if delay is not None:
                events.push(
                    Event(now + delay, EventKind.FLAKY_BEGIN, (server_id, type_name))
                )

    def _handle_zombie_onset(
        self, payload, now: float, scale_log: List[ScaleLogEntry]
    ) -> None:
        server_id, type_name = payload
        try:
            self.cluster.server_by_id(server_id)
        except KeyError:
            return
        self._zombie_ids.add(server_id)
        scale_log.append(
            ScaleLogEntry(now, "zombie_onset", type_name, 1, f"server{server_id}")
        )

    # -- quarantine lifecycle ------------------------------------------------------------
    def _breaker(self, server_id: int) -> CircuitBreaker:
        return self._breakers.setdefault(server_id, CircuitBreaker())

    def _quarantine_pool(self, server) -> List:
        """The liveness guard counts the server's own model partition."""
        model_name = self.cluster.model_of_server(server.server_id)
        return list(self.cluster.cluster_of(model_name))

    def _hedge_targets(self, record: QueryRecord) -> List:
        """Hedge duplicates stay inside the primary server's model partition."""
        model_name = self.cluster.model_of_server(record.server_id)
        return self.cluster.cluster_of(model_name).active_servers()

    def _quarantine_server(
        self,
        server,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        reason: str,
    ) -> bool:
        """Open the server's breaker: isolate, bill, notify, probe later.

        Returns True when membership changed.  The probation-liveness guard
        refuses to quarantine the last accepting server of its model partition —
        a fully quarantined partition could never serve the probe traffic that
        re-admits servers, so one (possibly unhealthy) server always stays
        eligible.
        """
        if server.draining or server.quarantined:
            return False
        accepting = sum(1 for s in self._quarantine_pool(server) if s.accepting)
        if accepting <= 1:
            return False
        server_id = server.server_id
        breaker = self._breaker(server_id)
        breaker.trip(now)
        server.begin_quarantine()
        scale_log.append(
            ScaleLogEntry(
                now, "quarantine", server.type_name, 1, f"server{server_id}:{reason}"
            )
        )
        self._quarantine_spans[server_id] = ledger.record_span(
            server_id, SPAN_QUARANTINE, now
        )
        # stuck zombie attempts can never complete; abandon them now so their
        # queries re-enter the client path (retry/dead-letter) immediately
        stuck = [
            r
            for r in self._inflight.get(server_id, ())
            if id(r) in self._zombie_attempts
        ]
        for record in stuck:
            self._void_stuck_attempt(record, now, events, "quarantine")
        if self._outstanding > 0:
            observe = getattr(self.controller, "observe_quarantine", None)
            if observe is not None:
                observe(server.type_name, now)
                decision = self.controller.maybe_replan(now)
                if decision is not None:
                    self._emit_scale_events(decision, now, events)
        events.push(
            Event(
                now + breaker.probation_delay_ms(self.health),
                EventKind.HEALTH_PROBE,
                (server_id, server.type_name),
            )
        )
        return True

    def _handle_health_probe(
        self,
        payload,
        now: float,
        events: EventQueue,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        """Probation dwell elapsed: breaker half-open, server re-admitted on trial."""
        server_id, type_name = payload
        breaker = self._breakers.get(server_id)
        if breaker is None or breaker.state != BREAKER_OPEN:
            return False
        try:
            server = self.cluster.server_by_id(server_id)
        except KeyError:
            return False  # crashed/decommissioned while quarantined
        if not server.quarantined:
            return False
        breaker.half_open()
        server.end_quarantine()
        span = self._quarantine_spans.pop(server_id, None)
        if span is not None:
            span.end_ms = now
        if self.monitor is not None:
            # fresh trial: old degraded samples must not instantly re-trip
            self.monitor.reset_server(server_id)
        scale_log.append(
            ScaleLogEntry(now, "probation", type_name, 1, f"server{server_id}")
        )
        if self._outstanding > 0:
            observe = getattr(self.controller, "observe_readmit", None)
            if observe is not None:
                observe(type_name, now)
                decision = self.controller.maybe_replan(now)
                if decision is not None:
                    self._emit_scale_events(decision, now, events)
        return True

    def _void_stuck_attempt(
        self, record: QueryRecord, now: float, events: EventQueue, reason: str
    ) -> None:
        """Abandon an attempt that can never complete (zombie-stuck or overdue)."""
        inflight = self._inflight.get(record.server_id)
        if inflight is not None and record in inflight:
            inflight.remove(record)
            if not inflight:
                del self._inflight[record.server_id]
        self._voided_dispatches += 1
        if id(record) in self._zombie_attempts:
            self._zombie_attempts.discard(id(record))
        else:
            self._absorbed.add(id(record))
        pair = self._hedge_pairs.pop(record.query.query_id, None)
        if pair is not None:
            # the partner attempt still serves the query
            self.hedges_cancelled += 1
            return
        self._fail_attempt(record.query, now, reason, events)

    def _handle_health_check(
        self,
        payload,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        """An attempt's expected completion is overdue: accrue suspicion, isolate."""
        record, expected_ms = payload
        if self.monitor is None:
            return False
        inflight = self._inflight.get(record.server_id)
        if inflight is None or record not in inflight:
            return False  # resolved before the check fired
        overdue = now - record.completion_ms
        self.monitor.record_overdue(record.server_id, overdue, expected_ms)
        changed = False
        if self.monitor.is_suspect(record.server_id):
            try:
                server = self.cluster.server_by_id(record.server_id)
            except KeyError:
                server = None
            if server is not None:
                changed = self._quarantine_server(
                    server, now, events, ledger, scale_log, "suspect"
                )
        still = self._inflight.get(record.server_id)
        if still is not None and record in still:
            self._void_stuck_attempt(record, now, events, "overdue")
        return changed

    # -- hedged dispatch -----------------------------------------------------------------
    def _arm_watchdogs(
        self, record: QueryRecord, now: float, completion: float, events: EventQueue
    ) -> None:
        """Arm the overdue health check and (maybe) the hedge timer for one dispatch."""
        if self.monitor is not None:
            expected = max(completion - now, 1e-6)
            events.push(
                Event(
                    now + self.health.overdue_grace_factor * expected,
                    EventKind.HEALTH_CHECK,
                    (record, expected),
                )
            )
        if self.hedges is not None and record.query.query_id not in self._hedge_pairs:
            delay = self.hedges.hedge_delay_ms(record.server_type)
            if delay is not None and (
                id(record) in self._zombie_attempts or completion - now > delay
            ):
                events.push(Event(now + delay, EventKind.HEDGE_TIMER, record))

    def _handle_hedge_timer(
        self, record: QueryRecord, now: float, events: EventQueue
    ) -> None:
        """The attempt outlived its hedge delay: duplicate onto the best idle server."""
        inflight = self._inflight.get(record.server_id)
        if inflight is None or record not in inflight:
            return  # resolved before the timer fired
        qid = record.query.query_id
        if qid in self._hedge_pairs:
            return  # already hedged once
        candidates = [
            s
            for s in self._hedge_targets(record)
            if s.accepting and s.is_idle(now) and s.server_id != record.server_id
        ]
        if not candidates:
            return  # no eligible idle capacity; the primary keeps its chance
        best = min(
            candidates,
            key=lambda s: (s.profile.latency_ms(record.query.batch_size), s.server_id),
        )
        start, completion, service = best.dispatch(
            record.query, now, noise=self.noise, rng=self.rng
        )
        duplicate = QueryRecord(
            query=record.query,
            server_id=best.server_id,
            server_type=best.type_name,
            start_ms=start,
            completion_ms=completion,
            service_ms=service,
        )
        if self._track_inflight:
            self._inflight.setdefault(duplicate.server_id, []).append(duplicate)
        self._hedge_extra_dispatches += 1
        self.hedges_launched += 1
        self._hedge_pairs[qid] = (record, duplicate)
        if best.server_id in self._zombie_ids:
            self._zombie_attempts.add(id(duplicate))
        else:
            events.push(Event(completion, EventKind.SERVICE_COMPLETION, duplicate))
        timeout = self.retry.response_timeout_ms if self.retry is not None else None
        if timeout is not None and (
            best.server_id in self._zombie_ids or completion - now > timeout
        ):
            # the duplicate needs its own recovery path: without it, a hedge
            # landing on a zombie under timeout-only recovery strands the query
            events.push(Event(now + timeout, EventKind.RESPONSE_TIMEOUT, duplicate))
        if self.monitor is not None:
            expected = max(completion - now, 1e-6)
            events.push(
                Event(
                    now + self.health.overdue_grace_factor * expected,
                    EventKind.HEALTH_CHECK,
                    (duplicate, expected),
                )
            )

    def _cancel_hedge_loser(
        self, loser: QueryRecord, now: float, ledger: InstanceUsageLedger
    ) -> None:
        """First completion won the race: cancel the loser, bill its partial work."""
        inflight = self._inflight.get(loser.server_id)
        if inflight is not None and loser in inflight:
            inflight.remove(loser)
            if not inflight:
                del self._inflight[loser.server_id]
        self._voided_dispatches += 1
        self.hedges_cancelled += 1
        if id(loser) in self._zombie_attempts:
            self._zombie_attempts.discard(id(loser))
        else:
            self._absorbed.add(id(loser))
        # partial work: the loser occupied its server from service start (if it
        # started at all) until the cancellation instant
        span_start = min(loser.start_ms, now)
        if now > span_start:
            ledger.record_span(loser.server_id, SPAN_HEDGE, span_start, now)

    def _observe_health(
        self,
        record: QueryRecord,
        server,
        now: float,
        events: EventQueue,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
    ) -> bool:
        """Feed one genuine completion to the hedge/health layers; maybe quarantine."""
        if self.hedges is not None:
            self.hedges.observe(record.server_type, record.service_ms)
        if self.monitor is None:
            return False
        server_id = server.server_id
        breaker = self._breakers.get(server_id)
        if breaker is not None and breaker.state == BREAKER_OPEN:
            # in-flight work finishing behind an open breaker: not probe traffic,
            # and degraded-period samples must not poison the fresh trial
            return False
        if breaker is not None and breaker.state == BREAKER_HALF_OPEN:
            ratio = self.monitor.sample_ratio(
                record.server_type, record.service_ms, record.query.batch_size
            )
            self.monitor.observe_completion(
                server_id, record.server_type, record.service_ms, record.query.batch_size
            )
            if ratio >= self.health.degrade_ratio:
                return self._quarantine_server(
                    server, now, events, ledger, scale_log, "probe_failed"
                )
            breaker.probes_ok += 1
            if breaker.probes_ok >= self.health.probe_successes:
                breaker.close()
                scale_log.append(
                    ScaleLogEntry(
                        now, "breaker_close", record.server_type, 1, f"server{server_id}"
                    )
                )
            return False
        self.monitor.observe_completion(
            server_id, record.server_type, record.service_ms, record.query.batch_size
        )
        if server.accepting and self.monitor.is_degraded(server_id, record.server_type):
            return self._quarantine_server(
                server, now, events, ledger, scale_log, "degraded"
            )
        return False

    # -- event handling -----------------------------------------------------------------
    def _handle(
        self,
        event: Event,
        now: float,
        metrics: MultiModelServingMetrics,
        ledger: InstanceUsageLedger,
        scale_log: List[ScaleLogEntry],
        warmup_ids,
        events: EventQueue,
    ) -> Tuple[bool, bool]:
        """Apply one event; returns ``(membership_changed, was_arrival)``."""
        if event.kind == EventKind.SERVICE_COMPLETION:
            record: QueryRecord = event.payload
            if id(record) in self._killed:
                # the server died mid-service; the attempt was voided and this
                # completion never happened
                self._killed.discard(id(record))
                return False, False
            timed_out = id(record) in self._timed_out
            absorbed = id(record) in self._absorbed
            # a swallowed completion drains the server's local queue (the GPU
            # finished the work) but the client path already moved on — timeout
            # abandonments and cancelled hedge/stuck attempts alike
            swallowed = timed_out or absorbed
            if swallowed:
                self._timed_out.discard(id(record))
                self._absorbed.discard(id(record))
                try:
                    self.cluster.server_by_id(record.server_id)
                except KeyError:
                    # The abandoned attempt's server crashed after the timeout
                    # (the crash could not void the record: the timeout had
                    # already pulled it out of the in-flight set), so this
                    # phantom completion has no server left to account against.
                    return False, False
            else:
                inflight = self._inflight.get(record.server_id)
                if inflight is not None:
                    inflight.remove(record)
                    if not inflight:
                        del self._inflight[record.server_id]
                self._settle_outstanding(events)
            server = self.cluster.server_by_id(record.server_id)
            server.complete_one()
            health_changed = False
            if not swallowed:
                pair = self._hedge_pairs.pop(record.query.query_id, None)
                if pair is not None:
                    # first genuine completion wins the race; the partner is
                    # cancelled and its partial occupancy billed as hedge cost
                    primary, duplicate = pair
                    if record is duplicate:
                        self.hedge_wins += 1
                        self._cancel_hedge_loser(primary, now, ledger)
                    else:
                        self._cancel_hedge_loser(duplicate, now, ledger)
                if record.query.query_id not in warmup_ids:
                    metrics.record(record)
                    if self.admission is not None:
                        self.admission.observe_latency(record.latency_ms)
                self.policy.observe_completion(record)
                health_changed = self._observe_health(
                    record, server, now, events, ledger, scale_log
                )
            if server.drained:
                self.cluster.remove_server(server.server_id)
                ledger.stop(server.server_id, now)
                scale_log.append(
                    ScaleLogEntry(now, "decommission", server.type_name, 1)
                )
                return True, False
            return health_changed, False

        if event.kind == EventKind.QUERY_ARRIVAL:
            query: Query = event.payload
            if query.query_id in self._requeued_ids:
                # a retry-backoff re-queue, not fresh offered load: it joins the
                # pending queue but must not inflate the controller's arrival-rate
                # estimate
                self._requeued_ids.discard(query.query_id)
                return False, True
            if self.controller is not None:
                self.controller.observe_arrival(query, now)
            return False, True

        if event.kind == EventKind.INSTANCE_FAILED:
            return (
                self._handle_instance_failure(event.payload, now, events, ledger, scale_log),
                False,
            )

        if event.kind == EventKind.SLOWDOWN_BEGIN:
            self._handle_slowdown_begin(event.payload, now, events)
            return False, False

        if event.kind == EventKind.SLOWDOWN_END:
            self._handle_slowdown_end(event.payload, now, events)
            return False, False

        if event.kind == EventKind.RESPONSE_TIMEOUT:
            self._handle_response_timeout(event.payload, now, events)
            return False, False

        if event.kind == EventKind.DEGRADATION_ONSET:
            self._handle_degradation_onset(event.payload, now, scale_log)
            return False, False

        if event.kind == EventKind.FLAKY_BEGIN:
            self._handle_flaky_begin(event.payload, now, events)
            return False, False

        if event.kind == EventKind.FLAKY_END:
            self._handle_flaky_end(event.payload, now, events)
            return False, False

        if event.kind == EventKind.ZOMBIE_ONSET:
            self._handle_zombie_onset(event.payload, now, scale_log)
            return False, False

        if event.kind == EventKind.HEALTH_CHECK:
            return (
                self._handle_health_check(event.payload, now, events, ledger, scale_log),
                False,
            )

        if event.kind == EventKind.HEALTH_PROBE:
            return (
                self._handle_health_probe(event.payload, now, events, scale_log),
                False,
            )

        if event.kind == EventKind.HEDGE_TIMER:
            self._handle_hedge_timer(event.payload, now, events)
            return False, False

        if event.kind == EventKind.SCALE_UP:
            request: ScaleRequest = event.payload
            model_name = self._request_model(request)
            itype = self.cluster.profiles.catalog[request.type_name]
            for _ in range(request.count):
                server_id = self.cluster.reserve_server_id(model_name)
                ledger.start(server_id, itype, now, tag=model_name)
                self._booting.setdefault((model_name, request.type_name), []).append(
                    server_id
                )
                events.push(
                    Event(
                        now + self.startup_delay_ms,
                        EventKind.INSTANCE_READY,
                        (server_id, request.type_name, model_name),
                    )
                )
            scale_log.append(
                ScaleLogEntry(
                    now,
                    "scale_up",
                    request.type_name,
                    request.count,
                    self._reason(request, model_name),
                )
            )
            return False, False

        if event.kind == EventKind.SCALE_DOWN:
            request = event.payload
            model_name = self._request_model(request)
            self.cluster.profiles.catalog[request.type_name]  # raises on unknown type
            remaining = request.count
            booting = self._booting.get((model_name, request.type_name), [])
            while remaining > 0 and booting:
                server_id = booting.pop()
                self._cancelled.add(server_id)
                ledger.stop(server_id, now)
                scale_log.append(
                    ScaleLogEntry(
                        now,
                        "cancel_startup",
                        request.type_name,
                        1,
                        self._reason(request, model_name),
                    )
                )
                remaining -= 1
            victims = (
                self.cluster.drain_servers(model_name, request.type_name, remaining, now)
                if remaining > 0
                else []
            )
            changed = False
            for server in victims:
                if server.drained:
                    self.cluster.remove_server(server.server_id)
                    ledger.stop(server.server_id, now)
                    scale_log.append(
                        ScaleLogEntry(now, "decommission", server.type_name, 1)
                    )
                changed = True
            scale_log.append(
                ScaleLogEntry(
                    now,
                    "scale_down",
                    request.type_name,
                    len(victims),
                    self._reason(request, model_name),
                )
            )
            return changed, False

        if event.kind == EventKind.INSTANCE_READY:
            server_id, type_name, model_name = event.payload
            if server_id in self._cancelled:
                self._cancelled.discard(server_id)
                return False, False
            booting = self._booting.get((model_name, type_name), [])
            if server_id in booting:
                booting.remove(server_id)
            self.cluster.add_server(
                model_name, type_name, now_ms=now, server_id=server_id
            )
            scale_log.append(
                ScaleLogEntry(now, "instance_ready", type_name, 1, model_name)
            )
            self._arm_fault_timers(server_id, type_name, now, events)
            return True, False

        return False, False  # CONTROL and future kinds: no-op

    @staticmethod
    def _reason(request: ScaleRequest, model_name: str) -> str:
        return f"{request.reason}:{model_name}" if request.reason else model_name

    def _emit_scale_events(self, decision, now: float, events: EventQueue) -> None:
        """Turn a joint re-plan into per-(model, type) provisioning events.

        Scale-ups go out in model/catalog order; scale-downs across all shrinking
        (model, type) pairs are ordered by drain cost-efficiency (most $/hr freed per
        unit of lost QoS-feasible capacity first), generalizing the single-model rule.
        """
        shrinking: List[Tuple[float, int, str, str, int]] = []
        for order, (model_name, deltas) in enumerate(decision.scale_deltas.items()):
            for type_name, delta in deltas.items():
                if delta > 0:
                    events.push(
                        Event(
                            now,
                            EventKind.SCALE_UP,
                            ScaleRequest(
                                type_name, delta, reason="replan", model_name=model_name
                            ),
                        )
                    )
                elif delta < 0:
                    score = drain_cost_efficiency(
                        self.cluster.profiles,
                        self.cluster.cluster_of(model_name).model,
                        type_name,
                    )
                    tie = self.cluster.profiles.catalog.index_of(type_name)
                    shrinking.append((-score, order, tie, type_name, model_name, -delta))
        for _, _, _, type_name, model_name, count in sorted(
            shrinking, key=lambda item: item[:3]
        ):
            events.push(
                Event(
                    now,
                    EventKind.SCALE_DOWN,
                    ScaleRequest(
                        type_name, count, reason="replan", model_name=model_name
                    ),
                )
            )

    def _commit(
        self,
        assignments,
        pending: PendingQueue,
        view: MultiModelClusterView,
        now: float,
        events: EventQueue,
    ) -> int:
        count = 0
        server_models = view.server_models()
        for query, server_idx in assignments:
            if query.query_id not in pending:
                raise ValueError(
                    f"policy assigned query {query.query_id}, which is not pending"
                )
            if not 0 <= server_idx < len(view):
                raise ValueError(f"policy assigned an unknown server index {server_idx}")
            if query.model_name is not None and server_models[server_idx] != query.model_name:
                raise ValueError(
                    f"policy assigned query {query.query_id} ({query.model_name}) to a "
                    f"server hosting {server_models[server_idx]}"
                )
            pending.remove(query.query_id)
            server = view[server_idx]
            start, completion, service = server.dispatch(
                query, now, noise=self.noise, rng=self.rng
            )
            record = QueryRecord(
                query=query,
                server_id=server.server_id,
                server_type=server.type_name,
                start_ms=start,
                completion_ms=completion,
                service_ms=service,
            )
            if self._track_inflight:
                self._inflight.setdefault(record.server_id, []).append(record)
            zombie = server.server_id in self._zombie_ids
            if zombie:
                # a zombie accepts the dispatch but never emits its completion:
                # the attempt resolves only through a watchdog (health check,
                # response timeout, quarantine void, or a winning hedge partner)
                self._zombie_attempts.add(id(record))
            else:
                events.push(Event(completion, EventKind.SERVICE_COMPLETION, record))
            timeout = self.retry.response_timeout_ms if self.retry is not None else None
            if timeout is not None and (zombie or completion - now > timeout):
                # the deadline will elapse strictly before the completion: arm the
                # abandon timer (never armed when the attempt will make it in time;
                # a zombie attempt never makes it, so it is always armed)
                events.push(Event(now + timeout, EventKind.RESPONSE_TIMEOUT, record))
            if self.monitor is not None or self.hedges is not None:
                self._arm_watchdogs(record, now, completion, events)
            count += 1
        return count


def simulate_multi_model_serving(
    cluster: MultiModelCluster,
    policy,
    queries: Sequence[Query],
    *,
    controller=None,
    **kwargs,
) -> MultiModelSimulationReport:
    """Convenience wrapper mirroring :func:`~repro.sim.elasticity.simulate_elastic_serving`."""
    sim = MultiModelServingSimulation(cluster, policy, controller=controller, **kwargs)
    return sim.run(queries)
