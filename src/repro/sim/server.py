"""Simulated inference server instances.

Each allocated cloud instance hosts one copy of the model and serves exactly one query
(one batch) at a time, as in the paper's Triton-style implementation (Sec. 6).  Queries
dispatched to a busy server queue locally in FIFO order; the server's ``busy_until``
timestamp therefore accumulates the backlog.  True service latencies come from the
model/instance latency profile, optionally perturbed by a service-time noise model to
emulate cloud performance variability (Fig. 16b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.cloud.instances import InstanceType
from repro.cloud.profiles import LatencyProfile
from repro.workload.query import Query

#: Optional callable perturbing a true latency: (latency_ms, rng) -> perturbed latency.
ServiceNoiseModel = Callable[[float, np.random.Generator], float]


@dataclass(slots=True)
class ServerInstance:
    """One allocated cloud instance running one model copy.

    Attributes
    ----------
    server_id:
        Index of the server within its cluster.
    instance_type:
        The cloud VM type backing this server.
    profile:
        True latency profile of the served model on this instance type.
    busy_until_ms:
        Simulated time at which the server's local queue drains (<= now means idle).
    """

    server_id: int
    instance_type: InstanceType
    profile: LatencyProfile
    busy_until_ms: float = 0.0
    dispatch_overhead_ms: float = 0.0

    # elasticity lifecycle
    draining: bool = False
    commissioned_at_ms: float = 0.0

    # transient fault-injected slowdown: while ``now < slowdown_until_ms`` every
    # dispatched query's true service latency is multiplied by ``slowdown_factor``
    # (>= 1), modelling a degraded instance (thermal throttling, noisy neighbour).
    slowdown_factor: float = 1.0
    slowdown_until_ms: float = 0.0
    # permanent gray degradation: a second, window-less multiplier (>= 1) that
    # compounds multiplicatively with any active transient window above.  Within
    # the *transient* mechanism overlapping windows replace each other (see
    # begin_slowdown); across the two mechanisms the factors compound.
    degraded_factor: float = 1.0
    # gray-failure quarantine: an open circuit breaker parked the server.  A
    # quarantined server keeps its local queue (in-flight work may still finish)
    # but is excluded from every active view, so no loop's cost matrix can match
    # new work onto it until a probation probe re-admits it.
    quarantined: bool = False

    # accounting
    queries_served: int = 0
    busy_time_ms: float = 0.0
    local_queue_depth: int = 0
    #: Monotone change counter: bumped by every mutation that can affect a scheduling
    #: round's view of the server (dispatch, completion, draining, reset).  The
    #: incremental cost-matrix path re-reads only servers whose version moved since
    #: the previous round.
    state_version: int = 0
    _service_log: List[float] = field(default_factory=list, repr=False)

    # -- state queries -----------------------------------------------------------------
    def is_idle(self, now_ms: float) -> bool:
        """True when the server has no running or locally queued query at ``now_ms``."""
        return self.busy_until_ms <= now_ms + 1e-9

    @property
    def accepting(self) -> bool:
        """True when the server may receive new dispatches (not draining or quarantined)."""
        return not self.draining and not self.quarantined

    def start_draining(self) -> None:
        """Stop accepting new work; in-flight and locally queued queries still finish."""
        self.draining = True
        self.state_version += 1

    @property
    def drained(self) -> bool:
        """True when a draining server has emptied its local queue and can be removed."""
        return self.draining and self.local_queue_depth == 0

    def remaining_busy_ms(self, now_ms: float) -> float:
        """Time until the server's local queue drains (0 when idle)."""
        return max(0.0, self.busy_until_ms - now_ms)

    def earliest_start_ms(self, now_ms: float) -> float:
        """Earliest time a newly dispatched query could start service."""
        return max(now_ms, self.busy_until_ms)

    # -- service -------------------------------------------------------------------------
    def true_service_latency_ms(
        self,
        query: Query,
        *,
        noise: Optional[ServiceNoiseModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Ground-truth service latency of ``query`` on this server."""
        latency = float(self.profile.latency_ms(query.batch_size))
        if noise is not None:
            if rng is None:
                raise ValueError("a noise model requires an rng")
            latency = max(1e-6, float(noise(latency, rng)))
        return latency

    def dispatch(
        self,
        query: Query,
        now_ms: float,
        *,
        noise: Optional[ServiceNoiseModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> tuple:
        """Commit ``query`` to this server; returns ``(start_ms, completion_ms, service_ms)``.

        The query starts when the local queue drains and occupies the server for its
        true service latency plus the configured dispatch overhead (modelling the
        controller-to-server RPC).
        """
        if self.draining:
            raise RuntimeError(
                f"cannot dispatch query {query.query_id} to draining server {self.server_id}"
            )
        start = self.earliest_start_ms(now_ms) + self.dispatch_overhead_ms
        service = self.true_service_latency_ms(query, noise=noise, rng=rng)
        if self.slowdown_factor != 1.0 and start < self.slowdown_until_ms:
            service *= self.slowdown_factor
        if self.degraded_factor != 1.0:
            service *= self.degraded_factor
        completion = start + service
        self.busy_until_ms = completion
        self.queries_served += 1
        self.busy_time_ms += service
        self.local_queue_depth += 1
        self.state_version += 1
        self._service_log.append(service)
        return start, completion, service

    def begin_slowdown(self, factor: float, until_ms: float) -> None:
        """Enter a transient degraded mode: service latencies scale by ``factor``.

        Overlapping transient windows **replace** each other: a second
        ``begin_slowdown`` before the first window elapses installs the new
        ``(factor, until_ms)`` pair outright — factors never compound within the
        transient mechanism, and the new window may lengthen *or shorten* the
        remaining degradation.  (Permanent gray degradation lives in
        :attr:`degraded_factor` and compounds multiplicatively with whatever
        transient window is active; see :meth:`begin_degradation`.)
        """
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        self.slowdown_factor = factor
        self.slowdown_until_ms = until_ms
        self.state_version += 1

    def end_slowdown(self) -> None:
        """Leave degraded mode (no-op if never slowed)."""
        if self.slowdown_factor == 1.0 and self.slowdown_until_ms == 0.0:
            return
        self.slowdown_factor = 1.0
        self.slowdown_until_ms = 0.0
        self.state_version += 1

    def begin_degradation(self, factor: float) -> None:
        """Enter *permanent* gray degradation: all future service scales by ``factor``.

        Unlike transient windows this never expires and repeated onsets compound
        multiplicatively (each onset is an independent physical degradation).
        """
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor}")
        self.degraded_factor *= factor
        self.state_version += 1

    def begin_quarantine(self) -> None:
        """Park the server behind an open circuit breaker (stops new dispatches)."""
        self.quarantined = True
        self.state_version += 1

    def end_quarantine(self) -> None:
        """Re-admit the server (breaker half-open/closed); no-op when not quarantined."""
        if not self.quarantined:
            return
        self.quarantined = False
        self.state_version += 1

    def complete_one(self) -> None:
        """Acknowledge that one dispatched query finished (pops the local queue)."""
        if self.local_queue_depth <= 0:
            raise RuntimeError("completion acknowledged on a server with an empty local queue")
        self.local_queue_depth -= 1
        self.state_version += 1

    def utilization(self, horizon_ms: float) -> float:
        """Fraction of ``[0, horizon_ms]`` the server spent serving queries."""
        if horizon_ms <= 0:
            return 0.0
        return min(1.0, self.busy_time_ms / horizon_ms)

    def reset(self) -> None:
        """Clear all dynamic state (used when reusing a cluster across runs)."""
        self.busy_until_ms = 0.0
        self.draining = False
        self.commissioned_at_ms = 0.0
        self.slowdown_factor = 1.0
        self.slowdown_until_ms = 0.0
        self.degraded_factor = 1.0
        self.quarantined = False
        self.queries_served = 0
        self.busy_time_ms = 0.0
        self.local_queue_depth = 0
        self.state_version += 1
        self._service_log.clear()

    @property
    def type_name(self) -> str:
        return self.instance_type.name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Server{self.server_id}[{self.instance_type.name}]"
