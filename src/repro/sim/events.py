"""Simulation events.

The serving simulation needs only two event kinds: a query arriving at the central
controller and a server finishing its current query.  Events are ordered by time, then
by a kind-based priority (completions before arrivals at the same instant, so a freed
server is visible to the scheduling round triggered by a simultaneous arrival), then by
insertion order for determinism.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.IntEnum):
    """Event kinds; the integer value doubles as the tie-break priority (lower first)."""

    SERVICE_COMPLETION = 0
    QUERY_ARRIVAL = 1
    CONTROL = 2


@dataclass(frozen=True)
class Event:
    """A timestamped simulation event.

    Attributes
    ----------
    time_ms:
        Simulated time at which the event fires.
    kind:
        One of :class:`EventKind`.
    payload:
        Event-specific data (a query for arrivals, a server id for completions).
    """

    time_ms: float
    kind: EventKind
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError(f"event time must be non-negative, got {self.time_ms}")

    def sort_key(self, sequence: int) -> tuple:
        """Heap ordering key; ``sequence`` breaks remaining ties deterministically."""
        return (self.time_ms, int(self.kind), sequence)
