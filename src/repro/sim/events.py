"""Simulation events.

The serving simulation needs two core event kinds: a query arriving at the central
controller and a server finishing its current query.  Events are ordered by time, then
by a kind-based priority (completions before arrivals at the same instant, so a freed
server is visible to the scheduling round triggered by a simultaneous arrival), then by
insertion order for determinism.

The elasticity subsystem adds provisioning events that flow through the same queue
under the same ordering contract: ``SCALE_UP`` / ``SCALE_DOWN`` carry a
:class:`ScaleRequest`, and ``INSTANCE_READY`` fires when a newly provisioned instance
finishes booting and becomes schedulable.  Their priorities deliberately sort *after*
completions and arrivals so the state mutation order within a timestamp stays exactly
what the pre-elasticity simulator produced (seed stability), while the elastic driver
runs its scheduling round only after the whole timestamp batch is drained, so new
capacity is still visible to simultaneous work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.IntEnum):
    """Event kinds; the integer value doubles as the tie-break priority (lower first)."""

    SERVICE_COMPLETION = 0
    QUERY_ARRIVAL = 1
    CONTROL = 2
    SCALE_UP = 3
    SCALE_DOWN = 4
    INSTANCE_READY = 5
    #: Spot-market reclaim notice: the instance enters deadline-bounded draining and a
    #: ``PREEMPTED`` kill follows after the market's warning window.  Both sort after
    #: every pre-existing kind at equal timestamps, so enabling the spot subsystem
    #: cannot reorder the state mutations of a spot-free run (seed stability).
    PREEMPTION_WARNING = 6
    PREEMPTED = 7
    #: Fault-injection kinds (chaos subsystem).  All sort after every pre-existing
    #: kind at equal timestamps so enabling fault injection cannot reorder the state
    #: mutations of a fault-free run (seed stability).  ``INSTANCE_FAILED`` is an
    #: *unannounced* crash — no warning window, in-flight work voided; its payload is
    #: either a ``(server_id, type_name)`` pair (hazard-drawn) or a :class:`CrashStorm`
    #: (scripted correlated outage).  ``SLOWDOWN_BEGIN`` / ``SLOWDOWN_END`` bound a
    #: transient degradation of one server's effective latency profile.
    #: ``RESPONSE_TIMEOUT`` fires when a dispatched query's response deadline elapses
    #: before its completion; the payload is the in-flight dispatch record.
    INSTANCE_FAILED = 8
    SLOWDOWN_BEGIN = 9
    SLOWDOWN_END = 10
    RESPONSE_TIMEOUT = 11
    #: Gray-failure kinds (health subsystem).  All sort after every pre-existing
    #: kind at equal timestamps so enabling gray injection or health monitoring
    #: cannot reorder the state mutations of a gray-free run (seed stability).
    #: ``DEGRADATION_ONSET`` permanently degrades one server's service latency
    #: (slowdown with no recovery); ``FLAKY_BEGIN``/``FLAKY_END`` bound one window
    #: of an intermittent latency flap (recurring, like the transient slowdowns);
    #: ``ZOMBIE_ONSET`` turns a server into a zombie that accepts dispatches but
    #: never emits completions.  Payloads are ``(server_id, type_name)`` pairs.
    #: ``HEALTH_CHECK`` fires when a dispatched attempt's expected completion is
    #: overdue (payload: the in-flight dispatch record) and feeds the suspicion
    #: score; ``HEALTH_PROBE`` ends a quarantined server's dwell and moves its
    #: breaker to half-open (payload: ``(server_id, type_name)``).
    #: ``HEDGE_TIMER`` fires when an attempt has outlived the per-type hedge
    #: delay (payload: the in-flight dispatch record).
    DEGRADATION_ONSET = 12
    FLAKY_BEGIN = 13
    FLAKY_END = 14
    ZOMBIE_ONSET = 15
    HEALTH_CHECK = 16
    HEALTH_PROBE = 17
    HEDGE_TIMER = 18


@dataclass(frozen=True)
class ScaleRequest:
    """Payload of a ``SCALE_UP`` / ``SCALE_DOWN`` event: how many instances of a type.

    Attributes
    ----------
    type_name:
        Instance-type name in the cluster's catalog.
    count:
        Number of instances to add (scale-up) or drain (scale-down); always positive.
    reason:
        Free-form provenance tag (e.g. ``"replan"``) kept for reports.
    model_name:
        The co-located model whose partition the request targets.  ``None`` (the
        default) addresses the single model of a classic elastic cluster.
    """

    type_name: str
    count: int
    reason: str = ""
    model_name: Optional[str] = None
    #: Purchase market of the requested instances: ``"on-demand"`` (default) or
    #: ``"spot"`` — a spot scale-up bills at the market's discounted rate and arms the
    #: instance's preemption process once it becomes ready.
    market: str = "on-demand"

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"scale request count must be positive, got {self.count}")
        if not self.market:
            raise ValueError("scale request market must be non-empty")


@dataclass(frozen=True)
class PreemptionBurst:
    """Payload of a scripted ``PREEMPTION_WARNING``: reclaim several spot instances.

    Models a correlated capacity reclaim (the provider taking back a tranche of spot
    capacity at once).  ``count`` active spot instances are warned simultaneously —
    victims chosen in the same cost-aware order as
    :func:`~repro.sim.elasticity.select_drain_victims` — restricted to ``type_name``
    when given, across all spot types otherwise.
    """

    count: int
    type_name: Optional[str] = None
    reason: str = "forced"

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"preemption burst count must be positive, got {self.count}")


@dataclass(frozen=True)
class CrashStorm:
    """Payload of a scripted ``INSTANCE_FAILED``: crash several instances at once.

    The unannounced analogue of :class:`PreemptionBurst` — models a correlated
    infrastructure outage (rack power loss, AZ failure).  ``count`` active instances
    crash simultaneously with no warning window and their in-flight work voided,
    restricted to ``type_name`` when given, across all types otherwise.
    """

    count: int
    type_name: Optional[str] = None
    reason: str = "storm"

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"crash storm count must be positive, got {self.count}")


@dataclass(frozen=True, slots=True)
class Event:
    """A timestamped simulation event.

    Attributes
    ----------
    time_ms:
        Simulated time at which the event fires.
    kind:
        One of :class:`EventKind`.
    payload:
        Event-specific data (a query for arrivals, a server id for completions).
    """

    time_ms: float
    kind: EventKind
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError(f"event time must be non-negative, got {self.time_ms}")

    def sort_key(self, sequence: int) -> tuple:
        """Heap ordering key; ``sequence`` breaks remaining ties deterministically."""
        return (self.time_ms, int(self.kind), sequence)
