"""A cluster of simulated inference servers built from a heterogeneous configuration.

Clusters start static (one server per allocated instance, ids equal to list indices)
but support elastic membership for the online-elasticity subsystem: servers can be
added after a provisioning delay (``add_server``), put into draining
(``drain_servers``), and removed once drained (``remove_server``).  Because scheduling
policies address servers by *index within the object they are handed*, elastic runs
hand policies a :class:`ClusterView` of the currently schedulable servers instead of
the raw (mutating) cluster.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import InstanceType
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry
from repro.sim.server import ServerInstance
from repro.utils.validation import check_non_negative


class ServerIdAllocator:
    """Monotone server-id source; ids are never reused.

    A standalone :class:`Cluster` owns a private allocator (ids 0, 1, 2, ... exactly as
    before), while the model partitions of a :class:`MultiModelCluster` share one, so
    server ids — and therefore billing-ledger keys and completion-event routing — stay
    globally unique across co-located models.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("server ids must be non-negative")
        self._next = int(start)

    def reserve(self) -> int:
        server_id = self._next
        self._next += 1
        return server_id


class Cluster:
    """All servers allocated for one model under one heterogeneous configuration.

    Server ids are assigned in catalog order (all base-type servers first), matching the
    paper's ``(base, aux1, aux2, ...)`` configuration notation.
    """

    def __init__(
        self,
        config: HeterogeneousConfig,
        model: MLModel,
        profiles: ProfileRegistry,
        *,
        dispatch_overhead_ms: float = 0.0,
        id_allocator: Optional[ServerIdAllocator] = None,
    ):
        if config.is_empty():
            raise ValueError("cannot build a cluster from an empty configuration")
        check_non_negative(dispatch_overhead_ms, "dispatch_overhead_ms")
        self.config = config
        self.model = model
        self.profiles = profiles
        self.dispatch_overhead_ms = float(dispatch_overhead_ms)
        self._ids = id_allocator if id_allocator is not None else ServerIdAllocator()
        self._servers: List[ServerInstance] = []
        for itype in config.expand_instance_types():
            profile = profiles.profile(model, itype)
            self._servers.append(
                ServerInstance(
                    server_id=self._ids.reserve(),
                    instance_type=itype,
                    profile=profile,
                    dispatch_overhead_ms=self.dispatch_overhead_ms,
                )
            )

    # -- container protocol --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[ServerInstance]:
        return iter(self._servers)

    def __getitem__(self, index: int) -> ServerInstance:
        return self._servers[index]

    @property
    def servers(self) -> List[ServerInstance]:
        return list(self._servers)

    # -- views -----------------------------------------------------------------------------
    def idle_servers(self, now_ms: float) -> List[ServerInstance]:
        """Servers with no running or queued query at ``now_ms``."""
        return [s for s in self._servers if s.is_idle(now_ms)]

    def servers_of_type(self, type_name: str) -> List[ServerInstance]:
        return [s for s in self._servers if s.type_name == type_name]

    def base_servers(self) -> List[ServerInstance]:
        return self.servers_of_type(self.config.catalog.base_type.name)

    def auxiliary_servers(self) -> List[ServerInstance]:
        base = self.config.catalog.base_type.name
        return [s for s in self._servers if s.type_name != base]

    def earliest_idle_time_ms(self) -> float:
        """The soonest any server frees up (0 when at least one is already idle)."""
        return min(s.busy_until_ms for s in self._servers)

    def type_names(self) -> List[str]:
        """Per-server instance-type names, indexed by server id."""
        return [s.type_name for s in self._servers]

    def utilization_by_type(self, horizon_ms: float) -> Dict[str, float]:
        """Mean utilization of each instance type present in the cluster."""
        result: Dict[str, float] = {}
        for name in self.config.catalog.names:
            servers = self.servers_of_type(name)
            if servers:
                result[name] = sum(s.utilization(horizon_ms) for s in servers) / len(servers)
        return result

    # -- elastic membership ----------------------------------------------------------------
    def server_by_id(self, server_id: int) -> ServerInstance:
        """Look a server up by its (stable) id rather than its (shifting) list index."""
        for s in self._servers:
            if s.server_id == server_id:
                return s
        raise KeyError(f"no server with id {server_id} in the cluster")

    def reserve_server_id(self) -> int:
        """Claim the next fresh server id (used when billing starts before readiness)."""
        return self._ids.reserve()

    def add_server(
        self,
        instance_type: Union[str, InstanceType],
        *,
        now_ms: float = 0.0,
        server_id: Optional[int] = None,
    ) -> ServerInstance:
        """Commission one new server of ``instance_type``; returns the new instance.

        Ids are fresh and never reused (pass a previously reserved one via
        ``server_id``), so in-flight completion events for removed servers can never
        alias onto a newcomer.
        """
        if server_id is None:
            server_id = self.reserve_server_id()
        elif any(s.server_id == server_id for s in self._servers):
            raise ValueError(f"server id {server_id} is already present in the cluster")
        itype = (
            self.config.catalog[instance_type]
            if isinstance(instance_type, str)
            else instance_type
        )
        server = ServerInstance(
            server_id=server_id,
            instance_type=itype,
            profile=self.profiles.profile(self.model, itype),
            dispatch_overhead_ms=self.dispatch_overhead_ms,
            commissioned_at_ms=float(now_ms),
        )
        self._servers.append(server)
        return server

    def drain_servers(self, type_name: str, count: int, now_ms: float) -> List[ServerInstance]:
        """Put ``count`` servers of ``type_name`` into draining; returns those drained.

        Victims are chosen deterministically, least-loaded first (queue depth, then
        remaining busy time, then id), so idle servers leave before busy ones.
        """
        candidates = [
            s for s in self._servers if s.type_name == type_name and not s.draining
        ]
        candidates.sort(key=lambda s: (s.local_queue_depth, s.busy_until_ms, s.server_id))
        victims = candidates[:count]
        for s in victims:
            s.start_draining()
        return victims

    def remove_server(self, server_id: int) -> ServerInstance:
        """Decommission a server (it must exist); returns the removed instance."""
        server = self.server_by_id(server_id)
        self._servers.remove(server)
        return server

    def active_servers(self) -> List[ServerInstance]:
        """Servers currently eligible for new dispatches (not draining)."""
        return [s for s in self._servers if s.accepting]

    def active_view(self) -> "ClusterView":
        """An index-contiguous view over the schedulable servers (see module docstring)."""
        return ClusterView(self, self.active_servers())

    def current_config(self) -> HeterogeneousConfig:
        """The configuration implied by present membership (draining servers included)."""
        counts: Dict[str, int] = {}
        for s in self._servers:
            counts[s.type_name] = counts.get(s.type_name, 0) + 1
        return HeterogeneousConfig.from_mapping(counts, self.config.catalog)

    def reset(self) -> None:
        """Reset all per-server dynamic state."""
        for s in self._servers:
            s.reset()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster(model={self.model.name}, config={self.config})"


class ClusterView:
    """A frozen, index-contiguous subset of a cluster's servers.

    Scheduling policies address servers by index into whatever container they are
    handed; when membership changes mid-run (elastic scaling), indices into the raw
    cluster would shift under the policy's feet.  A view taken at the top of each
    scheduling round pins the mapping: ``view[i]`` is stable for the round, and the
    simulator commits dispatches on the :class:`ServerInstance` objects themselves.

    The view quacks like a :class:`Cluster` for everything the policy protocol uses
    (iteration, indexing, ``config``/``model``/``profiles``, ``type_names``).
    """

    def __init__(self, cluster: Cluster, servers: Sequence[ServerInstance]):
        self._cluster = cluster
        self._servers = list(servers)

    # -- container protocol ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[ServerInstance]:
        return iter(self._servers)

    def __getitem__(self, index: int) -> ServerInstance:
        return self._servers[index]

    @property
    def servers(self) -> List[ServerInstance]:
        return list(self._servers)

    # -- cluster delegation ------------------------------------------------------------------
    @property
    def config(self) -> HeterogeneousConfig:
        return self._cluster.config

    @property
    def model(self) -> MLModel:
        return self._cluster.model

    @property
    def profiles(self) -> ProfileRegistry:
        return self._cluster.profiles

    @property
    def dispatch_overhead_ms(self) -> float:
        return self._cluster.dispatch_overhead_ms

    def type_names(self) -> List[str]:
        return [s.type_name for s in self._servers]

    def idle_servers(self, now_ms: float) -> List[ServerInstance]:
        return [s for s in self._servers if s.is_idle(now_ms)]

    def servers_of_type(self, type_name: str) -> List[ServerInstance]:
        return [s for s in self._servers if s.type_name == type_name]

    def earliest_idle_time_ms(self) -> float:
        return min(s.busy_until_ms for s in self._servers)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterView({len(self._servers)} of {len(self._cluster)} servers)"


class MultiModelCluster:
    """N co-located models sharing one physical pool, partitioned per model.

    Each model owns a :class:`Cluster` over its own heterogeneous configuration (every
    instance hosts exactly one model copy, as in the single-model system), but all
    partitions share one :class:`ServerIdAllocator` so server ids — the keys of the
    billing ledger and of completion events — are globally unique.  The scheduling
    surface is the union: :meth:`active_view` concatenates every partition's accepting
    servers (in registration order) into one :class:`MultiModelClusterView` with a
    parallel model-name column, which the multi-model cost matrix consumes.
    """

    def __init__(
        self,
        configs: Mapping[str, HeterogeneousConfig],
        profiles: ProfileRegistry,
        *,
        dispatch_overhead_ms: float = 0.0,
    ):
        if not configs:
            raise ValueError("need at least one model configuration")
        self.profiles = profiles
        self.dispatch_overhead_ms = float(dispatch_overhead_ms)
        self._ids = ServerIdAllocator()
        self._clusters: Dict[str, Cluster] = {}
        self._model_of_id: Dict[int, str] = {}
        for name, config in configs.items():
            model = profiles.models[name]
            cluster = Cluster(
                config,
                model,
                profiles,
                dispatch_overhead_ms=dispatch_overhead_ms,
                id_allocator=self._ids,
            )
            self._clusters[name] = cluster
            for server in cluster:
                self._model_of_id[server.server_id] = name

    # -- partitions ------------------------------------------------------------------------
    @property
    def model_names(self) -> List[str]:
        """Registered model names, in registration order."""
        return list(self._clusters)

    @property
    def models(self) -> List[MLModel]:
        return [c.model for c in self._clusters.values()]

    def cluster_of(self, model_name: str) -> Cluster:
        """The model's partition; raises ``KeyError`` for unregistered models."""
        try:
            return self._clusters[model_name]
        except KeyError:
            raise KeyError(
                f"no model {model_name!r} in the cluster; registered: {self.model_names}"
            ) from None

    def qos_by_model(self) -> Dict[str, float]:
        return {name: c.model.qos_ms for name, c in self._clusters.items()}

    def current_configs(self) -> Dict[str, HeterogeneousConfig]:
        return {name: c.current_config() for name, c in self._clusters.items()}

    # -- container protocol (union of all partitions) ----------------------------------------
    def __len__(self) -> int:
        return sum(len(c) for c in self._clusters.values())

    def __iter__(self) -> Iterator[ServerInstance]:
        for cluster in self._clusters.values():
            yield from cluster

    # -- id routing --------------------------------------------------------------------------
    def model_of_server(self, server_id: int) -> str:
        """Model hosted by ``server_id`` (also resolves reserved and removed ids)."""
        try:
            return self._model_of_id[server_id]
        except KeyError:
            raise KeyError(f"no server with id {server_id} in the cluster") from None

    def server_by_id(self, server_id: int) -> ServerInstance:
        return self.cluster_of(self.model_of_server(server_id)).server_by_id(server_id)

    def remove_server(self, server_id: int) -> ServerInstance:
        return self.cluster_of(self.model_of_server(server_id)).remove_server(server_id)

    # -- elastic membership --------------------------------------------------------------------
    def reserve_server_id(self, model_name: str) -> int:
        """Reserve a fresh global id for a booting instance of ``model_name``."""
        server_id = self.cluster_of(model_name).reserve_server_id()
        self._model_of_id[server_id] = model_name
        return server_id

    def add_server(
        self,
        model_name: str,
        instance_type: Union[str, InstanceType],
        *,
        now_ms: float = 0.0,
        server_id: Optional[int] = None,
    ) -> ServerInstance:
        server = self.cluster_of(model_name).add_server(
            instance_type, now_ms=now_ms, server_id=server_id
        )
        self._model_of_id[server.server_id] = model_name
        return server

    def drain_servers(
        self, model_name: str, type_name: str, count: int, now_ms: float
    ) -> List[ServerInstance]:
        return self.cluster_of(model_name).drain_servers(type_name, count, now_ms)

    # -- views -----------------------------------------------------------------------------
    def active_view(self) -> "MultiModelClusterView":
        return MultiModelClusterView(self)

    def reset(self) -> None:
        for cluster in self._clusters.values():
            cluster.reset()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{n}={c.current_config()}" for n, c in self._clusters.items())
        return f"MultiModelCluster({inner})"


class MultiModelClusterView:
    """A frozen, index-contiguous union of every partition's accepting servers.

    Like :class:`ClusterView`, the mapping ``view[i] -> server`` is pinned for one
    scheduling round.  The extra surface multi-model policies need is the parallel
    model column (:meth:`server_models`) plus per-model substrate accessors
    (:meth:`model`, :meth:`config_of`, :meth:`qos_by_model`).
    """

    def __init__(self, cluster: MultiModelCluster):
        self._cluster = cluster
        self._servers: List[ServerInstance] = []
        self._server_models: List[str] = []
        for name in cluster.model_names:
            for server in cluster.cluster_of(name).active_servers():
                self._servers.append(server)
                self._server_models.append(name)

    # -- container protocol ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[ServerInstance]:
        return iter(self._servers)

    def __getitem__(self, index: int) -> ServerInstance:
        return self._servers[index]

    @property
    def servers(self) -> List[ServerInstance]:
        return list(self._servers)

    def server_models(self) -> List[str]:
        """Model names parallel to the server list (``server_models()[i]`` hosts ``view[i]``)."""
        return list(self._server_models)

    def type_names(self) -> List[str]:
        return [s.type_name for s in self._servers]

    # -- cluster delegation ------------------------------------------------------------------
    @property
    def profiles(self) -> ProfileRegistry:
        return self._cluster.profiles

    @property
    def model_names(self) -> List[str]:
        return self._cluster.model_names

    def model(self, model_name: str) -> MLModel:
        return self._cluster.cluster_of(model_name).model

    def config_of(self, model_name: str) -> HeterogeneousConfig:
        return self._cluster.cluster_of(model_name).config

    def qos_by_model(self) -> Dict[str, float]:
        return self._cluster.qos_by_model()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiModelClusterView({len(self._servers)} servers, "
            f"{len(self._cluster.model_names)} models)"
        )
