"""A cluster of simulated inference servers built from a heterogeneous configuration."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry
from repro.sim.server import ServerInstance
from repro.utils.validation import check_non_negative


class Cluster:
    """All servers allocated for one model under one heterogeneous configuration.

    Server ids are assigned in catalog order (all base-type servers first), matching the
    paper's ``(base, aux1, aux2, ...)`` configuration notation.
    """

    def __init__(
        self,
        config: HeterogeneousConfig,
        model: MLModel,
        profiles: ProfileRegistry,
        *,
        dispatch_overhead_ms: float = 0.0,
    ):
        if config.is_empty():
            raise ValueError("cannot build a cluster from an empty configuration")
        check_non_negative(dispatch_overhead_ms, "dispatch_overhead_ms")
        self.config = config
        self.model = model
        self.profiles = profiles
        self.dispatch_overhead_ms = float(dispatch_overhead_ms)
        self._servers: List[ServerInstance] = []
        for itype in config.expand_instance_types():
            profile = profiles.profile(model, itype)
            self._servers.append(
                ServerInstance(
                    server_id=len(self._servers),
                    instance_type=itype,
                    profile=profile,
                    dispatch_overhead_ms=self.dispatch_overhead_ms,
                )
            )

    # -- container protocol --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[ServerInstance]:
        return iter(self._servers)

    def __getitem__(self, index: int) -> ServerInstance:
        return self._servers[index]

    @property
    def servers(self) -> List[ServerInstance]:
        return list(self._servers)

    # -- views -----------------------------------------------------------------------------
    def idle_servers(self, now_ms: float) -> List[ServerInstance]:
        """Servers with no running or queued query at ``now_ms``."""
        return [s for s in self._servers if s.is_idle(now_ms)]

    def servers_of_type(self, type_name: str) -> List[ServerInstance]:
        return [s for s in self._servers if s.type_name == type_name]

    def base_servers(self) -> List[ServerInstance]:
        return self.servers_of_type(self.config.catalog.base_type.name)

    def auxiliary_servers(self) -> List[ServerInstance]:
        base = self.config.catalog.base_type.name
        return [s for s in self._servers if s.type_name != base]

    def earliest_idle_time_ms(self) -> float:
        """The soonest any server frees up (0 when at least one is already idle)."""
        return min(s.busy_until_ms for s in self._servers)

    def type_names(self) -> List[str]:
        """Per-server instance-type names, indexed by server id."""
        return [s.type_name for s in self._servers]

    def utilization_by_type(self, horizon_ms: float) -> Dict[str, float]:
        """Mean utilization of each instance type present in the cluster."""
        result: Dict[str, float] = {}
        for name in self.config.catalog.names:
            servers = self.servers_of_type(name)
            if servers:
                result[name] = sum(s.utilization(horizon_ms) for s in servers) / len(servers)
        return result

    def reset(self) -> None:
        """Reset all per-server dynamic state."""
        for s in self._servers:
            s.reset()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster(model={self.model.name}, config={self.config})"
