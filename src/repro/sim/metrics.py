"""Serving metrics: per-query records and aggregate QoS / throughput statistics.

The paper's headline metric is the *allowable throughput*: the highest offered load (in
queries per second) the cluster sustains while the 99th-percentile end-to-end query
latency stays within the model's QoS target.  :class:`ServingMetrics` computes that
tail latency plus the supporting statistics (violation rate, goodput, per-type
utilization) from the per-query records the simulation produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.stats import percentile
from repro.workload.query import Query


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """Outcome of one served query."""

    query: Query
    server_id: int
    server_type: str
    start_ms: float
    completion_ms: float
    service_ms: float

    def __post_init__(self) -> None:
        if self.completion_ms < self.start_ms:
            raise ValueError("completion cannot precede start")
        if self.start_ms + 1e-9 < self.query.arrival_time_ms:
            raise ValueError("service cannot start before the query arrives")

    @property
    def latency_ms(self) -> float:
        """End-to-end latency: completion minus arrival (includes queueing)."""
        return self.completion_ms - self.query.arrival_time_ms

    @property
    def waiting_ms(self) -> float:
        """Time spent before service started (central queue + local queue + overheads)."""
        return self.start_ms - self.query.arrival_time_ms

    def meets_qos(self, qos_ms: float) -> bool:
        return self.latency_ms <= qos_ms + 1e-9


class ServingMetrics:
    """Aggregates :class:`QueryRecord` objects into the paper's evaluation metrics."""

    def __init__(self, qos_ms: float, qos_percentile: float = 99.0):
        if qos_ms <= 0:
            raise ValueError("qos_ms must be positive")
        if not 0 < qos_percentile <= 100:
            raise ValueError("qos_percentile must be in (0, 100]")
        self.qos_ms = float(qos_ms)
        self.qos_percentile = float(qos_percentile)
        self._records: List[QueryRecord] = []

    # -- collection -------------------------------------------------------------------
    def record(self, record: QueryRecord) -> None:
        self._records.append(record)

    def extend(self, records: Sequence[QueryRecord]) -> None:
        self._records.extend(records)

    @property
    def records(self) -> List[QueryRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # -- latency statistics -------------------------------------------------------------
    def latencies_ms(self) -> np.ndarray:
        return np.asarray([r.latency_ms for r in self._records], dtype=float)

    def tail_latency_ms(self, q: Optional[float] = None) -> float:
        """The ``q``-th percentile latency (defaults to the QoS percentile)."""
        if not self._records:
            raise ValueError("no queries recorded")
        return percentile(self.latencies_ms(), q if q is not None else self.qos_percentile)

    def mean_latency_ms(self) -> float:
        if not self._records:
            raise ValueError("no queries recorded")
        return float(np.mean(self.latencies_ms()))

    def qos_violation_rate(self) -> float:
        """Fraction of queries whose end-to-end latency exceeds the QoS target."""
        if not self._records:
            return 0.0
        lat = self.latencies_ms()
        return float(np.mean(lat > self.qos_ms + 1e-9))

    def meets_qos(self) -> bool:
        """True when the QoS-percentile latency is within the QoS target."""
        return self.tail_latency_ms() <= self.qos_ms + 1e-9

    # -- throughput statistics ------------------------------------------------------------
    def makespan_ms(self) -> float:
        """Time from the first arrival to the last completion."""
        if not self._records:
            return 0.0
        first_arrival = min(r.query.arrival_time_ms for r in self._records)
        last_completion = max(r.completion_ms for r in self._records)
        return max(0.0, last_completion - first_arrival)

    def achieved_qps(self) -> float:
        """Completed queries per second over the makespan."""
        span = self.makespan_ms()
        if span <= 0:
            return 0.0
        return 1000.0 * len(self._records) / span

    def goodput_qps(self) -> float:
        """QoS-compliant queries per second over the makespan (Fig. 5's notion of served)."""
        span = self.makespan_ms()
        if span <= 0:
            return 0.0
        ok = sum(1 for r in self._records if r.meets_qos(self.qos_ms))
        return 1000.0 * ok / span

    # -- windowed views (per-phase elasticity reporting) ------------------------------------
    def window(self, t0_ms: float, t1_ms: float) -> "ServingMetrics":
        """A new :class:`ServingMetrics` over queries that *arrived* in ``[t0_ms, t1_ms)``.

        Attributing queries to the window of their arrival (not completion) matches how
        load phases are defined, so per-phase goodput reflects the load the phase
        actually offered.
        """
        if t1_ms < t0_ms:
            raise ValueError("window end precedes window start")
        sub = ServingMetrics(self.qos_ms, self.qos_percentile)
        sub.extend(
            [r for r in self._records if t0_ms <= r.query.arrival_time_ms < t1_ms]
        )
        return sub

    def qos_met_qps_in_window(self, t0_ms: float, t1_ms: float) -> float:
        """QoS-compliant completions per second of queries arriving in the window.

        Unlike :meth:`goodput_qps` this normalizes by the *window length*, so unserved
        (dropped) queries depress the number — an overloaded static cluster cannot
        inflate its score by completing a small subset quickly.
        """
        if t1_ms <= t0_ms:
            raise ValueError("window must have positive length")
        sub = self.window(t0_ms, t1_ms)
        ok = sum(1 for r in sub._records if r.meets_qos(self.qos_ms))
        return 1000.0 * ok / (t1_ms - t0_ms)

    # -- distribution of work ---------------------------------------------------------------
    def queries_by_type(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for r in self._records:
            result[r.server_type] = result.get(r.server_type, 0) + 1
        return result

    def mean_batch_by_type(self) -> Dict[str, float]:
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for r in self._records:
            sums[r.server_type] = sums.get(r.server_type, 0.0) + r.query.batch_size
            counts[r.server_type] = counts.get(r.server_type, 0) + 1
        return {k: sums[k] / counts[k] for k in sums}

    def summary(self) -> Dict[str, float]:
        """Flat summary dict used by reports and tests."""
        return {
            "num_queries": float(len(self._records)),
            "tail_latency_ms": self.tail_latency_ms() if self._records else float("nan"),
            "mean_latency_ms": self.mean_latency_ms() if self._records else float("nan"),
            "qos_violation_rate": self.qos_violation_rate(),
            "achieved_qps": self.achieved_qps(),
            "goodput_qps": self.goodput_qps(),
            "meets_qos": float(self.meets_qos()) if self._records else float("nan"),
        }


class MultiModelServingMetrics:
    """Per-model :class:`ServingMetrics` for co-located multi-model serving runs.

    Each model aggregates its own records against its own QoS target — the central
    quantity of the multi-model experiments is whether *every* model meets its QoS,
    not a pooled tail over incomparable targets.  Records route by the query's
    ``model_name`` tag (untagged records are only legal with a single registered
    model, preserving the single-model path).
    """

    def __init__(self, qos_ms_by_model: "Dict[str, float]", qos_percentile: float = 99.0):
        if not qos_ms_by_model:
            raise ValueError("need at least one model QoS target")
        self._per_model: Dict[str, ServingMetrics] = {
            name: ServingMetrics(qos_ms, qos_percentile)
            for name, qos_ms in qos_ms_by_model.items()
        }
        self._sole = next(iter(self._per_model)) if len(self._per_model) == 1 else None

    # -- collection -------------------------------------------------------------------
    def record(self, record: QueryRecord) -> None:
        name = record.query.model_name
        if name is None:
            if self._sole is None:
                raise ValueError(
                    f"record for query {record.query.query_id} carries no model tag "
                    f"but {len(self._per_model)} models are registered"
                )
            name = self._sole
        try:
            self._per_model[name].record(record)
        except KeyError:
            raise KeyError(f"record targets unregistered model {name!r}") from None

    def __len__(self) -> int:
        return sum(len(m) for m in self._per_model.values())

    # -- per-model views -----------------------------------------------------------------
    @property
    def model_names(self) -> List[str]:
        return list(self._per_model)

    def of_model(self, model_name: str) -> ServingMetrics:
        return self._per_model[model_name]

    def per_model(self) -> Dict[str, ServingMetrics]:
        return dict(self._per_model)

    def all_meet_qos(self) -> bool:
        """True when every model with served queries meets its own QoS percentile."""
        return all(m.meets_qos() for m in self._per_model.values() if len(m))

    def makespan_ms(self) -> float:
        return max((m.makespan_ms() for m in self._per_model.values()), default=0.0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-model summary dicts keyed by model name."""
        return {name: m.summary() for name, m in self._per_model.items()}
