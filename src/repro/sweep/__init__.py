"""Parallel seed x scenario sweep harness with deterministic aggregation."""

from repro.sweep.harness import (
    SweepPoint,
    SweepRow,
    build_grid,
    format_table,
    run_point,
    run_sweep,
    save_table,
    sweep_digest,
)

__all__ = [
    "SweepPoint",
    "SweepRow",
    "build_grid",
    "format_table",
    "run_point",
    "run_sweep",
    "save_table",
    "sweep_digest",
]
