"""Parallel sweep harness: fan seeds x scenarios across processes, deterministically.

A sweep is a grid of :class:`~repro.fuzz.spec.ScenarioSpec` x seed points.  Each
point replays one scenario through :func:`~repro.fuzz.runner.run_scenario` and is
reduced to a :class:`SweepRow` of scalar outcomes (tail latency, goodput, cost,
digest).  The harness runs the grid either serially or fanned out over a
``concurrent.futures.ProcessPoolExecutor`` — and the two must be byte-identical:

* every point is self-contained (the spec carries the seed; workers share no
  state), and
* aggregation is by **grid order**, not completion order — ``executor.map``
  yields results in submission order regardless of which worker finishes first.

``sweep_digest`` hashes the rows (which carry per-run result digests but no
wall-clock measurements), so ``sweep_digest(serial) == sweep_digest(parallel)``
is the determinism proof the unit tests and the ``sweep-smoke`` CI stage assert.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.fuzz.runner import result_digest, run_scenario
from repro.fuzz.spec import ScenarioSpec

__all__ = [
    "SweepPoint",
    "SweepRow",
    "build_grid",
    "run_point",
    "run_sweep",
    "sweep_digest",
    "format_table",
    "save_table",
]


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: a fully materialised spec (seed already substituted)."""

    spec: ScenarioSpec
    scenario: str
    seed: int


@dataclass(frozen=True)
class SweepRow:
    """Scalar outcomes of one replayed point — everything here is deterministic."""

    scenario: str
    seed: int
    loop: str
    completions: int
    violations: int
    tail_latency_ms: float
    goodput_qps: float
    cost_usd: float
    digest: str

    def key(self) -> tuple:
        return (self.scenario, self.seed)


def build_grid(
    specs: Sequence[ScenarioSpec], seeds: Sequence[int]
) -> List[SweepPoint]:
    """Cross scenarios with seeds in a fixed order: specs outer, seeds inner."""
    grid: List[SweepPoint] = []
    for spec in specs:
        name = spec.label or f"seed-{spec.seed}"
        for seed in seeds:
            grid.append(
                SweepPoint(
                    spec=dataclasses.replace(spec, seed=int(seed)),
                    scenario=name,
                    seed=int(seed),
                )
            )
    return grid


def run_point(point: SweepPoint) -> SweepRow:
    """Replay one grid cell.  Module-level and argument-pure, so it pickles."""
    result = run_scenario(point.spec, check=True)
    metrics = result.report.metrics
    if hasattr(metrics, "per_model"):
        # multi-model runs report per-model views: worst tail, summed goodput
        per = [m for m in metrics.per_model().values() if len(m)]
        tail = max((m.tail_latency_ms() for m in per), default=0.0)
        goodput = sum(m.goodput_qps() for m in per)
    else:
        tail = metrics.tail_latency_ms() if len(metrics) else 0.0
        goodput = metrics.goodput_qps() if len(metrics) else 0.0
    ledger = result.ledger
    cost = 0.0
    if ledger is not None:
        horizon = getattr(result.report, "billing_horizon_ms", None)
        if horizon is None:
            horizon = metrics.makespan_ms() if len(metrics) else 0.0
        cost = ledger.total_cost(horizon)
    return SweepRow(
        scenario=point.scenario,
        seed=point.seed,
        loop=point.spec.loop,
        completions=len(metrics),
        violations=len(result.violations),
        tail_latency_ms=tail,
        goodput_qps=goodput,
        cost_usd=cost,
        digest=result_digest(result),
    )


def run_sweep(
    points: Sequence[SweepPoint], *, workers: int = 0
) -> List[SweepRow]:
    """Replay every point; ``workers <= 1`` runs serially in-process.

    Parallel output is byte-identical to serial: points are independent and
    ``executor.map`` returns results in submission (grid) order.
    """
    points = list(points)
    if workers <= 1:
        return [run_point(p) for p in points]
    n = min(workers, len(points)) or 1
    with ProcessPoolExecutor(max_workers=n) as pool:
        return list(pool.map(run_point, points))


def default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def sweep_digest(rows: Iterable[SweepRow]) -> str:
    """Canonical sha256 over the rows; ``repr`` keeps float bytes exact."""
    h = hashlib.sha256()
    for row in rows:
        h.update(
            "|".join(
                [
                    row.scenario,
                    str(row.seed),
                    row.loop,
                    str(row.completions),
                    str(row.violations),
                    repr(row.tail_latency_ms),
                    repr(row.goodput_qps),
                    repr(row.cost_usd),
                    row.digest,
                ]
            ).encode()
        )
        h.update(b"\n")
    return h.hexdigest()


def format_table(rows: Sequence[SweepRow]) -> str:
    """Fixed-width aggregate table, one line per point plus a digest footer."""
    header = (
        f"{'scenario':<34} {'seed':>6} {'loop':<12} {'done':>6} {'viol':>5} "
        f"{'p99 ms':>10} {'goodput':>9} {'cost $':>9}  digest"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scenario:<34} {row.seed:>6} {row.loop:<12} "
            f"{row.completions:>6} {row.violations:>5} "
            f"{row.tail_latency_ms:>10.3f} {row.goodput_qps:>9.3f} "
            f"{row.cost_usd:>9.4f}  {row.digest[:12]}"
        )
    lines.append("-" * len(header))
    lines.append(f"sweep digest: {sweep_digest(rows)}")
    return "\n".join(lines)


def save_table(rows: Sequence[SweepRow], path: Path, title: Optional[str] = None) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = format_table(rows)
    if title:
        body = f"{title}\n\n{body}"
    path.write_text(body + "\n")
