"""Small argument-validation helpers used across the library.

The helpers raise ``ValueError`` with consistent, greppable messages.  They return the
validated value so they compose naturally inside constructors.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def check_positive(value: float, name: str = "value") -> float:
    """Require ``value > 0``."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str = "value") -> float:
    """Require ``value >= 0``."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def check_probability(value: float, name: str = "value") -> float:
    """Require ``0 <= value <= 1``."""
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_in_range(
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
    name: str = "value",
    *,
    inclusive: bool = True,
) -> float:
    """Require ``low <= value <= high`` (or strict inequalities with ``inclusive=False``)."""
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if low is not None:
        ok = value >= low if inclusive else value > low
        if not ok:
            raise ValueError(f"{name}={value!r} below allowed minimum {low!r}")
    if high is not None:
        ok = value <= high if inclusive else value < high
        if not ok:
            raise ValueError(f"{name}={value!r} above allowed maximum {high!r}")
    return float(value)


def check_finite(array, name: str = "array") -> np.ndarray:
    """Require every element of ``array`` to be finite; returns it as an ndarray."""
    arr = np.asarray(array, dtype=float)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def check_positive_int(value, name: str = "value") -> int:
    """Require a positive integer (floats with integral values are accepted)."""
    if isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got a bool")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    if not isinstance(value, (int, np.integer)):
        raise ValueError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value, name: str = "value") -> int:
    """Require a non-negative integer."""
    if isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got a bool")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    if not isinstance(value, (int, np.integer)):
        raise ValueError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def approx_equal(a: float, b: float, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Symmetric floating-point comparison used in invariants and tests."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)
