"""ASCII table / series formatting used by the experiment drivers and benchmarks.

The benchmark harnesses print the rows and series of every paper figure; these helpers
keep that output aligned and copy-pasteable without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def _format_cell(value, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    float_fmt: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)`` entries.
    float_fmt:
        ``format`` spec applied to float cells.
    title:
        Optional title line printed above the table.
    """
    header_cells = [str(h) for h in headers]
    body = []
    for row in rows:
        cells = [_format_cell(v, float_fmt) for v in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(header_cells)} columns"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells):
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(header_cells))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(cells) for cells in body)
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[Number]],
    *,
    index: Optional[Sequence] = None,
    index_name: str = "x",
    float_fmt: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render one or more named numeric series against a shared index as a table."""
    if not series:
        raise ValueError("series must contain at least one entry")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series have inconsistent lengths: {sorted(lengths)}")
    n = lengths.pop()
    if index is None:
        index = list(range(n))
    if len(index) != n:
        raise ValueError(f"index length {len(index)} does not match series length {n}")
    headers = [index_name, *series.keys()]
    rows = []
    for i in range(n):
        rows.append([index[i], *[values[i] for values in series.values()]])
    return format_table(headers, rows, float_fmt=float_fmt, title=title)


def format_mapping(mapping: Mapping, *, float_fmt: str = ".3f", title: Optional[str] = None) -> str:
    """Render a flat mapping as a two-column key/value table."""
    rows = [[key, value] for key, value in mapping.items()]
    return format_table(["key", "value"], rows, float_fmt=float_fmt, title=title)
