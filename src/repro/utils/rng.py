"""Deterministic random-number-generator plumbing.

All stochastic components in the library accept either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  ``ensure_rng`` normalizes those into a
Generator so that experiments are reproducible end to end, and ``spawn_rngs`` derives
independent child generators for parallel components (e.g. one per simulated instance)
without correlated streams.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed-like input.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence`` or an existing
        ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    The children are derived through ``SeedSequence.spawn`` when a seed is supplied and
    through independently drawn 64-bit seeds when an already-instantiated generator is
    supplied, so repeated calls on the same generator yield different (but still
    deterministic) children.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(rng, (int, np.integer)):
        seq = np.random.SeedSequence(int(rng))
        return [np.random.default_rng(child) for child in seq.spawn(n)]
    if isinstance(rng, np.random.SeedSequence):
        return [np.random.default_rng(child) for child in rng.spawn(n)]
    gen = ensure_rng(rng)
    seeds = gen.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def stable_choice(rng: RngLike, items: Iterable, size: Optional[int] = None):
    """Choose from ``items`` with a normalized generator (convenience for tests)."""
    gen = ensure_rng(rng)
    arr = list(items)
    if not arr:
        raise ValueError("cannot choose from an empty collection")
    idx = gen.integers(0, len(arr), size=size)
    if size is None:
        return arr[int(idx)]
    return [arr[int(i)] for i in np.atleast_1d(idx)]
