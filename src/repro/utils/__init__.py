"""Shared utilities: seeded RNG handling, validation, ASCII tables, streaming stats.

These helpers are deliberately dependency-light so every other subpackage can import
them without cycles.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import StreamingStats, percentile, RunningPercentile
from repro.utils.tables import format_table, format_series
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "StreamingStats",
    "RunningPercentile",
    "percentile",
    "format_table",
    "format_series",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
