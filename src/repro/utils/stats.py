"""Streaming statistics helpers for the simulator's metric collection.

The serving simulations produce one latency sample per query; the QoS check needs tail
percentiles (typically p99) and the throughput accounting needs counts and means.  The
accumulators here avoid storing more state than needed while staying exact (percentiles
keep the sample list; ``StreamingStats`` keeps Welford moments only).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact percentile (linear interpolation) of ``samples`` with ``q`` in [0, 100]."""
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample set")
    return float(np.percentile(arr, q))


@dataclass
class StreamingStats:
    """Welford-style streaming mean/variance/min/max accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far (0 for <2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self.mean * self.count

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Return a new accumulator equivalent to having seen both sample streams."""
        if other.count == 0:
            return StreamingStats(self.count, self.mean, self._m2, self.min, self.max)
        if self.count == 0:
            return StreamingStats(other.count, other.mean, other._m2, other.min, other.max)
        count = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / count
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / count
        return StreamingStats(
            count,
            mean,
            m2,
            min(self.min, other.min),
            max(self.max, other.max),
        )


@dataclass
class RunningPercentile:
    """Exact percentile tracker that retains its samples.

    The serving simulations are bounded (thousands of queries), so retaining samples is
    cheap and keeps the p99 computation exact, which matters because the QoS decision is
    a hard threshold.
    """

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        self.samples.extend(float(v) for v in values)

    def __len__(self) -> int:
        return len(self.samples)

    def value(self, q: float) -> float:
        """Return the ``q``-th percentile of everything added so far."""
        return percentile(self.samples, q)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly above ``threshold`` (0 for an empty tracker)."""
        if not self.samples:
            return 0.0
        arr = np.asarray(self.samples)
        return float(np.mean(arr > threshold))
