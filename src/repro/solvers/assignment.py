"""Facade over the assignment solvers with a uniform result object.

The query distributor calls :func:`solve_assignment` with a method name; the default is
the from-scratch Jonker-Volgenant solver (what the paper uses).  ``method="scipy"``
defers to :func:`scipy.optimize.linear_sum_assignment`, which the test suite uses as an
independent oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.solvers.greedy import greedy_assignment
from repro.solvers.hungarian import hungarian_assignment
from repro.solvers.jonker_volgenant import (
    JonkerVolgenantSolver,
    jonker_volgenant_assignment,
)


@dataclass(frozen=True)
class AssignmentResult:
    """Result of a bipartite matching.

    ``row_indices[k]`` is matched to ``col_indices[k]``; ``total_cost`` is the sum of the
    matched cost-matrix entries.
    """

    row_indices: np.ndarray
    col_indices: np.ndarray
    total_cost: float
    method: str

    def __len__(self) -> int:
        return int(self.row_indices.shape[0])

    def as_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """Matched (row, col) pairs as plain tuples."""
        return tuple(
            (int(r), int(c)) for r, c in zip(self.row_indices, self.col_indices)
        )

    def column_of_row(self, row: int) -> int:
        """Column matched to ``row``; raises ``KeyError`` when the row is unmatched."""
        hits = np.nonzero(self.row_indices == row)[0]
        if hits.size == 0:
            raise KeyError(f"row {row} is not matched")
        return int(self.col_indices[hits[0]])


def _scipy_assignment(cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    rows, cols = linear_sum_assignment(cost)
    return np.asarray(rows, dtype=int), np.asarray(cols, dtype=int)


_SOLVERS: Dict[str, Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]] = {
    "jv": jonker_volgenant_assignment,
    "jonker-volgenant": jonker_volgenant_assignment,
    "hungarian": hungarian_assignment,
    "greedy": greedy_assignment,
    "scipy": _scipy_assignment,
}


def available_methods() -> Tuple[str, ...]:
    """Names accepted by :func:`solve_assignment`."""
    return tuple(sorted(set(_SOLVERS)))


def round_solver(method: str) -> Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    """A ``cost -> (rows, cols)`` callable for per-round use by one scheduling pipeline.

    For ``"jv"`` this returns a dedicated :class:`JonkerVolgenantSolver` whose scratch
    buffers persist across the rounds of one simulation run (the ``solve_many``
    reuse pattern); other methods return their stateless solver function.
    """
    key = method.lower()
    if key not in _SOLVERS:
        raise ValueError(
            f"unknown assignment method {method!r}; choose from {available_methods()}"
        )
    if key in ("jv", "jonker-volgenant"):
        return JonkerVolgenantSolver()
    return _SOLVERS[key]


def solve_assignment(cost: np.ndarray, method: str = "jv") -> AssignmentResult:
    """Solve a (possibly rectangular) min-cost assignment problem.

    Parameters
    ----------
    cost:
        2-D array of finite costs; all ``min(m, n)`` assignments are made.
    method:
        ``"jv"`` (default, from-scratch Jonker-Volgenant), ``"hungarian"``, ``"greedy"``
        or ``"scipy"``.
    """
    key = method.lower()
    if key not in _SOLVERS:
        raise ValueError(f"unknown assignment method {method!r}; choose from {available_methods()}")
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost matrix must be 2-D, got shape {cost.shape}")
    rows, cols = _SOLVERS[key](cost)
    if rows.size:
        total = float(cost[rows, cols].sum())
    else:
        total = 0.0
    return AssignmentResult(
        row_indices=np.asarray(rows, dtype=int),
        col_indices=np.asarray(cols, dtype=int),
        total_cost=total,
        method=key,
    )
