"""Greedy bipartite matcher.

Sorts all (row, column) pairs by cost and accepts each pair whose row and column are
still free.  Not optimal, but fast and simple — used as an ablation point to quantify
how much of Kairos's benefit comes from solving the matching exactly versus merely
being heterogeneity-aware.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def greedy_assignment(cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy min-cost matching; returns ``(row_indices, col_indices)`` sorted by row."""
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost matrix must be 2-D, got shape {cost.shape}")
    m, n = cost.shape
    if m == 0 or n == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix must be finite; encode forbidden pairs as large penalties")

    target = min(m, n)
    order = np.argsort(cost, axis=None, kind="stable")
    rows_taken = np.zeros(m, dtype=bool)
    cols_taken = np.zeros(n, dtype=bool)
    rows = []
    cols = []
    for flat in order:
        i, j = divmod(int(flat), n)
        if rows_taken[i] or cols_taken[j]:
            continue
        rows_taken[i] = True
        cols_taken[j] = True
        rows.append(i)
        cols.append(j)
        if len(rows) == target:
            break
    rows_arr = np.asarray(rows, dtype=int)
    cols_arr = np.asarray(cols, dtype=int)
    sort = np.argsort(rows_arr)
    return rows_arr[sort], cols_arr[sort]
