"""Jonker-Volgenant shortest-augmenting-path solver for rectangular assignment problems.

This is a from-scratch implementation of the algorithm the paper uses for its query
distribution (Sec. 5.1 cites Jonker & Volgenant 1987 and Crouse 2016).  For an
``m x n`` cost matrix with ``m <= n`` it maintains dual potentials ``u`` (rows) and
``v`` (columns) and, for each row in turn, runs a Dijkstra-style search over reduced
costs to find a shortest augmenting path, then updates the potentials and flips the
assignments along the path.  Complexity is ``O(m^2 n)``.

The Dijkstra loop is a *flat-array* core: one persistent ``shortest`` vector holds the
tentative distances with an infinity sentinel for closed columns, so the per-step
column selection is a plain masked ``argmin`` — no ``nonzero``/fancy-indexing
re-materialization of the open set.  Improvements are written with ``np.copyto(...,
where=...)``, the values frozen at column-closing time feed the (lazy, end-of-row)
dual updates, and :class:`JonkerVolgenantSolver` reuses all scratch buffers across the
thousands of matchings one simulation run solves (``solve_many`` / one ``solve`` per
scheduling round).  The produced matching — including every tie-break — is identical
to the original per-step re-materializing implementation; the property suite pins
element-wise equality against a frozen copy of it and optimality against the
Hungarian oracle.

Matrices with more rows than columns are solved by transposing, which preserves the
matching.  All costs must be finite.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Tuple

import numpy as np


class JonkerVolgenantSolver:
    """A JV solver whose scratch buffers persist across calls.

    One scheduling round solves one matching; a serving run solves thousands.  The
    module-level :func:`jonker_volgenant_assignment` allocates its Dijkstra state per
    row, which the flat core here replaces with per-instance buffers grown to the
    largest problem seen (``_ensure``) and reset with ``fill`` — the only per-round
    allocations left are the two result arrays.

    Not thread-safe (no part of the simulator is); create one instance per concurrent
    pipeline.
    """

    __slots__ = (
        "_row_capacity",
        "_col_capacity",
        "_u",
        "_v",
        "_col4row",
        "_row4col",
        "_shortest",
        "_closed_value",
        "_predecessor",
        "_open_cols",
        "_unassigned_cols",
        "_reduced",
        "_improved",
        "_ties",
        "_closed_order",
    )

    def __init__(self) -> None:
        self._row_capacity = 0
        self._col_capacity = 0

    # -- public API ---------------------------------------------------------------------
    def solve(self, cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Solve one matching; same contract as :func:`jonker_volgenant_assignment`."""
        cost = np.asarray(cost, dtype=float)
        if cost.ndim != 2:
            raise ValueError(f"cost matrix must be 2-D, got shape {cost.shape}")
        m, n = cost.shape
        if m == 0 or n == 0:
            return np.empty(0, dtype=int), np.empty(0, dtype=int)
        if not np.all(np.isfinite(cost)):
            raise ValueError(
                "cost matrix must be finite; encode forbidden pairs as large penalties"
            )

        # Single-row / single-column matchings are a plain argmin; np.argmin returns
        # the first minimum, which is exactly the tie-break the Dijkstra loop applies
        # on its first step (all columns open and unassigned), so the fast path is
        # identical.
        if m == 1:
            return np.zeros(1, dtype=int), np.asarray([np.argmin(cost[0])], dtype=int)
        if n == 1:
            return np.asarray([np.argmin(cost[:, 0])], dtype=int), np.zeros(1, dtype=int)

        if m > n:
            # Transposing preserves the matching: solve columns-as-rows, then report
            # pairs sorted by the original row index (as the recursive form did).
            rows = self._solve_checked(np.ascontiguousarray(cost.T))
            cols = np.arange(n)
            order = np.argsort(rows)
            return rows[order], cols[order]

        col4row = self._solve_checked(cost)
        return np.arange(m), col4row

    def solve_many(
        self, costs: Iterable[np.ndarray]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Solve a sequence of matchings reusing one set of scratch buffers."""
        return [self.solve(cost) for cost in costs]

    def __call__(self, cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.solve(cost)

    # -- internals ----------------------------------------------------------------------
    def _ensure(self, m: int, n: int) -> None:
        """Grow the scratch buffers to cover an ``m x n`` problem (never shrinks)."""
        if m > self._row_capacity:
            self._row_capacity = max(m, 2 * self._row_capacity)
            self._u = np.empty(self._row_capacity)
            self._col4row = np.empty(self._row_capacity, dtype=np.intp)
        if n > self._col_capacity:
            self._col_capacity = max(n, 2 * self._col_capacity)
            c = self._col_capacity
            self._v = np.empty(c)
            self._row4col = np.empty(c, dtype=np.intp)
            self._shortest = np.empty(c)
            self._closed_value = np.empty(c)
            self._predecessor = np.empty(c, dtype=np.intp)
            self._open_cols = np.empty(c, dtype=bool)
            self._unassigned_cols = np.empty(c, dtype=bool)
            self._reduced = np.empty(c)
            self._improved = np.empty(c, dtype=bool)
            self._ties = np.empty(c, dtype=bool)
        self._closed_order: List[int] = []

    def _solve_checked(self, cost: np.ndarray) -> np.ndarray:
        """Core shortest-augmenting-path loop for a finite ``m <= n`` matrix.

        Returns a fresh copy of ``col4row``: for each row, its matched column.
        """
        m, n = cost.shape
        self._ensure(m, n)
        u = self._u[:m]
        v = self._v[:n]
        col4row = self._col4row[:m]
        row4col = self._row4col[:n]
        shortest = self._shortest[:n]
        closed_value = self._closed_value[:n]
        predecessor = self._predecessor[:n]
        open_cols = self._open_cols[:n]
        unassigned_cols = self._unassigned_cols[:n]
        reduced = self._reduced[:n]
        improved = self._improved[:n]
        ties = self._ties[:n]

        u.fill(0.0)
        v.fill(0.0)
        col4row.fill(-1)
        row4col.fill(-1)
        unassigned_cols.fill(True)
        inf = np.inf

        for cur_row in range(m):
            # Dijkstra over columns using reduced costs.  ``shortest`` doubles as the
            # open-set distance table (closed columns are pinned at the +inf sentinel,
            # their closing-time distances frozen in ``closed_value``), so the column
            # pick is one masked argmin over the flat array.
            shortest.fill(inf)
            predecessor.fill(-1)
            open_cols.fill(True)
            closed = self._closed_order
            closed.clear()

            min_val = 0.0
            i = cur_row
            while True:
                # candidate reduced path costs through row i, evaluated over the full
                # row: (min_val + cost[i, j]) - u[i] - v[j], term order as the
                # original implementation so float rounding is bit-identical
                np.add(cost[i], min_val, out=reduced)
                reduced -= u[i]
                reduced -= v
                np.less(reduced, shortest, out=improved)
                improved &= open_cols
                np.copyto(shortest, reduced, where=improved)
                np.copyto(predecessor, i, where=improved)

                # pick the open column with the smallest tentative distance (closed
                # columns sit at +inf), preferring an unassigned column on ties so
                # augmenting paths terminate promptly
                j = int(shortest.argmin())
                lowest = shortest[j]
                if row4col[j] != -1:
                    np.equal(shortest, lowest, out=ties)
                    ties &= unassigned_cols
                    k = int(ties.argmax())
                    if ties[k]:
                        j = k
                min_val = float(lowest)
                if not np.isfinite(min_val):  # pragma: no cover - guarded by finiteness check
                    raise RuntimeError("assignment problem is infeasible")

                open_cols[j] = False
                closed_value[j] = lowest
                shortest[j] = inf
                closed.append(j)
                if row4col[j] == -1:
                    sink = j
                    break
                i = int(row4col[j])

            # dual updates (applied lazily, once per augmenting path): every closed
            # column moves by its frozen closing-time distance, and each visited row
            # other than cur_row is the match of one non-sink closed column
            done = np.asarray(closed, dtype=np.intp)
            u[cur_row] += min_val
            if done.size > 1:
                through = done[:-1]  # the sink is closed last and is unmatched
                u[row4col[through]] += min_val - closed_value[through]
            v[done] -= min_val - closed_value[done]

            # augment along the path ending at `sink`
            j = sink
            unassigned_cols[j] = False
            while True:
                i = int(predecessor[j])
                row4col[j] = i
                jj = int(col4row[i])
                col4row[i] = j
                j = jj
                if i == cur_row:
                    break

        return col4row.copy()


#: Per-thread default solver backing the functional entry point: ad-hoc callers
#: (tests, analysis scripts) get scratch reuse across calls, while concurrent
#: threads — which the previous pure-function form supported — never share the
#: mutable buffers.
_LOCAL = threading.local()


def jonker_volgenant_assignment(cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``min sum(cost[i, j])`` over one-to-one matchings of rows to columns.

    Parameters
    ----------
    cost:
        2-D array of finite costs.  All ``min(m, n)`` rows (or columns) are matched.

    Returns
    -------
    (row_indices, col_indices):
        Arrays of equal length ``min(m, n)`` giving matched pairs, sorted by row index.
    """
    solver = getattr(_LOCAL, "solver", None)
    if solver is None:
        solver = _LOCAL.solver = JonkerVolgenantSolver()
    return solver.solve(cost)
