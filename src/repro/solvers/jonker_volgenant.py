"""Jonker-Volgenant shortest-augmenting-path solver for rectangular assignment problems.

This is a from-scratch implementation of the algorithm the paper uses for its query
distribution (Sec. 5.1 cites Jonker & Volgenant 1987 and Crouse 2016).  For an
``m x n`` cost matrix with ``m <= n`` it maintains dual potentials ``u`` (rows) and
``v`` (columns) and, for each row in turn, runs a Dijkstra-style search over reduced
costs to find a shortest augmenting path, then updates the potentials and flips the
assignments along the path.  Complexity is ``O(m^2 n)`` with the per-step column scan
vectorized in NumPy.

Matrices with more rows than columns are solved by transposing, which preserves the
matching.  All costs must be finite.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def jonker_volgenant_assignment(cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``min sum(cost[i, j])`` over one-to-one matchings of rows to columns.

    Parameters
    ----------
    cost:
        2-D array of finite costs.  All ``min(m, n)`` rows (or columns) are matched.

    Returns
    -------
    (row_indices, col_indices):
        Arrays of equal length ``min(m, n)`` giving matched pairs, sorted by row index.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost matrix must be 2-D, got shape {cost.shape}")
    m, n = cost.shape
    if m == 0 or n == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix must be finite; encode forbidden pairs as large penalties")

    # Single-row / single-column matchings are a plain argmin; np.argmin returns the
    # first minimum, which is exactly the tie-break the Dijkstra loop below applies on
    # its first step (all columns open and unassigned), so the fast path is identical.
    if m == 1:
        return np.zeros(1, dtype=int), np.asarray([np.argmin(cost[0])], dtype=int)
    if n == 1:
        return np.asarray([np.argmin(cost[:, 0])], dtype=int), np.zeros(1, dtype=int)

    if m > n:
        cols, rows = jonker_volgenant_assignment(cost.T)
        order = np.argsort(rows)
        return rows[order], cols[order]

    col4row = _solve_rows_le_cols(cost)
    rows = np.arange(m)
    return rows, col4row


def _solve_rows_le_cols(cost: np.ndarray) -> np.ndarray:
    """Core shortest-augmenting-path loop for ``m <= n`` matrices.

    Returns ``col4row``: for each row, the column it is matched to.
    """
    m, n = cost.shape
    u = np.zeros(m)  # row potentials
    v = np.zeros(n)  # column potentials
    col4row = np.full(m, -1, dtype=int)
    row4col = np.full(n, -1, dtype=int)

    for cur_row in range(m):
        # Dijkstra over columns using reduced costs.
        shortest = np.full(n, np.inf)
        predecessor = np.full(n, -1, dtype=int)
        done_cols = np.zeros(n, dtype=bool)
        visited_rows = np.zeros(m, dtype=bool)

        min_val = 0.0
        i = cur_row
        sink = -1
        while sink == -1:
            visited_rows[i] = True
            open_cols = ~done_cols
            # candidate reduced path costs through row i
            reduced = min_val + cost[i, open_cols] - u[i] - v[open_cols]
            open_idx = np.nonzero(open_cols)[0]
            improved = reduced < shortest[open_idx]
            if np.any(improved):
                upd = open_idx[improved]
                shortest[upd] = reduced[improved]
                predecessor[upd] = i

            # pick the open column with the smallest tentative distance, preferring an
            # unassigned column on ties so augmenting paths terminate promptly
            open_shortest = shortest[open_idx]
            lowest = open_shortest.min()
            tie_cols = open_idx[open_shortest == lowest]
            unassigned_ties = tie_cols[row4col[tie_cols] == -1]
            j = int(unassigned_ties[0]) if unassigned_ties.size else int(tie_cols[0])
            min_val = float(lowest)
            if not np.isfinite(min_val):  # pragma: no cover - guarded by finiteness check
                raise RuntimeError("assignment problem is infeasible")

            done_cols[j] = True
            if row4col[j] == -1:
                sink = j
            else:
                i = int(row4col[j])

        # dual updates
        u[cur_row] += min_val
        other_visited = visited_rows.copy()
        other_visited[cur_row] = False
        if np.any(other_visited):
            rows_idx = np.nonzero(other_visited)[0]
            u[rows_idx] += min_val - shortest[col4row[rows_idx]]
        v[done_cols] -= min_val - shortest[done_cols]

        # augment along the path ending at `sink`
        j = sink
        while True:
            i = int(predecessor[j])
            row4col[j] = i
            col4row[i], j = j, col4row[i]
            if i == cur_row:
                break

    return col4row
