"""Hungarian (Kuhn-Munkres) algorithm with dual potentials, O(n^2 m).

Kept as an independent reference implementation: the test suite cross-checks the
Jonker-Volgenant solver, the Hungarian solver, and SciPy against each other on random
instances, and the solver ablation benchmark compares their runtime on the matching
sizes Kairos actually encounters (tens of queries x tens of instances).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def hungarian_assignment(cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the rectangular min-cost assignment problem with the Hungarian method.

    Returns ``(row_indices, col_indices)`` of length ``min(m, n)``, sorted by row.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost matrix must be 2-D, got shape {cost.shape}")
    m, n = cost.shape
    if m == 0 or n == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix must be finite; encode forbidden pairs as large penalties")

    if m > n:
        cols, rows = hungarian_assignment(cost.T)
        order = np.argsort(rows)
        return rows[order], cols[order]

    # Classic potentials formulation (1-indexed sentinel column 0), rows <= columns.
    INF = np.inf
    u = np.zeros(m + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=int)  # p[j] = row (1-based) matched to column j
    way = np.zeros(n + 1, dtype=int)

    for i in range(1, m + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, INF)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = -1
            # vectorized relaxation over unused columns
            unused = np.nonzero(~used[1:])[0] + 1
            cur = cost[i0 - 1, unused - 1] - u[i0] - v[unused]
            better = cur < minv[unused]
            if np.any(better):
                cols_better = unused[better]
                minv[cols_better] = cur[better]
                way[cols_better] = j0
            # pick the unused column with the smallest minv
            k = int(np.argmin(minv[unused]))
            delta = float(minv[unused][k])
            j1 = int(unused[k])
            # update potentials
            used_idx = np.nonzero(used)[0]
            u[p[used_idx]] += delta
            v[used_idx] -= delta
            not_used_idx = np.nonzero(~used)[0]
            minv[not_used_idx] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # augmenting
        while True:
            j1 = int(way[j0])
            p[j0] = p[j1]
            j0 = j1
            if j0 == 0:
                break

    rows = []
    cols = []
    for j in range(1, n + 1):
        if p[j] != 0:
            rows.append(p[j] - 1)
            cols.append(j - 1)
    rows_arr = np.asarray(rows, dtype=int)
    cols_arr = np.asarray(cols, dtype=int)
    order = np.argsort(rows_arr)
    return rows_arr[order], cols_arr[order]
