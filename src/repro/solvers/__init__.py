"""Linear-sum assignment (min-cost bipartite matching) solvers.

Kairos's query-distribution step is a rectangular min-cost bipartite matching problem
(paper Eqs. 4-8), solved with the Jonker-Volgenant shortest-augmenting-path algorithm.
This package implements that algorithm from scratch, plus a Hungarian solver and a
greedy matcher used for cross-checking and ablation, and a facade that can also defer to
:func:`scipy.optimize.linear_sum_assignment`.
"""

from repro.solvers.assignment import AssignmentResult, solve_assignment
from repro.solvers.greedy import greedy_assignment
from repro.solvers.hungarian import hungarian_assignment
from repro.solvers.jonker_volgenant import jonker_volgenant_assignment

__all__ = [
    "AssignmentResult",
    "solve_assignment",
    "jonker_volgenant_assignment",
    "hungarian_assignment",
    "greedy_assignment",
]
