"""Query batch-size distributions.

The paper's evaluation is driven by the production trace of real query batch sizes from
Meta (DeepRecSys), which is heavily skewed toward small batches with a long tail up to
the 1000-request cap, and by Gaussian-distributed batch sizes for sensitivity studies.
This module provides both families plus empirical/fixed distributions, each exposing:

* ``sample(n, rng)`` — draw ``n`` integer batch sizes;
* ``fraction_at_or_below(s)`` — the CDF value the upper-bound estimator's ``f`` uses;
* ``mean_batch()`` — analytic/numeric mean, used by reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int

#: Default cap on batch sizes (paper Sec. 5.1 limits queries to 1000 requests).
DEFAULT_MAX_BATCH = 1000


class BatchSizeDistribution:
    """Interface for query batch-size distributions."""

    #: inclusive smallest / largest batch size this distribution can produce
    min_batch: int
    max_batch: int

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` integer batch sizes in ``[min_batch, max_batch]``."""
        raise NotImplementedError

    def fraction_at_or_below(self, s: float) -> float:
        """P(batch <= s) — the fraction ``f`` in the paper's upper-bound math."""
        raise NotImplementedError

    def mean_batch(self) -> float:
        """Expected batch size."""
        raise NotImplementedError

    def support(self) -> Tuple[int, int]:
        return (self.min_batch, self.max_batch)

    def _clip(self, values: np.ndarray) -> np.ndarray:
        clipped = np.clip(np.rint(values), self.min_batch, self.max_batch)
        return clipped.astype(int)


@dataclass(frozen=True)
class TruncatedLogNormalBatchSizes(BatchSizeDistribution):
    """Heavy-tailed, production-like batch sizes (truncated, discretized log-normal).

    ``median`` and ``sigma`` parameterize the underlying log-normal; samples are rounded
    to integers and truncated to ``[min_batch, max_batch]`` by resampling-free clipping.
    The defaults give a mix where most queries are some tens of requests and a small
    fraction approaches the 1000-request cap, qualitatively matching the Meta trace the
    paper uses.
    """

    median: float = 80.0
    sigma: float = 1.25
    min_batch: int = 1
    max_batch: int = DEFAULT_MAX_BATCH

    def __post_init__(self) -> None:
        check_positive(self.median, "median")
        check_positive(self.sigma, "sigma")
        check_positive_int(self.min_batch, "min_batch")
        check_positive_int(self.max_batch, "max_batch")
        if self.min_batch > self.max_batch:
            raise ValueError("min_batch must not exceed max_batch")

    @property
    def mu(self) -> float:
        """Log-space mean of the underlying log-normal."""
        return math.log(self.median)

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be non-negative")
        gen = ensure_rng(rng)
        raw = gen.lognormal(mean=self.mu, sigma=self.sigma, size=n)
        return self._clip(raw)

    def fraction_at_or_below(self, s: float) -> float:
        if s < self.min_batch:
            return 0.0
        if s >= self.max_batch:
            return 1.0
        # Clipping concentrates the tail mass at max_batch, so within the interior the
        # truncated CDF equals the un-truncated CDF (values below min_batch are clipped
        # *up* to min_batch, hence included for s >= min_batch).
        return float(stats.lognorm.cdf(s + 0.5, s=self.sigma, scale=self.median))

    def mean_batch(self) -> float:
        grid = np.arange(self.min_batch, self.max_batch + 1)
        pmf = self._pmf(grid)
        return float(np.dot(grid, pmf))

    def _pmf(self, grid: np.ndarray) -> np.ndarray:
        cdf_hi = stats.lognorm.cdf(grid + 0.5, s=self.sigma, scale=self.median)
        cdf_lo = stats.lognorm.cdf(grid - 0.5, s=self.sigma, scale=self.median)
        pmf = cdf_hi - cdf_lo
        # mass clipped into the boundary bins
        pmf[0] += stats.lognorm.cdf(grid[0] - 0.5, s=self.sigma, scale=self.median)
        pmf[-1] += 1.0 - stats.lognorm.cdf(grid[-1] + 0.5, s=self.sigma, scale=self.median)
        return pmf / pmf.sum()


@dataclass(frozen=True)
class GaussianBatchSizes(BatchSizeDistribution):
    """Gaussian-distributed batch sizes (the paper's sensitivity-study distribution)."""

    mean: float = 250.0
    std: float = 120.0
    min_batch: int = 1
    max_batch: int = DEFAULT_MAX_BATCH

    def __post_init__(self) -> None:
        check_positive(self.mean, "mean")
        check_positive(self.std, "std")
        check_positive_int(self.min_batch, "min_batch")
        check_positive_int(self.max_batch, "max_batch")
        if self.min_batch > self.max_batch:
            raise ValueError("min_batch must not exceed max_batch")

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be non-negative")
        gen = ensure_rng(rng)
        raw = gen.normal(loc=self.mean, scale=self.std, size=n)
        return self._clip(raw)

    def fraction_at_or_below(self, s: float) -> float:
        if s < self.min_batch:
            return 0.0
        if s >= self.max_batch:
            return 1.0
        return float(stats.norm.cdf(s + 0.5, loc=self.mean, scale=self.std))

    def mean_batch(self) -> float:
        grid = np.arange(self.min_batch, self.max_batch + 1)
        cdf_hi = stats.norm.cdf(grid + 0.5, loc=self.mean, scale=self.std)
        cdf_lo = stats.norm.cdf(grid - 0.5, loc=self.mean, scale=self.std)
        pmf = cdf_hi - cdf_lo
        pmf[0] += stats.norm.cdf(grid[0] - 0.5, loc=self.mean, scale=self.std)
        pmf[-1] += 1.0 - stats.norm.cdf(grid[-1] + 0.5, loc=self.mean, scale=self.std)
        pmf = pmf / pmf.sum()
        return float(np.dot(grid, pmf))


@dataclass(frozen=True)
class EmpiricalBatchSizes(BatchSizeDistribution):
    """Distribution defined by an observed sample of batch sizes (trace replay)."""

    observations: Tuple[int, ...]
    min_batch: int = field(init=False, default=1)
    max_batch: int = field(init=False, default=DEFAULT_MAX_BATCH)

    def __post_init__(self) -> None:
        if not self.observations:
            raise ValueError("observations must be non-empty")
        obs = tuple(int(b) for b in self.observations)
        if any(b < 1 for b in obs):
            raise ValueError("observed batch sizes must be >= 1")
        object.__setattr__(self, "observations", obs)
        object.__setattr__(self, "min_batch", min(obs))
        object.__setattr__(self, "max_batch", max(obs))

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be non-negative")
        gen = ensure_rng(rng)
        arr = np.asarray(self.observations, dtype=int)
        idx = gen.integers(0, arr.size, size=n)
        return arr[idx]

    def fraction_at_or_below(self, s: float) -> float:
        arr = np.asarray(self.observations)
        return float(np.mean(arr <= s))

    def mean_batch(self) -> float:
        return float(np.mean(self.observations))

    @classmethod
    def from_samples(cls, samples: Sequence[int]) -> "EmpiricalBatchSizes":
        return cls(observations=tuple(int(b) for b in samples))


@dataclass(frozen=True)
class FixedBatchSizes(BatchSizeDistribution):
    """Degenerate distribution producing a single batch size (useful in unit tests)."""

    batch_size: int
    min_batch: int = field(init=False, default=1)
    max_batch: int = field(init=False, default=DEFAULT_MAX_BATCH)

    def __post_init__(self) -> None:
        check_positive_int(self.batch_size, "batch_size")
        object.__setattr__(self, "min_batch", self.batch_size)
        object.__setattr__(self, "max_batch", self.batch_size)

    def sample(self, n: int, rng: RngLike = None) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be non-negative")
        return np.full(n, self.batch_size, dtype=int)

    def fraction_at_or_below(self, s: float) -> float:
        return 1.0 if s >= self.batch_size else 0.0

    def mean_batch(self) -> float:
        return float(self.batch_size)


def production_batch_distribution(
    max_batch: int = DEFAULT_MAX_BATCH,
    *,
    median: float = 80.0,
    sigma: float = 1.25,
) -> TruncatedLogNormalBatchSizes:
    """The default 'production trace'-like distribution used in all main experiments."""
    return TruncatedLogNormalBatchSizes(
        median=median, sigma=sigma, min_batch=1, max_batch=max_batch
    )
