"""Query arrival processes.

The paper generates query inter-arrivals from a Poisson process (Sec. 7) at rates of
hundreds of queries per second; a deterministic (evenly spaced) process is also provided
for controlled unit tests and the illustrative Fig. 5 example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive


class ArrivalProcess:
    """Interface: produce absolute arrival times (ms) for ``n`` queries at a target rate."""

    def arrival_times_ms(
        self, n: int, rate_qps: float, rng: RngLike = None, start_time_ms: float = 0.0
    ) -> np.ndarray:
        """Absolute arrival times in milliseconds, sorted ascending, length ``n``."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivalProcess(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival times with mean ``1000 / rate``."""

    def arrival_times_ms(
        self, n: int, rate_qps: float, rng: RngLike = None, start_time_ms: float = 0.0
    ) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be non-negative")
        check_positive(rate_qps, "rate_qps")
        check_non_negative(start_time_ms, "start_time_ms")
        if n == 0:
            return np.empty(0, dtype=float)
        gen = ensure_rng(rng)
        mean_gap_ms = 1000.0 / rate_qps
        gaps = gen.exponential(scale=mean_gap_ms, size=n)
        return start_time_ms + np.cumsum(gaps)


@dataclass(frozen=True)
class DeterministicArrivalProcess(ArrivalProcess):
    """Evenly spaced arrivals at exactly the target rate (no randomness)."""

    def arrival_times_ms(
        self, n: int, rate_qps: float, rng: RngLike = None, start_time_ms: float = 0.0
    ) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be non-negative")
        check_positive(rate_qps, "rate_qps")
        check_non_negative(start_time_ms, "start_time_ms")
        if n == 0:
            return np.empty(0, dtype=float)
        gap_ms = 1000.0 / rate_qps
        return start_time_ms + gap_ms * np.arange(1, n + 1, dtype=float)


@dataclass(frozen=True)
class BurstyArrivalProcess(ArrivalProcess):
    """Arrivals in bursts: groups of ``burst_size`` queries share one Poisson arrival slot.

    Not used by the paper's headline experiments but useful for stress-testing the
    query-distribution mechanism, which must handle many queries arriving concurrently.
    """

    burst_size: int = 4

    def __post_init__(self) -> None:
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")

    def arrival_times_ms(
        self, n: int, rate_qps: float, rng: RngLike = None, start_time_ms: float = 0.0
    ) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be non-negative")
        check_positive(rate_qps, "rate_qps")
        if n == 0:
            return np.empty(0, dtype=float)
        gen = ensure_rng(rng)
        n_bursts = int(np.ceil(n / self.burst_size))
        burst_rate = rate_qps / self.burst_size
        mean_gap_ms = 1000.0 / burst_rate
        gaps = gen.exponential(scale=mean_gap_ms, size=n_bursts)
        burst_times = start_time_ms + np.cumsum(gaps)
        times = np.repeat(burst_times, self.burst_size)[:n]
        return times
