"""Simple query-trace persistence and synthesis.

The paper replays a production trace of query batch sizes.  The reproduction synthesizes
equivalent traces (``synthesize_trace``) and can persist/reload them as plain CSV so
experiments are repeatable byte-for-byte without regeneration.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.utils.rng import RngLike
from repro.utils.validation import check_positive, check_positive_int
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.query import Query

_FIELDS = ("query_id", "batch_size", "arrival_time_ms")


def save_trace(queries: Iterable[Query], path: Union[str, Path]) -> Path:
    """Write queries to a CSV trace file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS)
        for q in queries:
            writer.writerow([q.query_id, q.batch_size, f"{q.arrival_time_ms:.6f}"])
    return path


def load_trace(path: Union[str, Path]) -> List[Query]:
    """Read a CSV trace file written by :func:`save_trace`."""
    path = Path(path)
    queries: List[Query] = []
    with path.open("r", newline="") as fh:
        reader = csv.DictReader(fh)
        missing = [f for f in _FIELDS if f not in (reader.fieldnames or [])]
        if missing:
            raise ValueError(f"trace file {path} is missing columns: {missing}")
        for row in reader:
            queries.append(
                Query(
                    query_id=int(row["query_id"]),
                    batch_size=int(row["batch_size"]),
                    arrival_time_ms=float(row["arrival_time_ms"]),
                )
            )
    return queries


def synthesize_trace(
    num_queries: int,
    rate_qps: float,
    *,
    batch_sizes: Optional[BatchSizeDistribution] = None,
    rng: RngLike = None,
) -> List[Query]:
    """Generate a synthetic production-like trace (log-normal batches, Poisson arrivals)."""
    check_positive_int(num_queries, "num_queries")
    check_positive(rate_qps, "rate_qps")
    dist = batch_sizes if batch_sizes is not None else production_batch_distribution()
    spec = WorkloadSpec(batch_sizes=dist, num_queries=num_queries)
    return WorkloadGenerator(spec).generate(rate_qps, rng)
