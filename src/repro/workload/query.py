"""Inference queries.

A *query* is a batch of individual inference requests submitted together (the paper's
terminology); its ``batch_size`` is the number of requests in the batch.  The query's
QoS clock starts at its arrival time: it must complete within the model's QoS target of
its arrival, including any time spent waiting in the central queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils.validation import check_non_negative, check_positive_int


@dataclass(frozen=True, order=False, slots=True)
class Query:
    """A single inference query (a batch of requests).

    Attributes
    ----------
    query_id:
        Unique identifier within a workload (monotone in arrival order by convention).
    batch_size:
        Number of requests batched into the query (1 .. model max batch size).
    arrival_time_ms:
        Simulated wall-clock arrival time in milliseconds.
    model_name:
        The served model this query targets.  ``None`` (the default) means the single
        model of the cluster, preserving the original single-model workloads byte for
        byte; multi-model clusters require every query to be tagged so the central
        controller can route it to an instance hosting the right model.
    """

    query_id: int
    batch_size: int
    arrival_time_ms: float
    model_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.query_id < 0:
            raise ValueError(f"query_id must be non-negative, got {self.query_id}")
        check_positive_int(self.batch_size, "batch_size")
        check_non_negative(self.arrival_time_ms, "arrival_time_ms")
        if self.model_name is not None and not self.model_name:
            raise ValueError("model_name must be None or non-empty")

    def deadline_ms(self, qos_ms: float) -> float:
        """Absolute completion deadline implied by a QoS target."""
        return self.arrival_time_ms + qos_ms

    def waiting_time_ms(self, now_ms: float) -> float:
        """Time the query has already spent waiting at simulated time ``now_ms``.

        This is the ``W_i`` term of the paper's QoS constraint (Eq. 3); it is clamped at
        zero for times before the arrival.
        """
        return max(0.0, now_ms - self.arrival_time_ms)

    def with_arrival_time(self, arrival_time_ms: float) -> "Query":
        """Copy of the query shifted to a new arrival time (used by trace replay)."""
        return Query(self.query_id, self.batch_size, float(arrival_time_ms), self.model_name)

    def for_model(self, model_name: str) -> "Query":
        """Copy of the query tagged with the model it targets (multi-model workloads)."""
        return Query(self.query_id, self.batch_size, self.arrival_time_ms, model_name)

    def with_query_id(self, query_id: int) -> "Query":
        """Copy with a new id (used when interleaving per-model streams globally)."""
        return Query(int(query_id), self.batch_size, self.arrival_time_ms, self.model_name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = f", {self.model_name}" if self.model_name else ""
        return f"Q{self.query_id}(b={self.batch_size}, t={self.arrival_time_ms:.2f}ms{tag})"
