"""Workload generation: combine a batch-size distribution with an arrival process.

A :class:`WorkloadSpec` captures everything that defines a query stream except the
arrival rate (which the allowable-throughput search sweeps), so experiments pass a spec
plus a rate and get a concrete list of :class:`~repro.workload.query.Query` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int
from repro.workload.arrivals import ArrivalProcess, PoissonArrivalProcess
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution
from repro.workload.query import Query


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a query stream.

    Attributes
    ----------
    batch_sizes:
        Distribution of query batch sizes.
    arrivals:
        Arrival process (Poisson by default, as in the paper).
    num_queries:
        How many queries a single generated workload contains.
    """

    batch_sizes: BatchSizeDistribution = field(default_factory=production_batch_distribution)
    arrivals: ArrivalProcess = field(default_factory=PoissonArrivalProcess)
    num_queries: int = 2000

    def __post_init__(self) -> None:
        check_positive_int(self.num_queries, "num_queries")

    def with_num_queries(self, num_queries: int) -> "WorkloadSpec":
        return replace(self, num_queries=num_queries)

    def with_batch_sizes(self, batch_sizes: BatchSizeDistribution) -> "WorkloadSpec":
        return replace(self, batch_sizes=batch_sizes)


class WorkloadGenerator:
    """Generates concrete query streams from a :class:`WorkloadSpec`."""

    def __init__(self, spec: Optional[WorkloadSpec] = None):
        self.spec = spec if spec is not None else WorkloadSpec()

    def generate(
        self,
        rate_qps: float,
        rng: RngLike = None,
        *,
        num_queries: Optional[int] = None,
        start_time_ms: float = 0.0,
        first_query_id: int = 0,
    ) -> List[Query]:
        """Generate a list of queries arriving at an average of ``rate_qps``.

        The batch-size stream and the arrival stream are drawn from independent child
        generators of ``rng`` so that changing the arrival rate does not perturb the
        batch-size sequence — important for apples-to-apples capacity searches.
        """
        check_positive(rate_qps, "rate_qps")
        n = num_queries if num_queries is not None else self.spec.num_queries
        check_positive_int(n, "num_queries")
        gen = ensure_rng(rng)
        batch_rng, arrival_rng = _independent_children(gen, 2)
        batches = self.spec.batch_sizes.sample(n, batch_rng)
        times = self.spec.arrivals.arrival_times_ms(
            n, rate_qps, arrival_rng, start_time_ms=start_time_ms
        )
        return [
            Query(query_id=first_query_id + i, batch_size=int(batches[i]), arrival_time_ms=float(times[i]))
            for i in range(n)
        ]

    def sample_batch_sizes(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw only batch sizes (used by the planner's query monitor warm-up)."""
        return self.spec.batch_sizes.sample(n, rng)


def _independent_children(gen: np.random.Generator, n: int) -> List[np.random.Generator]:
    seeds = gen.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def queries_from_batches(
    batch_sizes: Sequence[int],
    arrival_times_ms: Sequence[float],
    *,
    first_query_id: int = 0,
) -> List[Query]:
    """Build queries directly from parallel batch-size / arrival-time sequences."""
    if len(batch_sizes) != len(arrival_times_ms):
        raise ValueError("batch_sizes and arrival_times_ms must have the same length")
    return [
        Query(query_id=first_query_id + i, batch_size=int(b), arrival_time_ms=float(t))
        for i, (b, t) in enumerate(zip(batch_sizes, arrival_times_ms))
    ]
