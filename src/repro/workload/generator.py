"""Workload generation: combine a batch-size distribution with an arrival process.

A :class:`WorkloadSpec` captures everything that defines a query stream except the
arrival rate (which the allowable-throughput search sweeps), so experiments pass a spec
plus a rate and get a concrete list of :class:`~repro.workload.query.Query` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int
from repro.workload.arrivals import ArrivalProcess, PoissonArrivalProcess
from repro.workload.batch_sizes import BatchSizeDistribution, production_batch_distribution
from repro.workload.query import Query


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a query stream.

    Attributes
    ----------
    batch_sizes:
        Distribution of query batch sizes.
    arrivals:
        Arrival process (Poisson by default, as in the paper).
    num_queries:
        How many queries a single generated workload contains.
    model_name:
        Optional model tag stamped on every generated query (multi-model clusters);
        ``None`` generates untagged single-model streams exactly as before.
    """

    batch_sizes: BatchSizeDistribution = field(default_factory=production_batch_distribution)
    arrivals: ArrivalProcess = field(default_factory=PoissonArrivalProcess)
    num_queries: int = 2000
    model_name: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_queries, "num_queries")

    def with_num_queries(self, num_queries: int) -> "WorkloadSpec":
        return replace(self, num_queries=num_queries)

    def with_batch_sizes(self, batch_sizes: BatchSizeDistribution) -> "WorkloadSpec":
        return replace(self, batch_sizes=batch_sizes)

    def for_model(self, model_name: Optional[str]) -> "WorkloadSpec":
        return replace(self, model_name=model_name)


class WorkloadGenerator:
    """Generates concrete query streams from a :class:`WorkloadSpec`."""

    def __init__(self, spec: Optional[WorkloadSpec] = None):
        self.spec = spec if spec is not None else WorkloadSpec()

    def generate(
        self,
        rate_qps: float,
        rng: RngLike = None,
        *,
        num_queries: Optional[int] = None,
        start_time_ms: float = 0.0,
        first_query_id: int = 0,
    ) -> List[Query]:
        """Generate a list of queries arriving at an average of ``rate_qps``.

        The batch-size stream and the arrival stream are drawn from independent child
        generators of ``rng`` so that changing the arrival rate does not perturb the
        batch-size sequence — important for apples-to-apples capacity searches.
        """
        check_positive(rate_qps, "rate_qps")
        n = num_queries if num_queries is not None else self.spec.num_queries
        check_positive_int(n, "num_queries")
        gen = ensure_rng(rng)
        batch_rng, arrival_rng = _independent_children(gen, 2)
        batches = self.spec.batch_sizes.sample(n, batch_rng)
        times = self.spec.arrivals.arrival_times_ms(
            n, rate_qps, arrival_rng, start_time_ms=start_time_ms
        )
        return [
            Query(
                query_id=first_query_id + i,
                batch_size=int(batches[i]),
                arrival_time_ms=float(times[i]),
                model_name=self.spec.model_name,
            )
            for i in range(n)
        ]

    def sample_batch_sizes(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw only batch sizes (used by the planner's query monitor warm-up)."""
        return self.spec.batch_sizes.sample(n, rng)


def _independent_children(gen: np.random.Generator, n: int) -> List[np.random.Generator]:
    seeds = gen.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def interleave_model_streams(streams: Mapping[str, Sequence[Query]]) -> List[Query]:
    """Merge per-model query streams into one arrival-ordered multi-model stream.

    Every query is tagged with its stream's model name and re-numbered with a global
    id in arrival order (model order in ``streams`` breaks arrival-time ties, original
    ids break ties within one stream), so the merged stream satisfies the simulator's
    "ids monotone in arrival order" convention and ids are globally unique.
    """
    order = {name: rank for rank, name in enumerate(streams)}
    tagged = [
        q if q.model_name == name else q.for_model(name)
        for name, queries in streams.items()
        for q in queries
    ]
    tagged.sort(key=lambda q: (q.arrival_time_ms, order[q.model_name], q.query_id))
    return [q.with_query_id(i) for i, q in enumerate(tagged)]


def queries_from_batches(
    batch_sizes: Sequence[int],
    arrival_times_ms: Sequence[float],
    *,
    first_query_id: int = 0,
) -> List[Query]:
    """Build queries directly from parallel batch-size / arrival-time sequences."""
    if len(batch_sizes) != len(arrival_times_ms):
        raise ValueError("batch_sizes and arrival_times_ms must have the same length")
    return [
        Query(query_id=first_query_id + i, batch_size=int(b), arrival_time_ms=float(t))
        for i, (b, t) in enumerate(zip(batch_sizes, arrival_times_ms))
    ]
