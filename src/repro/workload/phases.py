"""Multi-phase workloads: distribution shifts and trace-driven load phases.

Sec. 8.4 / Fig. 12 of the paper evaluates the transient behaviour when the query-size
probability distribution changes (log-normal → Gaussian): every scheme must restart its
configuration search, and the figure tracks the throughput of the configurations each
scheme evaluates during the transient.  :class:`PhasedWorkloadGenerator` produces the
corresponding query streams and exposes per-phase boundaries so experiments can detect
the change point.

The online-elasticity subsystem generalizes this to *arrival-rate* phases:
:class:`LoadPhase` describes one span of trace time (a constant step, a linear ramp, a
sinusoidal diurnal swing, or a bursty spike) and :class:`PhasedTrace` composes phases
into one continuous query stream, replaying each phase through the existing
:class:`~repro.workload.generator.WorkloadSpec` arrival-process machinery
(time-varying rates are approximated piecewise-constant over ``segments`` slices of
the phase).  The resulting stream drives the elastic simulator
(:mod:`repro.sim.elasticity`) and the re-planning controller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_non_negative, check_positive, check_positive_int
from repro.workload.arrivals import ArrivalProcess
from repro.workload.batch_sizes import BatchSizeDistribution
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.query import Query


@dataclass(frozen=True)
class WorkloadPhase:
    """One phase of a phased workload: a batch-size distribution and a query count."""

    batch_sizes: BatchSizeDistribution
    num_queries: int
    label: str = ""

    def __post_init__(self) -> None:
        check_positive_int(self.num_queries, "num_queries")


class PhasedWorkloadGenerator:
    """Concatenates per-phase workloads into one continuous query stream."""

    def __init__(self, phases: Sequence[WorkloadPhase], spec: Optional[WorkloadSpec] = None):
        if not phases:
            raise ValueError("need at least one phase")
        self.phases: Tuple[WorkloadPhase, ...] = tuple(phases)
        self._base_spec = spec if spec is not None else WorkloadSpec()

    def generate(
        self, rate_qps: float, rng: RngLike = None, *, start_time_ms: float = 0.0
    ) -> Tuple[List[Query], List[int]]:
        """Generate the full stream.

        Returns
        -------
        queries:
            All phases concatenated, with globally increasing query ids and arrival times.
        phase_boundaries:
            Index (into ``queries``) of the first query of each phase after the first —
            i.e. the change points.  Empty when there is a single phase.
        """
        check_positive(rate_qps, "rate_qps")
        gen = ensure_rng(rng)
        child_rngs = spawn_rngs(gen, len(self.phases))
        queries: List[Query] = []
        boundaries: List[int] = []
        clock = float(start_time_ms)
        next_id = 0
        for phase_idx, phase in enumerate(self.phases):
            if phase_idx > 0:
                boundaries.append(len(queries))
            spec = self._base_spec.with_batch_sizes(phase.batch_sizes).with_num_queries(
                phase.num_queries
            )
            phase_queries = WorkloadGenerator(spec).generate(
                rate_qps,
                child_rngs[phase_idx],
                start_time_ms=clock,
                first_query_id=next_id,
            )
            queries.extend(phase_queries)
            next_id += len(phase_queries)
            if phase_queries:
                clock = phase_queries[-1].arrival_time_ms
        return queries, boundaries

    def phase_of_query(self, query_index: int, boundaries: Sequence[int]) -> int:
        """Phase index of the query at position ``query_index`` given the boundaries."""
        phase = 0
        for b in boundaries:
            if query_index >= b:
                phase += 1
        return phase


# ---------------------------------------------------------------------------------------
# Trace-driven load phases (online elasticity)
# ---------------------------------------------------------------------------------------

@dataclass(frozen=True)
class LoadPhase:
    """One span of trace time with a (possibly time-varying) arrival rate.

    Build instances through the shape constructors (:meth:`step`, :meth:`ramp`,
    :meth:`diurnal`, :meth:`spike`) rather than positionally; the raw fields exist so
    the dataclass stays frozen/hashable for deterministic replay.

    Attributes
    ----------
    duration_ms:
        Length of the phase in trace time.
    rate_qps:
        Arrival rate at the start of the phase (the mean rate for diurnal phases and
        the baseline rate for spike phases).
    end_rate_qps:
        Ramp target rate; ``None`` for non-ramp shapes.
    amplitude_qps / period_ms:
        Sinusoidal swing of a diurnal phase around ``rate_qps``; ``period_ms`` defaults
        to the phase duration (one full day-cycle per phase).
    spike_factor / spike_start_frac / spike_duration_frac:
        A bursty spike multiplies the baseline by ``spike_factor`` over the window
        ``[spike_start_frac, spike_start_frac + spike_duration_frac)`` of the phase.
    segments:
        Piecewise-constant replay resolution for time-varying shapes (constant shapes
        always use one segment).
    batch_sizes:
        Optional per-phase batch-size distribution override (``None`` = the trace
        spec's distribution).
    label:
        Phase name used in reports and boundary metadata.
    """

    duration_ms: float
    rate_qps: float
    end_rate_qps: Optional[float] = None
    amplitude_qps: float = 0.0
    period_ms: Optional[float] = None
    spike_factor: float = 1.0
    spike_start_frac: float = 0.0
    spike_duration_frac: float = 0.0
    segments: int = 8
    batch_sizes: Optional[BatchSizeDistribution] = None
    label: str = ""

    def __post_init__(self) -> None:
        check_positive(self.duration_ms, "duration_ms")
        check_positive(self.rate_qps, "rate_qps")
        if self.end_rate_qps is not None:
            check_positive(self.end_rate_qps, "end_rate_qps")
        check_non_negative(self.amplitude_qps, "amplitude_qps")
        if self.amplitude_qps >= self.rate_qps:
            raise ValueError("diurnal amplitude must stay below the mean rate")
        if self.period_ms is not None:
            check_positive(self.period_ms, "period_ms")
        if self.spike_factor < 1.0:
            raise ValueError("spike_factor must be >= 1")
        if not 0.0 <= self.spike_start_frac <= 1.0:
            raise ValueError("spike_start_frac must be in [0, 1]")
        if not 0.0 <= self.spike_duration_frac <= 1.0 - self.spike_start_frac:
            raise ValueError("spike window must fit inside the phase")
        check_positive_int(self.segments, "segments")

    # -- shape constructors ------------------------------------------------------------
    @classmethod
    def step(cls, rate_qps: float, duration_ms: float, *, label: str = "step", **kw) -> "LoadPhase":
        """A constant-rate phase (a step relative to whatever preceded it)."""
        return cls(duration_ms=duration_ms, rate_qps=rate_qps, segments=1, label=label, **kw)

    @classmethod
    def ramp(
        cls,
        start_qps: float,
        end_qps: float,
        duration_ms: float,
        *,
        segments: int = 8,
        label: str = "ramp",
        **kw,
    ) -> "LoadPhase":
        """A linear rate ramp from ``start_qps`` to ``end_qps``."""
        return cls(
            duration_ms=duration_ms,
            rate_qps=start_qps,
            end_rate_qps=end_qps,
            segments=segments,
            label=label,
            **kw,
        )

    @classmethod
    def diurnal(
        cls,
        mean_qps: float,
        amplitude_qps: float,
        duration_ms: float,
        *,
        period_ms: Optional[float] = None,
        segments: int = 12,
        label: str = "diurnal",
        **kw,
    ) -> "LoadPhase":
        """A sinusoidal day/night swing around ``mean_qps``."""
        return cls(
            duration_ms=duration_ms,
            rate_qps=mean_qps,
            amplitude_qps=amplitude_qps,
            period_ms=period_ms,
            segments=segments,
            label=label,
            **kw,
        )

    @classmethod
    def spike(
        cls,
        base_qps: float,
        duration_ms: float,
        *,
        spike_factor: float = 3.0,
        spike_start_frac: float = 0.4,
        spike_duration_frac: float = 0.2,
        segments: int = 10,
        label: str = "spike",
        **kw,
    ) -> "LoadPhase":
        """A baseline rate with a transient burst of ``spike_factor`` × the baseline."""
        return cls(
            duration_ms=duration_ms,
            rate_qps=base_qps,
            spike_factor=spike_factor,
            spike_start_frac=spike_start_frac,
            spike_duration_frac=spike_duration_frac,
            segments=segments,
            label=label,
            **kw,
        )

    # -- rate profile ------------------------------------------------------------------
    def rate_at(self, offset_ms: float) -> float:
        """Instantaneous arrival rate ``offset_ms`` into the phase."""
        offset = min(max(offset_ms, 0.0), self.duration_ms)
        rate = self.rate_qps
        if self.end_rate_qps is not None:
            frac = offset / self.duration_ms
            rate = self.rate_qps + (self.end_rate_qps - self.rate_qps) * frac
        if self.amplitude_qps > 0.0:
            period = self.period_ms if self.period_ms is not None else self.duration_ms
            rate += self.amplitude_qps * math.sin(2.0 * math.pi * offset / period)
        if self.spike_factor > 1.0 and self.spike_duration_frac > 0.0:
            s0 = self.spike_start_frac * self.duration_ms
            s1 = s0 + self.spike_duration_frac * self.duration_ms
            if s0 <= offset < s1:
                rate *= self.spike_factor
        return rate

    def mean_rate_qps(self) -> float:
        """Mean offered rate over the phase (segment-midpoint quadrature)."""
        n = max(self.segments, 8)
        width = self.duration_ms / n
        return sum(self.rate_at((i + 0.5) * width) for i in range(n)) / n

    @property
    def is_constant(self) -> bool:
        return (
            self.end_rate_qps is None
            and self.amplitude_qps == 0.0
            and (self.spike_factor == 1.0 or self.spike_duration_frac == 0.0)
        )


@dataclass(frozen=True)
class PhasedTraceResult:
    """A generated trace: the queries plus where each phase starts and ends."""

    queries: Tuple[Query, ...]
    phase_starts_ms: Tuple[float, ...]  # length = #phases + 1; last entry = trace end
    boundaries: Tuple[int, ...]  # query index of each phase's first query (after phase 0)
    labels: Tuple[str, ...]

    @property
    def num_phases(self) -> int:
        return len(self.labels)

    @property
    def duration_ms(self) -> float:
        return self.phase_starts_ms[-1] - self.phase_starts_ms[0]

    def phase_window_ms(self, phase_index: int) -> Tuple[float, float]:
        """``[start, end)`` trace-time window of one phase."""
        if not 0 <= phase_index < self.num_phases:
            raise IndexError(f"no phase {phase_index} in a {self.num_phases}-phase trace")
        return self.phase_starts_ms[phase_index], self.phase_starts_ms[phase_index + 1]

    def phase_of_time(self, t_ms: float) -> int:
        """Index of the phase whose window contains ``t_ms`` (clamped at the ends)."""
        for i in range(self.num_phases):
            if t_ms < self.phase_starts_ms[i + 1]:
                return i
        return self.num_phases - 1

    def queries_in_phase(self, phase_index: int) -> List[Query]:
        t0, t1 = self.phase_window_ms(phase_index)
        return [q for q in self.queries if t0 <= q.arrival_time_ms < t1]


class PhasedTrace:
    """Compose :class:`LoadPhase` spans into one continuous, reproducible query stream.

    Each phase is replayed through the trace spec's arrival process at the phase's
    rate; time-varying shapes are split into ``phase.segments`` piecewise-constant
    slices, each replayed at its midpoint rate.  Arrivals are generated until the
    phase window is full and truncated at the half-open boundary (an arrival landing
    exactly on a phase end belongs to no window) — for the default Poisson process
    this is an exact inhomogeneous-Poisson replay up to the segment approximation, and
    for the deterministic process it yields evenly spaced arrivals strictly inside
    each window.
    """

    def __init__(self, phases: Sequence[LoadPhase], spec: Optional[WorkloadSpec] = None):
        if not phases:
            raise ValueError("need at least one load phase")
        self.phases: Tuple[LoadPhase, ...] = tuple(phases)
        self.spec = spec if spec is not None else WorkloadSpec()

    @property
    def total_duration_ms(self) -> float:
        return sum(p.duration_ms for p in self.phases)

    def rate_at(self, t_ms: float, *, start_time_ms: float = 0.0) -> float:
        """Offered arrival rate of the composed trace at absolute time ``t_ms``."""
        offset = t_ms - start_time_ms
        for phase in self.phases:
            if offset < phase.duration_ms:
                return phase.rate_at(offset)
            offset -= phase.duration_ms
        return self.phases[-1].rate_at(self.phases[-1].duration_ms)

    def generate(self, rng: RngLike = None, *, start_time_ms: float = 0.0) -> PhasedTraceResult:
        """Generate the full stream with per-phase boundaries (deterministic per seed)."""
        check_non_negative(start_time_ms, "start_time_ms")
        gen = ensure_rng(rng)
        phase_rngs = spawn_rngs(gen, len(self.phases))
        queries: List[Query] = []
        boundaries: List[int] = []
        phase_starts: List[float] = [float(start_time_ms)]
        t = float(start_time_ms)
        for phase_idx, phase in enumerate(self.phases):
            if phase_idx > 0:
                boundaries.append(len(queries))
            arrival_rng, batch_rng = spawn_rngs(phase_rngs[phase_idx], 2)
            times = self._phase_arrival_times(phase, t, arrival_rng)
            dist = phase.batch_sizes if phase.batch_sizes is not None else self.spec.batch_sizes
            batches = dist.sample(len(times), batch_rng) if times else []
            base_id = len(queries)
            queries.extend(
                Query(
                    query_id=base_id + i,
                    batch_size=int(batches[i]),
                    arrival_time_ms=float(times[i]),
                )
                for i in range(len(times))
            )
            t += phase.duration_ms
            phase_starts.append(t)
        return PhasedTraceResult(
            queries=tuple(queries),
            phase_starts_ms=tuple(phase_starts),
            boundaries=tuple(boundaries),
            labels=tuple(
                p.label if p.label else f"phase{idx}" for idx, p in enumerate(self.phases)
            ),
        )

    # -- internals ---------------------------------------------------------------------
    def _phase_arrival_times(
        self, phase: LoadPhase, phase_start_ms: float, rng: np.random.Generator
    ) -> List[float]:
        n_segments = 1 if phase.is_constant else phase.segments
        seg_width = phase.duration_ms / n_segments
        times: List[float] = []
        for seg in range(n_segments):
            seg_start = phase_start_ms + seg * seg_width
            seg_end = seg_start + seg_width
            rate = phase.rate_at((seg + 0.5) * seg_width)
            times.extend(
                _arrivals_in_window(self.spec.arrivals, rate, seg_start, seg_end, rng)
            )
        return times


@dataclass(frozen=True)
class MultiModelTraceResult:
    """An interleaved multi-model trace plus each model's own phased view.

    ``queries`` is the merged arrival-ordered stream with model tags and globally
    unique ids; ``per_model`` keeps each model's :class:`PhasedTraceResult` (with its
    original per-stream ids) so per-phase windows and offered rates stay queryable
    per model.
    """

    queries: Tuple[Query, ...]
    per_model: "Dict[str, PhasedTraceResult]"

    @property
    def model_names(self) -> Tuple[str, ...]:
        return tuple(self.per_model)

    def queries_of_model(self, model_name: str) -> List[Query]:
        return [q for q in self.queries if q.model_name == model_name]


class MultiModelTrace:
    """Compose one :class:`PhasedTrace` per co-located model into one query stream.

    Each model's trace is generated with an independent child generator (spawned in
    the mapping's model order, so the composition is deterministic per seed), its
    queries are tagged with the model name, and the streams are interleaved in global
    arrival order via
    :func:`~repro.workload.generator.interleave_model_streams` — the arrival shape a
    co-located cluster actually sees.
    """

    def __init__(self, traces: "Mapping[str, PhasedTrace]"):
        if not traces:
            raise ValueError("need at least one model trace")
        self.traces: "Dict[str, PhasedTrace]" = dict(traces)

    def generate(self, rng: RngLike = None, *, start_time_ms: float = 0.0) -> MultiModelTraceResult:
        from repro.workload.generator import interleave_model_streams

        gen = ensure_rng(rng)
        child_rngs = spawn_rngs(gen, len(self.traces))
        per_model: Dict[str, PhasedTraceResult] = {}
        for child, (name, trace) in zip(child_rngs, self.traces.items()):
            per_model[name] = trace.generate(child, start_time_ms=start_time_ms)
        merged = interleave_model_streams(
            {name: list(result.queries) for name, result in per_model.items()}
        )
        return MultiModelTraceResult(queries=tuple(merged), per_model=per_model)


def _arrivals_in_window(
    process: ArrivalProcess,
    rate_qps: float,
    t0_ms: float,
    t1_ms: float,
    rng: np.random.Generator,
) -> List[float]:
    """Replay ``process`` at a constant rate over ``[t0_ms, t1_ms)``.

    The process API is count-based, so arrivals are drawn in chunks continuing from the
    last generated time until the window is covered, then truncated at the boundary.
    Chunked continuation is exact for memoryless (Poisson) and evenly spaced
    (deterministic) processes alike.
    """
    expected = rate_qps * (t1_ms - t0_ms) / 1000.0
    chunk = max(4, int(math.ceil(expected * 2.0)) + 8)
    collected: List[float] = []
    cursor = t0_ms
    while True:
        batch = process.arrival_times_ms(chunk, rate_qps, rng, start_time_ms=cursor)
        collected.extend(float(x) for x in batch)
        if collected and collected[-1] >= t1_ms:
            break
        if len(batch) == 0:  # pragma: no cover - defensive; n >= 4 above
            break
        cursor = collected[-1]
    return [x for x in collected if x < t1_ms]
