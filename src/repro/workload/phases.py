"""Multi-phase workloads whose batch-size distribution changes over time.

Sec. 8.4 / Fig. 12 of the paper evaluates the transient behaviour when the query-size
probability distribution changes (log-normal → Gaussian): every scheme must restart its
configuration search, and the figure tracks the throughput of the configurations each
scheme evaluates during the transient.  :class:`PhasedWorkloadGenerator` produces the
corresponding query streams and exposes per-phase boundaries so experiments can detect
the change point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_positive, check_positive_int
from repro.workload.batch_sizes import BatchSizeDistribution
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.query import Query


@dataclass(frozen=True)
class WorkloadPhase:
    """One phase of a phased workload: a batch-size distribution and a query count."""

    batch_sizes: BatchSizeDistribution
    num_queries: int
    label: str = ""

    def __post_init__(self) -> None:
        check_positive_int(self.num_queries, "num_queries")


class PhasedWorkloadGenerator:
    """Concatenates per-phase workloads into one continuous query stream."""

    def __init__(self, phases: Sequence[WorkloadPhase], spec: Optional[WorkloadSpec] = None):
        if not phases:
            raise ValueError("need at least one phase")
        self.phases: Tuple[WorkloadPhase, ...] = tuple(phases)
        self._base_spec = spec if spec is not None else WorkloadSpec()

    def generate(
        self, rate_qps: float, rng: RngLike = None, *, start_time_ms: float = 0.0
    ) -> Tuple[List[Query], List[int]]:
        """Generate the full stream.

        Returns
        -------
        queries:
            All phases concatenated, with globally increasing query ids and arrival times.
        phase_boundaries:
            Index (into ``queries``) of the first query of each phase after the first —
            i.e. the change points.  Empty when there is a single phase.
        """
        check_positive(rate_qps, "rate_qps")
        gen = ensure_rng(rng)
        child_rngs = spawn_rngs(gen, len(self.phases))
        queries: List[Query] = []
        boundaries: List[int] = []
        clock = float(start_time_ms)
        next_id = 0
        for phase_idx, phase in enumerate(self.phases):
            if phase_idx > 0:
                boundaries.append(len(queries))
            spec = self._base_spec.with_batch_sizes(phase.batch_sizes).with_num_queries(
                phase.num_queries
            )
            phase_queries = WorkloadGenerator(spec).generate(
                rate_qps,
                child_rngs[phase_idx],
                start_time_ms=clock,
                first_query_id=next_id,
            )
            queries.extend(phase_queries)
            next_id += len(phase_queries)
            if phase_queries:
                clock = phase_queries[-1].arrival_time_ms
        return queries, boundaries

    def phase_of_query(self, query_index: int, boundaries: Sequence[int]) -> int:
        """Phase index of the query at position ``query_index`` given the boundaries."""
        phase = 0
        for b in boundaries:
            if query_index >= b:
                phase += 1
        return phase
