"""Workload substrate: queries, batch-size distributions, arrival processes, traces.

The paper drives its evaluation with the Meta production query-size trace and Poisson
arrivals.  This package regenerates statistically equivalent workloads: heavy-tailed
("production-like") batch-size mixes, Gaussian alternatives, Poisson or deterministic
arrivals, multi-phase workloads whose distribution shifts mid-run, and simple trace I/O.
"""

from repro.workload.query import Query
from repro.workload.batch_sizes import (
    BatchSizeDistribution,
    EmpiricalBatchSizes,
    FixedBatchSizes,
    GaussianBatchSizes,
    TruncatedLogNormalBatchSizes,
    production_batch_distribution,
)
from repro.workload.arrivals import (
    ArrivalProcess,
    DeterministicArrivalProcess,
    PoissonArrivalProcess,
)
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    interleave_model_streams,
)
from repro.workload.phases import (
    LoadPhase,
    MultiModelTrace,
    MultiModelTraceResult,
    PhasedTrace,
    PhasedTraceResult,
    PhasedWorkloadGenerator,
    WorkloadPhase,
)
from repro.workload.trace import load_trace, save_trace, synthesize_trace
from repro.workload.trace_io import (
    Trace,
    load_any_trace,
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
)

__all__ = [
    "Query",
    "BatchSizeDistribution",
    "TruncatedLogNormalBatchSizes",
    "GaussianBatchSizes",
    "EmpiricalBatchSizes",
    "FixedBatchSizes",
    "production_batch_distribution",
    "ArrivalProcess",
    "PoissonArrivalProcess",
    "DeterministicArrivalProcess",
    "WorkloadGenerator",
    "WorkloadSpec",
    "interleave_model_streams",
    "WorkloadPhase",
    "PhasedWorkloadGenerator",
    "LoadPhase",
    "PhasedTrace",
    "PhasedTraceResult",
    "MultiModelTrace",
    "MultiModelTraceResult",
    "load_trace",
    "save_trace",
    "synthesize_trace",
    "Trace",
    "load_any_trace",
    "load_trace_csv",
    "load_trace_jsonl",
    "save_trace_csv",
    "save_trace_jsonl",
]
