"""Request-trace ingestion: CSV/JSONL files <-> replayable :class:`Trace` objects.

``repro.workload.trace`` persists bare single-model query lists with truncated
timestamps; this module is the full-fidelity ingestion layer the scenario fuzzer and
the workload zoo share.  A :class:`Trace` wraps an arrival-ordered query sequence
(optionally model-tagged) plus free-form metadata, and round-trips **exactly**
through both supported formats:

* **CSV** — header ``query_id,batch_size,arrival_time_ms[,model_name]``; arrival
  times are written with ``repr`` so every float survives bit-for-bit.
* **JSONL** — one JSON object per line; lines whose object carries ``"meta"``
  hold trace metadata, all others are queries.

Exact round-tripping matters because fuzzer-found scenarios double as trace files:
a counterexample exported here must replay byte-identically through the simulators.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.workload.query import Query

_CSV_FIELDS = ("query_id", "batch_size", "arrival_time_ms", "model_name")


@dataclass(frozen=True)
class Trace:
    """An arrival-ordered, replayable request trace with optional metadata.

    Queries must be sorted by ``(arrival_time_ms, query_id)`` — the order every
    serving loop consumes them in — and carry unique ids.  ``meta`` is free-form
    provenance (source file, generating scenario, rates) persisted alongside the
    queries in JSONL form and ignored by CSV.
    """

    queries: Tuple[Query, ...]
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "queries", tuple(self.queries))
        object.__setattr__(self, "meta", dict(self.meta))
        seen = set()
        prev_key = None
        for q in self.queries:
            if q.query_id in seen:
                raise ValueError(f"duplicate query_id {q.query_id} in trace")
            seen.add(q.query_id)
            key = (q.arrival_time_ms, q.query_id)
            if prev_key is not None and key < prev_key:
                raise ValueError(
                    "trace queries must be sorted by (arrival_time_ms, query_id); "
                    f"{key} follows {prev_key}"
                )
            prev_key = key

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    @property
    def model_names(self) -> Tuple[str, ...]:
        """Distinct model tags in first-appearance order (untagged queries excluded)."""
        return tuple(
            dict.fromkeys(q.model_name for q in self.queries if q.model_name is not None)
        )

    @property
    def start_ms(self) -> float:
        """Arrival time of the first query (0 for an empty trace)."""
        return self.queries[0].arrival_time_ms if self.queries else 0.0

    @property
    def end_ms(self) -> float:
        """Arrival time of the last query (0 for an empty trace)."""
        return self.queries[-1].arrival_time_ms if self.queries else 0.0

    @property
    def duration_ms(self) -> float:
        """The arrival *span* ``end_ms - start_ms``.

        This is a duration, not an end time: a committed trace slice whose first
        arrival sits at an arbitrary origin ``t0`` has the same duration as the same
        slice re-based to zero.  Offered-rate computations must divide by this span
        (dividing by ``end_ms`` deflates the rate of any offset-origin trace).
        """
        return self.end_ms - self.start_ms

    def for_model(self, model_name: str) -> "Trace":
        """Sub-trace of one model's queries (ids and arrival times preserved)."""
        return Trace(
            tuple(q for q in self.queries if q.model_name == model_name),
            dict(self.meta, model_name=model_name),
        )

    @classmethod
    def from_queries(
        cls,
        queries: Iterable[Query],
        meta: Optional[Mapping[str, object]] = None,
    ) -> "Trace":
        """Build a trace from any query iterable, sorting into canonical order."""
        ordered = sorted(queries, key=lambda q: (q.arrival_time_ms, q.query_id))
        return cls(tuple(ordered), meta or {})


# ---------------------------------------------------------------------------------------
# CSV
# ---------------------------------------------------------------------------------------

def save_trace_csv(trace: Union[Trace, Sequence[Query]], path: Union[str, Path]) -> Path:
    """Write a trace as CSV with full float fidelity (``repr`` timestamps)."""
    queries = trace.queries if isinstance(trace, Trace) else tuple(trace)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_FIELDS)
        for q in queries:
            # Query guarantees model_name is None or non-empty, so writing "" for
            # None (and mapping "" back to None on load) is an exact round trip —
            # no real query can collide with the empty-string encoding.
            writer.writerow(
                [q.query_id, q.batch_size, repr(q.arrival_time_ms), q.model_name or ""]
            )
    return path


def load_trace_csv(path: Union[str, Path]) -> Trace:
    """Read a CSV trace written by :func:`save_trace_csv`.

    Also accepts the legacy three-column format of ``repro.workload.trace`` (no
    ``model_name`` column): those queries load untagged.
    """
    path = Path(path)
    queries: List[Query] = []
    with path.open("r", newline="") as fh:
        reader = csv.DictReader(fh)
        fields = reader.fieldnames or []
        required = [f for f in _CSV_FIELDS[:3] if f not in fields]
        if required:
            raise ValueError(f"trace file {path} is missing columns: {required}")
        for row in reader:
            model = row.get("model_name") or None
            queries.append(
                Query(
                    query_id=int(row["query_id"]),
                    batch_size=int(row["batch_size"]),
                    arrival_time_ms=float(row["arrival_time_ms"]),
                    model_name=model,
                )
            )
    return Trace.from_queries(queries, {"source": str(path), "format": "csv"})


# ---------------------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------------------

def save_trace_jsonl(trace: Union[Trace, Sequence[Query]], path: Union[str, Path]) -> Path:
    """Write a trace as JSONL: an optional leading meta line, then one query per line."""
    if isinstance(trace, Trace):
        queries, meta = trace.queries, dict(trace.meta)
    else:
        queries, meta = tuple(trace), {}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        if meta:
            fh.write(json.dumps({"meta": meta}, sort_keys=True) + "\n")
        for q in queries:
            record: Dict[str, object] = {
                "query_id": q.query_id,
                "batch_size": q.batch_size,
                "arrival_time_ms": q.arrival_time_ms,
            }
            if q.model_name is not None:
                record["model_name"] = q.model_name
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_trace_jsonl(path: Union[str, Path]) -> Trace:
    """Read a JSONL trace written by :func:`save_trace_jsonl`."""
    path = Path(path)
    queries: List[Query] = []
    meta: Dict[str, object] = {}
    with path.open("r") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "meta" in obj:
                meta.update(obj["meta"])
                continue
            try:
                queries.append(
                    Query(
                        query_id=int(obj["query_id"]),
                        batch_size=int(obj["batch_size"]),
                        arrival_time_ms=float(obj["arrival_time_ms"]),
                        model_name=obj.get("model_name"),
                    )
                )
            except KeyError as exc:
                raise ValueError(f"{path}:{line_no}: query line missing field {exc}") from exc
    meta.setdefault("source", str(path))
    meta.setdefault("format", "jsonl")
    return Trace.from_queries(queries, meta)


def load_any_trace(path: Union[str, Path]) -> Trace:
    """Dispatch on extension: ``.jsonl``/``.ndjson`` -> JSONL, anything else -> CSV."""
    path = Path(path)
    if path.suffix.lower() in (".jsonl", ".ndjson"):
        return load_trace_jsonl(path)
    return load_trace_csv(path)
