"""Task graphs: DAG-structured inference pipelines with end-to-end deadlines.

A :class:`TaskGraph` is a frozen DAG of :class:`TaskStage`\\ s over the existing
:class:`~repro.workload.query.Query` machinery: each stage names the model it runs
on and the batch size of its work, and the *graph* carries one end-to-end deadline
(relative to its release instant) and a value used by graph-aware shedding.  The
reference design space is the TetriSched/Graphene lineage (release whole task
graphs, enforce end-to-end deadlines, prioritize by critical path) — see the
erdos-scheduling-simulator notes in SNIPPETS.md.

Validation happens at construction: stage names are unique, parents exist, the
graph is acyclic (Kahn's algorithm in declaration order, so iteration is
deterministic), and there is exactly one sink — the stage whose completion defines
the graph's end-to-end latency.

Critical paths are computed against a prediction callable
``predict(model_name, batch_size) -> ms`` — in the serving stack that is the
current :class:`~repro.core.latency_model.OnlineLatencyEstimator` belief (the
fastest type the model's partition offers), so the scheduler's notion of slack
sharpens as the online learner converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.utils.validation import check_positive

#: ``predict(model_name, batch_size) -> ms``: per-stage service-time belief.
StagePredictor = Callable[[str, int], float]


@dataclass(frozen=True)
class TaskStage:
    """One stage of a pipeline: a unit of work for one model at one batch size."""

    name: str
    model_name: str
    batch_size: int
    parents: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if not self.model_name:
            raise ValueError(f"stage {self.name!r} must name a model")
        if self.batch_size < 1:
            raise ValueError(f"stage {self.name!r} batch_size must be >= 1")
        object.__setattr__(self, "parents", tuple(self.parents))
        if len(set(self.parents)) != len(self.parents):
            raise ValueError(f"stage {self.name!r} lists a duplicate parent")
        if self.name in self.parents:
            raise ValueError(f"stage {self.name!r} cannot be its own parent")


@dataclass(frozen=True)
class TaskGraph:
    """A frozen DAG of stages with one end-to-end deadline and one value.

    ``deadline_ms`` is relative to ``release_ms`` (the instant the graph's source
    stages are offered); the absolute deadline is ``release_ms + deadline_ms``.
    ``value`` is the worth of completing the whole graph in time — graph-aware
    admission sheds lowest-value graphs first.
    """

    graph_id: int
    stages: Tuple[TaskStage, ...]
    deadline_ms: float
    value: float = 1.0
    release_ms: float = 0.0
    #: derived lookup structures (set in __post_init__, excluded from eq/repr)
    _by_name: Dict[str, TaskStage] = field(
        init=False, repr=False, compare=False, default=None
    )
    _children: Dict[str, Tuple[str, ...]] = field(
        init=False, repr=False, compare=False, default=None
    )
    _topo: Tuple[TaskStage, ...] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self):
        object.__setattr__(self, "stages", tuple(self.stages))
        if not self.stages:
            raise ValueError(f"graph {self.graph_id} has no stages")
        check_positive(self.deadline_ms, "deadline_ms")
        check_positive(self.value, "value")
        if self.release_ms < 0:
            raise ValueError("release_ms must be non-negative")
        by_name: Dict[str, TaskStage] = {}
        for stage in self.stages:
            if stage.name in by_name:
                raise ValueError(
                    f"graph {self.graph_id} declares stage {stage.name!r} twice"
                )
            by_name[stage.name] = stage
        children: Dict[str, List[str]] = {s.name: [] for s in self.stages}
        for stage in self.stages:
            for parent in stage.parents:
                if parent not in by_name:
                    raise ValueError(
                        f"graph {self.graph_id} stage {stage.name!r} names unknown "
                        f"parent {parent!r}"
                    )
                children[parent].append(stage.name)
        # Kahn's algorithm in declaration order: deterministic topological order and
        # the acyclicity check in one pass.
        indegree = {s.name: len(s.parents) for s in self.stages}
        ready = [s for s in self.stages if indegree[s.name] == 0]
        topo: List[TaskStage] = []
        while ready:
            stage = ready.pop(0)
            topo.append(stage)
            for child in children[stage.name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(by_name[child])
        if len(topo) != len(self.stages):
            cyclic = sorted(name for name, deg in indegree.items() if deg > 0)
            raise ValueError(f"graph {self.graph_id} has a cycle through {cyclic}")
        sinks = [name for name, kids in children.items() if not kids]
        if len(sinks) != 1:
            raise ValueError(
                f"graph {self.graph_id} must have exactly one sink stage, "
                f"found {sorted(sinks)}"
            )
        object.__setattr__(self, "_by_name", by_name)
        object.__setattr__(
            self, "_children", {name: tuple(kids) for name, kids in children.items()}
        )
        object.__setattr__(self, "_topo", tuple(topo))

    # -- structure ----------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.stages)

    def stage(self, name: str) -> TaskStage:
        return self._by_name[name]

    def children(self, name: str) -> Tuple[str, ...]:
        return self._children[name]

    def sources(self) -> Tuple[TaskStage, ...]:
        return tuple(s for s in self.stages if not s.parents)

    def sink(self) -> TaskStage:
        return next(s for s in self.stages if not self._children[s.name])

    def topological_order(self) -> Tuple[TaskStage, ...]:
        """Stages in a deterministic topological order (declaration-order Kahn)."""
        return self._topo

    def deadline_abs_ms(self) -> float:
        return self.release_ms + self.deadline_ms

    # -- critical paths -----------------------------------------------------------------
    def critical_path_remaining(self, predict: StagePredictor) -> Dict[str, float]:
        """Per-stage longest path (stage-inclusive) to the sink, in predicted ms.

        ``cpr[s] = predict(s) + max(cpr[child] for child)`` over the reverse
        topological order; the entry of a source on the longest chain equals
        :meth:`critical_path_ms`.
        """
        cpr: Dict[str, float] = {}
        for stage in reversed(self._topo):
            kids = self._children[stage.name]
            tail = max((cpr[k] for k in kids), default=0.0)
            cpr[stage.name] = predict(stage.model_name, stage.batch_size) + tail
        return cpr

    def critical_path_ms(self, predict: StagePredictor) -> float:
        """End-to-end critical-path length from the current predictions."""
        cpr = self.critical_path_remaining(predict)
        return max(cpr[s.name] for s in self.sources())
