"""Critical-path-aware Kairos: the joint matching with a pipeline laxity term.

:class:`CriticalPathKairosPolicy` wraps the existing
:class:`~repro.schedulers.kairos_policy.MultiModelKairosPolicy` joint matching with
one addition: pending stage-queries get a laxity term — the graph deadline minus
the stage's critical-path-remaining — folded into the cost matrix as a per-row
multiplier in ``[min_scale, 1.0]``.  Stages on the longest remaining path carry
the smallest laxity, get the smallest multiplier, and win ties (and contended
columns) in the min-cost matching; slack-rich stages and plain queries keep their
ordinary costs.  Graphs whose slack is already blown never reach the matching —
the pipeline simulation sheds them whole at admission (see
``PipelineServingSimulation``) so they cannot poison the round.

When no graphs are present the hook returns ``None`` and every code path —
sharded dispatch included — is byte-identical to stage-local Kairos (locked down
by the regression byte-identity suite).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.pipeline.runtime import PipelineCoordinator
from repro.schedulers.kairos_policy import MultiModelKairosPolicy
from repro.workload.query import Query


class CriticalPathKairosPolicy(MultiModelKairosPolicy):
    """Joint Kairos matching with critical-path laxity over pipeline stage rows.

    Parameters
    ----------
    coordinator:
        The shared stage registry (also held by the pipeline simulation).  On bind
        the policy installs its per-model estimators as the coordinator's stage
        predictor, so critical paths — and therefore slack — sharpen as the online
        learner converges.
    min_scale:
        Floor of the laxity multiplier: a stage with zero (or negative) remaining
        slack costs ``min_scale`` of its nominal matching cost, the strongest
        priority boost the policy will apply.
    urgency_frac:
        Fraction of a graph's deadline inside which the boost engages.  Stages
        whose laxity still exceeds ``urgency_frac * deadline`` keep their nominal
        row — the plain matching places slack-rich work better than any priority
        distortion — and the multiplier interpolates down to ``min_scale`` as
        laxity shrinks inside the window.
    """

    name = "KAIROS-CP"

    def __init__(
        self,
        coordinator: Optional[PipelineCoordinator] = None,
        *,
        min_scale: float = 0.1,
        urgency_frac: float = 0.5,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if not 0.0 < min_scale <= 1.0:
            raise ValueError("min_scale must be in (0, 1]")
        if not 0.0 < urgency_frac <= 1.0:
            raise ValueError("urgency_frac must be in (0, 1]")
        self.coordinator = coordinator if coordinator is not None else PipelineCoordinator()
        self._min_scale = float(min_scale)
        self._urgency_frac = float(urgency_frac)

    # -- lifecycle -----------------------------------------------------------------------
    def on_bind(self) -> None:
        super().on_bind()
        self.coordinator.bind_predictor(self._predict_stage_ms)

    def _predict_stage_ms(self, model_name: str, batch_size: int) -> float:
        """Best-case service belief: the fastest type the model's partition offers."""
        estimator = self._estimators.get(model_name)
        type_names = self._round_types_of.get(model_name, ())
        if estimator is None or not type_names:
            return 0.0
        return min(
            estimator.predict_ms(type_name, batch_size) for type_name in type_names
        )

    # -- the laxity fold -----------------------------------------------------------------
    def _row_cost_scale(
        self, considered: Sequence[Query], now_ms: float
    ) -> Optional[np.ndarray]:
        coordinator = self.coordinator
        if not coordinator.active:
            return None
        scale: Optional[np.ndarray] = None
        for i, query in enumerate(considered):
            factor = coordinator.priority_scale(
                query.query_id,
                now_ms,
                self._min_scale,
                urgency_frac=self._urgency_frac,
            )
            if factor != 1.0:
                if scale is None:
                    scale = np.ones(len(considered))
                scale[i] = factor
        return scale
