"""Runtime bookkeeping for released task graphs.

:class:`GraphRuntime` tracks one released :class:`~repro.pipeline.graph.TaskGraph`
through the serving loop — which stages are released / served / shed / dead, the
graph's remaining slack, and its terminal outcome — while
:class:`PipelineCoordinator` is the side table shared by the simulation and the
scheduling policy: stage-queries are plain :class:`~repro.workload.query.Query`
objects (frozen, slotted — deliberately not subclassed), so the coordinator maps
``query_id`` back to ``(graph runtime, stage)`` and answers the two questions the
stack asks per round: *which successors does this completion release?* (the
simulation) and *how urgent is this pending stage?* (the policy's laxity term).

Slack is ``deadline_abs - now - critical_path_remaining``: the critical path of the
not-yet-served sub-DAG under the coordinator's current predictor (bound by the
policy to its online estimators), recomputed at every release.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pipeline.graph import StagePredictor, TaskGraph
from repro.sim.metrics import QueryRecord
from repro.workload.query import Query

#: Terminal graph outcomes (``None`` on a live runtime; "unserved" only at finalize).
GRAPH_SERVED = "served"
GRAPH_SHED = "shed"
GRAPH_DEAD = "dead"
GRAPH_UNSERVED = "unserved"


@dataclass
class GraphOutcome:
    """Per-graph result of one pipeline serving run (see ``PipelineServingSimulation``)."""

    graph_id: int
    value: float
    release_ms: float
    deadline_ms: float
    outcome: str
    end_ms: float
    deadline_met: bool
    e2e_latency_ms: float
    critical_path_ms: float
    realized_span_ms: float
    stages: int
    served_stages: int
    shed_stages: int
    dead_stages: int
    unserved_stages: int
    unreleased_stages: int


class GraphRuntime:
    """Mutable per-graph state: stage queries, outcomes, and slack."""

    __slots__ = (
        "graph",
        "queries",
        "released",
        "served",
        "shed",
        "dead",
        "outcome",
        "end_ms",
        "slack_ms",
        "critical_path_initial",
        "first_start_ms",
        "last_end_ms",
    )

    def __init__(self, graph: TaskGraph, queries: Dict[str, Query]):
        if set(queries) != {s.name for s in graph.stages}:
            raise ValueError(
                f"graph {graph.graph_id}: stage queries must cover every stage"
            )
        self.graph = graph
        #: stage name -> Query template (sources carry the real release arrival;
        #: successors are re-stamped with their release instant when released)
        self.queries = dict(queries)
        self.released = {s.name for s in graph.sources()}
        self.served: Dict[str, float] = {}
        self.shed: Dict[str, float] = {}
        self.dead: Dict[str, float] = {}
        self.outcome: Optional[str] = None
        self.end_ms = 0.0
        self.slack_ms = graph.deadline_ms
        self.critical_path_initial: Optional[float] = None
        self.first_start_ms: Optional[float] = None
        self.last_end_ms: Optional[float] = None

    # -- state probes -------------------------------------------------------------------
    def terminal_stage(self, name: str) -> bool:
        return name in self.served or name in self.shed or name in self.dead

    def pending_released(self) -> List[str]:
        """Released stages with no terminal outcome yet (queued or in flight)."""
        return [n for n in self.released if not self.terminal_stage(n)]

    def unreleased(self) -> List[str]:
        return [s.name for s in self.graph.stages if s.name not in self.released]

    def remaining_critical_path_ms(self, predict: StagePredictor) -> float:
        """Critical path of the not-yet-served sub-DAG (0 when everything served).

        Completion is monotone along precedence, so the unserved set is closed
        under successors; the remaining path is the longest chain hanging off the
        frontier (unserved stages whose parents are all served).
        """
        if self.outcome is not None and self.outcome != GRAPH_SERVED:
            return 0.0
        cpr = None
        best = 0.0
        for stage in self.graph.stages:
            if stage.name in self.served:
                continue
            if any(p not in self.served for p in stage.parents):
                continue
            if cpr is None:
                cpr = self.graph.critical_path_remaining(predict)
            best = max(best, cpr[stage.name])
        return best

    def slack_at(self, now_ms: float, predict: StagePredictor) -> float:
        return self.graph.deadline_abs_ms() - now_ms - self.remaining_critical_path_ms(predict)


class PipelineCoordinator:
    """The shared stage-query registry: simulation-side releases, policy-side laxity."""

    def __init__(self):
        self._runtimes: List[GraphRuntime] = []
        self._stage_of: Dict[int, Tuple[GraphRuntime, str]] = {}
        self._predict: Optional[StagePredictor] = None

    # -- setup --------------------------------------------------------------------------
    def register(self, runtime: GraphRuntime) -> None:
        for name, query in runtime.queries.items():
            if query.query_id in self._stage_of:
                raise ValueError(
                    f"stage query id {query.query_id} registered twice"
                )
            self._stage_of[query.query_id] = (runtime, name)
        self._runtimes.append(runtime)

    def bind_predictor(self, predict: StagePredictor) -> None:
        """Install the per-stage service-time belief (the policy's estimators)."""
        self._predict = predict

    @property
    def active(self) -> bool:
        return bool(self._runtimes)

    @property
    def runtimes(self) -> Tuple[GraphRuntime, ...]:
        return tuple(self._runtimes)

    def predict(self, model_name: str, batch_size: int) -> float:
        if self._predict is None:
            return 0.0  # pre-bind: no belief yet, so no stage contributes slack pressure
        return self._predict(model_name, batch_size)

    def stage_of(self, query_id: int) -> Optional[Tuple[GraphRuntime, str]]:
        return self._stage_of.get(query_id)

    # -- release semantics --------------------------------------------------------------
    def complete_stage(self, record: QueryRecord, now_ms: float) -> List[Query]:
        """Mark one genuine stage completion; return the successors it releases.

        Released successors are re-stamped as same-instant arrivals
        (``arrival_time_ms = now_ms``); the graph's remaining slack is recomputed
        at each release.  Terminal (shed/dead) graphs release nothing — a straggler
        completion of an already-doomed graph is recorded but spawns no work.
        """
        entry = self._stage_of.get(record.query.query_id)
        if entry is None:
            return []
        runtime, name = entry
        if name in runtime.served:
            return []
        runtime.served[name] = record.completion_ms
        if runtime.first_start_ms is None or record.start_ms < runtime.first_start_ms:
            runtime.first_start_ms = record.start_ms
        if runtime.last_end_ms is None or record.completion_ms > runtime.last_end_ms:
            runtime.last_end_ms = record.completion_ms
        if runtime.outcome is not None:
            return []  # doomed graph: no further releases
        graph = runtime.graph
        if len(runtime.served) == len(graph):
            runtime.outcome = GRAPH_SERVED
            runtime.end_ms = record.completion_ms
            runtime.slack_ms = graph.deadline_abs_ms() - record.completion_ms
            return []
        released: List[Query] = []
        for child in graph.children(name):
            if child in runtime.released:
                continue
            stage = graph.stage(child)
            if any(p not in runtime.served for p in stage.parents):
                continue
            runtime.released.add(child)
            query = replace(runtime.queries[child], arrival_time_ms=now_ms)
            runtime.queries[child] = query
            released.append(query)
        if released:
            runtime.slack_ms = runtime.slack_at(now_ms, self.predict)
        return released

    # -- doom / shed bookkeeping --------------------------------------------------------
    def ensure_initial_critical_path(self, runtime: GraphRuntime) -> float:
        """Snapshot the predicted end-to-end critical path (first scheduling access)."""
        if runtime.critical_path_initial is None:
            runtime.critical_path_initial = runtime.graph.critical_path_ms(self.predict)
        return runtime.critical_path_initial

    def doomed(self, now_ms: float, *, margin_frac: float = 0.0) -> List[GraphRuntime]:
        """Live graphs whose slack is already blown (negative under current belief).

        ``margin_frac`` demands the projected miss exceed that fraction of the
        graph's deadline before the graph counts as doomed.  The critical-path
        belief is a best case built from noisy online estimates, so a bare
        ``slack < 0`` is a coin flip right at the deadline — graphs projected to
        miss by a hair often still make it, and shedding them trades a certain
        miss for a probable hit.  A miss projected at a meaningful fraction of
        the deadline is beyond what estimate error can explain away.
        """
        if self._predict is None:
            return []
        doomed: List[GraphRuntime] = []
        for runtime in self._runtimes:
            if runtime.outcome is not None:
                continue
            if not runtime.pending_released() and not runtime.unreleased():
                continue  # everything is in flight; nothing left to shed
            self.ensure_initial_critical_path(runtime)
            margin = margin_frac * runtime.graph.deadline_ms
            if runtime.slack_at(now_ms, self.predict) < -margin:
                doomed.append(runtime)
        return doomed

    def mark_graph_shed(self, runtime: GraphRuntime, now_ms: float) -> None:
        if runtime.outcome is None:
            runtime.outcome = GRAPH_SHED
            runtime.end_ms = now_ms

    def mark_stage_shed(self, query_id: int, now_ms: float) -> Optional[GraphRuntime]:
        entry = self._stage_of.get(query_id)
        if entry is None:
            return None
        runtime, name = entry
        runtime.shed[name] = now_ms
        if runtime.outcome is None:
            runtime.outcome = GRAPH_SHED
            runtime.end_ms = now_ms
        return runtime

    def mark_stage_dead(self, query_id: int, now_ms: float) -> Optional[GraphRuntime]:
        entry = self._stage_of.get(query_id)
        if entry is None:
            return None
        runtime, name = entry
        runtime.dead[name] = now_ms
        # dead-letter dominates a prior shed label: the graph lost work for good
        if runtime.outcome in (None, GRAPH_SHED):
            runtime.outcome = GRAPH_DEAD
            runtime.end_ms = now_ms
        return runtime

    # -- policy-side laxity -------------------------------------------------------------
    def priority_scale(
        self,
        query_id: int,
        now_ms: float,
        min_scale: float,
        *,
        urgency_frac: float = 1.0,
    ) -> float:
        """Laxity-derived cost multiplier in ``[min_scale, 1.0]`` for one pending row.

        ``laxity = (deadline_abs - now) - critical_path_remaining(stage)``: stages on
        the longest remaining path have the smallest laxity, get the smallest
        multiplier, and therefore win ties in the min-cost matching.  Non-stage rows
        (and anything this coordinator does not know) keep scale 1.0.

        ``urgency_frac`` bounds the intervention window: the multiplier stays 1.0
        while laxity exceeds that fraction of the deadline and interpolates down to
        ``min_scale`` only inside it.  A slack-rich stage is best served wherever
        the nominal matching puts it — distorting its row while the deadline is not
        in danger costs placement quality for nothing.
        """
        entry = self._stage_of.get(query_id)
        if entry is None:
            return 1.0
        runtime, name = entry
        if runtime.outcome is not None and runtime.outcome != GRAPH_SERVED:
            return 1.0
        self.ensure_initial_critical_path(runtime)
        cpr = runtime.graph.critical_path_remaining(self.predict)
        laxity = runtime.graph.deadline_abs_ms() - now_ms - cpr[name]
        window = urgency_frac * runtime.graph.deadline_ms
        scale = min_scale + (1.0 - min_scale) * (laxity / window)
        if scale < min_scale:
            return min_scale
        if scale > 1.0:
            return 1.0
        return scale

    # -- end of run ---------------------------------------------------------------------
    def finalize(self, now_ms: float) -> None:
        """Label graphs the run ended on (policy declined / loop quiesced) as unserved."""
        for runtime in self._runtimes:
            if runtime.outcome is None:
                runtime.outcome = GRAPH_UNSERVED
                runtime.end_ms = now_ms

    def outcomes(self) -> List[GraphOutcome]:
        """Per-graph summaries (call after :meth:`finalize`)."""
        results: List[GraphOutcome] = []
        for runtime in self._runtimes:
            graph = runtime.graph
            served_all = runtime.outcome == GRAPH_SERVED
            e2e = runtime.end_ms - graph.release_ms if served_all else 0.0
            span = 0.0
            if runtime.first_start_ms is not None and runtime.last_end_ms is not None:
                span = runtime.last_end_ms - runtime.first_start_ms
            pending = len(runtime.pending_released())
            results.append(
                GraphOutcome(
                    graph_id=graph.graph_id,
                    value=graph.value,
                    release_ms=graph.release_ms,
                    deadline_ms=graph.deadline_ms,
                    outcome=runtime.outcome or GRAPH_UNSERVED,
                    end_ms=runtime.end_ms,
                    deadline_met=served_all
                    and runtime.end_ms <= graph.deadline_abs_ms() + 1e-9,
                    e2e_latency_ms=e2e,
                    critical_path_ms=runtime.critical_path_initial or 0.0,
                    realized_span_ms=span,
                    stages=len(graph),
                    served_stages=len(runtime.served),
                    shed_stages=len(runtime.shed),
                    dead_stages=len(runtime.dead),
                    unserved_stages=pending,
                    unreleased_stages=len(runtime.unreleased()),
                )
            )
        return results


def realize_graphs(
    graphs: Sequence[TaskGraph], first_query_id: int
) -> Tuple[List[Query], PipelineCoordinator]:
    """Materialize stage queries for ``graphs`` and index them in a coordinator.

    Returns ``(source_queries, coordinator)``: the source-stage queries (arrival =
    the graph's release instant) join the offered stream handed to ``run()``;
    successor stages hold placeholder arrivals until their release re-stamps them.
    Query ids are allocated densely from ``first_query_id`` in (graph, declaration)
    order, matching the global-renumbering convention of
    :func:`~repro.workload.generator.interleave_model_streams`.
    """
    coordinator = PipelineCoordinator()
    sources: List[Query] = []
    next_id = first_query_id
    for graph in graphs:
        queries: Dict[str, Query] = {}
        for stage in graph.stages:
            queries[stage.name] = Query(
                query_id=next_id,
                batch_size=stage.batch_size,
                arrival_time_ms=graph.release_ms,
                model_name=stage.model_name,
            )
            next_id += 1
        runtime = GraphRuntime(graph, queries)
        coordinator.register(runtime)
        sources.extend(queries[s.name] for s in graph.sources())
    return sources, coordinator
