"""The pipeline serving loop: the multi-model event loop plus graph releases.

:class:`PipelineServingSimulation` subclasses
:class:`~repro.sim.multi_model.MultiModelServingSimulation` and adds exactly three
behaviours, each gated on the coordinator actually holding graphs so a no-graphs
run stays byte-identical to the parent loop (sharded event queues and chaos
profiles included — locked down by the regression byte-identity suite):

* **Release semantics** — a graph's source stages arrive as normal queries; a
  *genuine* stage completion (not crash-voided, not timed out) releases every
  successor whose parents are all served as a same-instant
  ``QUERY_ARRIVAL``, re-using the ``PendingQueue`` / ``pop_batch`` machinery
  unchanged, and the graph's remaining slack is recomputed at each release.
* **Graph-aware admission** — whole doomed graphs are shed, never random stages:
  graphs whose slack is already blown under the current critical-path belief are
  shed as a unit before the round, admission-controller overflow expands any
  stage victim to its entire graph, and a dead-lettered stage cancels the rest of
  its graph (remaining released stages shed, unreleased stages never released).
* **Per-graph metrics** — after the run, :attr:`graph_outcomes` holds one
  :class:`~repro.pipeline.runtime.GraphOutcome` per registered graph (end-to-end
  latency, deadline attainment, predicted critical path vs realized span, and the
  stage outcome partition the graph-conservation invariant checks).

Released successors are *offered load discovered mid-run*: the report's
``total_queries`` is widened by the releases so outcome conservation
(``served + shed + dead + unserved == total``) keeps holding, and
:attr:`released_queries` exposes them (arrival = release instant) so harnesses can
account for the full realized query set.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.pipeline.runtime import (
    GRAPH_DEAD,
    GRAPH_SHED,
    GraphOutcome,
    GraphRuntime,
    PipelineCoordinator,
)
from repro.sim.events import Event, EventKind
from repro.sim.faults import ShedEntry, select_shed_victims
from repro.sim.metrics import QueryRecord
from repro.sim.multi_model import (
    MultiModelServingSimulation,
    MultiModelSimulationReport,
)
from repro.workload.query import Query


class PipelineServingSimulation(MultiModelServingSimulation):
    """Serve plain queries and task-graph stages on one co-located cluster.

    Parameters add to the parent's:

    coordinator:
        The stage registry produced by
        :func:`~repro.pipeline.runtime.realize_graphs`.  When omitted, the
        policy's own coordinator is used if it has one
        (:class:`~repro.pipeline.policy.CriticalPathKairosPolicy`), else an empty
        one — an empty coordinator makes this class behave exactly like its
        parent.
    graph_aware:
        Enables doomed-graph shedding at admission.  Off, the loop still applies
        release semantics and unit-cancellation (they are structural, not a
        policy), which is the "stage-local Kairos" arm of the fig20 comparison.
    doom_margin_frac:
        How far past hopeless a graph must be projected before it is shed, as a
        fraction of its deadline.  The critical-path belief is noisy, so graphs
        projected to miss by a hair frequently still make their deadline;
        shedding only beyond the margin keeps doom-shedding a strict win.
    """

    def __init__(
        self,
        cluster,
        policy,
        *,
        coordinator: Optional[PipelineCoordinator] = None,
        graph_aware: bool = True,
        doom_margin_frac: float = 0.25,
        **kwargs,
    ):
        super().__init__(cluster, policy, **kwargs)
        if coordinator is None:
            coordinator = getattr(policy, "coordinator", None)
        if coordinator is None:
            coordinator = PipelineCoordinator()
        self.coordinator = coordinator
        self.graph_aware = bool(graph_aware)
        if doom_margin_frac < 0.0:
            raise ValueError("doom_margin_frac must be >= 0")
        self.doom_margin_frac = float(doom_margin_frac)
        #: successor stage queries released during the run (arrival = release instant)
        self.released_queries: List[Query] = []
        #: per-graph results, populated by :meth:`run`
        self.graph_outcomes: List[GraphOutcome] = []
        self._pending_ref = None

    # -- run ----------------------------------------------------------------------------
    def run(self, queries: Sequence[Query]) -> MultiModelSimulationReport:
        if self.coordinator.active:
            for runtime in self.coordinator.runtimes:
                for stage in runtime.graph.stages:
                    if stage.model_name not in self.cluster.model_names:
                        raise KeyError(
                            f"graph {runtime.graph.graph_id} stage {stage.name!r} "
                            f"targets unregistered model {stage.model_name!r}"
                        )
        report = super().run(queries)
        if self.released_queries:
            # Releases are offered load discovered mid-run: widen the offered count
            # so conservation (served + shed + dead + unserved == total) still holds.
            report.total_queries += len(self.released_queries)
        if self.coordinator.active:
            self.coordinator.finalize(report.billing_horizon_ms)
            self.graph_outcomes = self.coordinator.outcomes()
        return report

    # -- per-graph aggregate metrics ----------------------------------------------------
    def deadline_attainment(self) -> float:
        """Fraction of registered graphs fully served within their deadline."""
        outcomes = self.graph_outcomes
        if not outcomes:
            return 0.0
        return sum(1 for o in outcomes if o.deadline_met) / len(outcomes)

    def value_deadline_attainment(self) -> float:
        """Value-weighted deadline attainment (what graph-aware shedding optimizes)."""
        outcomes = self.graph_outcomes
        total = sum(o.value for o in outcomes)
        if total <= 0:
            return 0.0
        return sum(o.value for o in outcomes if o.deadline_met) / total

    # -- release semantics --------------------------------------------------------------
    def _handle(
        self, event, now, metrics, ledger, scale_log, warmup_ids, events
    ) -> Tuple[bool, bool]:
        released: List[Query] = []
        if (
            event.kind == EventKind.SERVICE_COMPLETION
            and self.coordinator.active
        ):
            record: QueryRecord = event.payload
            if (
                id(record) not in self._killed
                and id(record) not in self._timed_out
                and id(record) not in self._absorbed
            ):
                # A genuine completion (the parent handler will take the same
                # branch): release successors before delegating so the offered
                # count never dips to zero mid-graph — `_settle_outstanding`
                # inside the parent would otherwise drop the fault timers while
                # pipeline work is still due.
                released = self.coordinator.complete_stage(record, now)
                self._outstanding += len(released)
        result = super()._handle(
            event, now, metrics, ledger, scale_log, warmup_ids, events
        )
        for query in released:
            self.released_queries.append(query)
            events.push(Event(now, EventKind.QUERY_ARRIVAL, query))
        return result

    # -- unit-cancellation on dead letters ----------------------------------------------
    def _fail_attempt(self, query, now, reason, events) -> None:
        before = len(self.dead_letters)
        super()._fail_attempt(query, now, reason, events)
        if len(self.dead_letters) == before or not self.coordinator.active:
            return
        runtime = self.coordinator.mark_stage_dead(query.query_id, now)
        if runtime is not None and self._pending_ref is not None:
            # Dead-lettered as a unit: the graph can never complete, so its other
            # queued stages are shed now and unreleased stages never release.
            self._shed_graph_stages(
                runtime, self._pending_ref, now, events, reason="pipeline-dead"
            )

    # -- graph-aware admission ----------------------------------------------------------
    def _admit(self, pending, now, events):
        if not self.coordinator.active:
            return super()._admit(pending, now, events)
        self._pending_ref = pending
        # Sweep stages whose graph went terminal since the last round (a release
        # could have been in flight as an arrival event when the graph died).
        for runtime in self.coordinator.runtimes:
            if runtime.outcome in (GRAPH_SHED, GRAPH_DEAD):
                self._shed_graph_stages(
                    runtime, pending, now, events, reason="pipeline-unit"
                )
        if self.graph_aware:
            doomed = self.coordinator.doomed(now, margin_frac=self.doom_margin_frac)
            for runtime in doomed:
                # Nothing sheddable (every stage released and dispatched or
                # served): the graph is fully committed, so let it resolve
                # naturally rather than mislabel a fully-served graph as shed.
                queued = any(
                    runtime.queries[name].query_id in pending
                    for name in runtime.pending_released()
                )
                if not queued and not runtime.unreleased():
                    continue
                self.coordinator.mark_graph_shed(runtime, now)
                self._shed_graph_stages(
                    runtime, pending, now, events, reason="pipeline-doomed"
                )
        if self.admission is None:
            return pending
        overflow = self.admission.to_shed(len(pending))
        if overflow > 0:
            shed_count = 0
            for query in select_shed_victims(pending.snapshot(), overflow):
                if shed_count >= overflow:
                    break
                qid = query.query_id
                if qid not in pending:
                    continue  # removed by an earlier victim's graph expansion
                entry = self.coordinator.stage_of(qid)
                if entry is None:
                    pending.remove(qid)
                    self.shed_queries.append(ShedEntry(query, now))
                    self._settle_outstanding(events)
                    shed_count += 1
                else:
                    # Shed whole doomed graphs, not random stages: a stage victim
                    # expands to its entire graph (its siblings are sunk cost).
                    runtime, _name = entry
                    self.coordinator.mark_graph_shed(runtime, now)
                    shed_count += self._shed_graph_stages(
                        runtime, pending, now, events, reason="pipeline-overload"
                    )
            self.admission.record_shed(shed_count)
        limit = self.admission.concurrency_limit
        if len(pending) > limit:
            return list(pending.snapshot()[:limit])
        return pending

    def _shed_graph_stages(
        self, runtime: GraphRuntime, pending, now: float, events, *, reason: str
    ) -> int:
        """Remove a terminal graph's queued stages from the backlog; returns the count.

        In-flight stages are left to finish (dispatched work cannot be recalled);
        unreleased stages never materialize because a terminal graph releases
        nothing further.
        """
        removed = 0
        for name in runtime.pending_released():
            query = runtime.queries[name]
            if query.query_id in pending:
                pending.remove(query.query_id)
                runtime.shed[name] = now
                self.shed_queries.append(ShedEntry(query, now, reason))
                self._settle_outstanding(events)
                removed += 1
        return removed
