"""DAG-structured inference pipelines with end-to-end deadlines.

The task-graph subsystem: frozen :class:`TaskGraph`\\ s of per-model stages
(:mod:`repro.pipeline.graph`), the runtime release/slack bookkeeping shared by
the loop and the policy (:mod:`repro.pipeline.runtime`), the canonical workload
shapes (:mod:`repro.pipeline.workload`), the critical-path-aware matching policy
(:mod:`repro.pipeline.policy`), and the serving loop with release semantics and
graph-aware admission (:mod:`repro.pipeline.simulation`).
"""

from repro.pipeline.graph import TaskGraph, TaskStage
from repro.pipeline.policy import CriticalPathKairosPolicy
from repro.pipeline.runtime import (
    GraphOutcome,
    GraphRuntime,
    PipelineCoordinator,
    realize_graphs,
)
from repro.pipeline.simulation import PipelineServingSimulation
from repro.pipeline.workload import chain_graph, diamond_graph, fan_out_in_graph

__all__ = [
    "TaskGraph",
    "TaskStage",
    "CriticalPathKairosPolicy",
    "GraphOutcome",
    "GraphRuntime",
    "PipelineCoordinator",
    "realize_graphs",
    "PipelineServingSimulation",
    "chain_graph",
    "diamond_graph",
    "fan_out_in_graph",
]
