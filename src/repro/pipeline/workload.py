"""Task-graph workload builders: the canonical pipeline shapes.

Three generators cover the production multi-stage shapes the subsystem models —
chains (RAG-style sequential stages), fan-out/fan-in (parallel branches joined by
a rank/merge stage), and diamonds (the two-branch special case, kept as its own
name because it is the smallest graph where critical-path arbitration matters).
Each stage is given as a ``(model_name, batch_size)`` pair; stage names are
deterministic (``s0, s1, ...`` / ``src, b0..bk, sink``) so specs, digests, and
shrunk fuzz findings stay readable.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.pipeline.graph import TaskGraph, TaskStage

#: ``(model_name, batch_size)`` — one stage's work.
StageWork = Tuple[str, int]


def chain_graph(
    graph_id: int,
    stages: Sequence[StageWork],
    deadline_ms: float,
    *,
    value: float = 1.0,
    release_ms: float = 0.0,
) -> TaskGraph:
    """A linear pipeline ``s0 -> s1 -> ... -> s{n-1}``."""
    if not stages:
        raise ValueError("a chain needs at least one stage")
    built: List[TaskStage] = []
    for i, (model_name, batch_size) in enumerate(stages):
        parents = (f"s{i - 1}",) if i else ()
        built.append(TaskStage(f"s{i}", model_name, batch_size, parents))
    return TaskGraph(
        graph_id, tuple(built), deadline_ms, value=value, release_ms=release_ms
    )


def fan_out_in_graph(
    graph_id: int,
    source: StageWork,
    branches: Sequence[StageWork],
    sink: StageWork,
    deadline_ms: float,
    *,
    value: float = 1.0,
    release_ms: float = 0.0,
) -> TaskGraph:
    """``src`` fans out to ``len(branches)`` parallel stages joined by ``sink``."""
    if not branches:
        raise ValueError("fan-out needs at least one branch")
    built: List[TaskStage] = [TaskStage("src", source[0], source[1])]
    names: List[str] = []
    for i, (model_name, batch_size) in enumerate(branches):
        name = f"b{i}"
        built.append(TaskStage(name, model_name, batch_size, ("src",)))
        names.append(name)
    built.append(TaskStage("sink", sink[0], sink[1], tuple(names)))
    return TaskGraph(
        graph_id, tuple(built), deadline_ms, value=value, release_ms=release_ms
    )


def diamond_graph(
    graph_id: int,
    source: StageWork,
    left: StageWork,
    right: StageWork,
    sink: StageWork,
    deadline_ms: float,
    *,
    value: float = 1.0,
    release_ms: float = 0.0,
) -> TaskGraph:
    """The two-branch diamond ``src -> {left, right} -> sink``."""
    return fan_out_in_graph(
        graph_id,
        source,
        (left, right),
        sink,
        deadline_ms,
        value=value,
        release_ms=release_ms,
    )
