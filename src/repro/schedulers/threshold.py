"""DRS: DeepRecSys's static batch-size-threshold query distribution.

DeepRecSys (ISCA'20) splits queries between CPUs and GPUs with a single static batch-size
threshold: queries larger than the threshold go to the base (accelerated) instances,
smaller ones to the auxiliary instances.  The threshold itself is found with a
hill-climbing sweep, and — as the paper points out — the sweep has to be repeated for
every heterogeneous configuration, which is the scheme's tuning overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.schedulers.base import Decision, SchedulingPolicy
from repro.sim.cluster import Cluster
from repro.utils.validation import check_positive_int
from repro.workload.query import Query


class DRSThresholdPolicy(SchedulingPolicy):
    """Static-threshold distribution: batch > threshold → base, otherwise → auxiliary.

    Queries wait for an idle instance of their designated class; if the cluster simply
    has no instance of that class the query falls back to the other class (required for
    degenerate configurations explored during configuration search).

    ``threshold=None`` selects a per-configuration tuned threshold at bind time: the
    largest batch size any auxiliary instance *present in the cluster* can serve within
    QoS — which is where DeepRecSys's hill-climbing sweep converges on deterministic
    profiles, granted for free per the paper's advantageous baseline treatment.
    """

    name = "DRS"

    def __init__(self, threshold: Optional[int] = None):
        super().__init__()
        if threshold is not None:
            check_positive_int(threshold, "threshold")
        self.threshold: Optional[int] = int(threshold) if threshold is not None else None

    def on_bind(self) -> None:
        cluster = self._require_bound()
        base_name = cluster.config.catalog.base_type.name
        self._base_indices = [
            i for i, s in enumerate(cluster) if s.type_name == base_name
        ]
        self._aux_indices = [
            i for i, s in enumerate(cluster) if s.type_name != base_name
        ]
        if self.threshold is None:
            aux_cutoffs = [
                cluster[i].profile.max_feasible_batch(self.qos_ms, cluster.model.max_batch_size)
                for i in self._aux_indices
            ]
            self.threshold = max(1, max(aux_cutoffs)) if aux_cutoffs else cluster.model.max_batch_size

    def schedule(
        self, now_ms: float, pending: Sequence[Query], cluster: Cluster
    ) -> List[Decision]:
        idle = set(self.idle_server_indices(cluster, now_ms))
        if not idle:
            return []
        idle_base = [i for i in self._base_indices if i in idle]
        idle_aux = [i for i in self._aux_indices if i in idle]
        decisions: List[Decision] = []
        for query in pending:
            wants_base = query.batch_size > self.threshold
            # fall back to the other class when the designated class does not exist
            if wants_base and not self._base_indices:
                wants_base = False
            if not wants_base and not self._aux_indices:
                wants_base = True
            pool = idle_base if wants_base else idle_aux
            chosen = None
            for pos, server_idx in enumerate(pool):
                feasible_batch = cluster[server_idx].profile.max_feasible_batch(
                    self.qos_ms, cluster.model.max_batch_size
                )
                if query.batch_size <= feasible_batch:
                    chosen = pos
                    break
            if chosen is None:
                # No idle instance of the designated class can serve this query within
                # QoS; it keeps waiting for one (DRS never re-routes across the threshold).
                continue
            decisions.append((query, pool.pop(chosen)))
            if not idle_base and not idle_aux:
                break
        return decisions


@dataclass(frozen=True)
class ThresholdSweepResult:
    """Outcome of the hill-climbing threshold sweep."""

    best_threshold: int
    best_throughput: float
    evaluations: Tuple[Tuple[int, float], ...]

    @property
    def num_evaluations(self) -> int:
        return len(self.evaluations)


def hill_climb_threshold(
    evaluate: Callable[[int], float],
    *,
    low: int = 1,
    high: int = 1000,
    initial: Optional[int] = None,
    initial_step: Optional[int] = None,
    min_step: int = 8,
    max_evaluations: int = 40,
) -> ThresholdSweepResult:
    """DeepRecSys's hill-climbing sweep over the batch-size threshold.

    ``evaluate(threshold)`` measures the allowable throughput of the configuration under
    a :class:`DRSThresholdPolicy` with that threshold (one online evaluation each).  The
    sweep starts from the middle of the range, moves in the direction of improvement,
    and halves the step width whenever neither neighbour improves, until the step falls
    below ``min_step`` or the evaluation budget is exhausted.
    """
    if low < 1 or high < low:
        raise ValueError("invalid threshold range")
    current = initial if initial is not None else (low + high) // 2
    step = initial_step if initial_step is not None else max((high - low) // 4, min_step)

    cache: dict[int, float] = {}
    order: List[Tuple[int, float]] = []

    def measured(threshold: int) -> float:
        threshold = int(min(max(threshold, low), high))
        if threshold not in cache:
            if len(order) >= max_evaluations:
                return -float("inf")
            value = float(evaluate(threshold))
            cache[threshold] = value
            order.append((threshold, value))
        return cache[threshold]

    best = current
    best_value = measured(current)
    while step >= min_step and len(order) < max_evaluations:
        up_value = measured(best + step)
        down_value = measured(best - step)
        if up_value > best_value and up_value >= down_value:
            best, best_value = min(best + step, high), up_value
        elif down_value > best_value:
            best, best_value = max(best - step, low), down_value
        else:
            step //= 2
    return ThresholdSweepResult(
        best_threshold=int(best),
        best_throughput=float(best_value),
        evaluations=tuple(order),
    )
