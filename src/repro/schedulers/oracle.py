"""ORCL: the clairvoyant oracle reference scheme (paper Sec. 7).

The oracle is "practically infeasible" and exists only to expose the performance limit:
it knows the entire query mix up front, sorts the queries by batch size, and whenever a
base instance frees up it serves the next *largest* remaining query, while auxiliary
instances serve the next *smallest* remaining query they can finish within QoS.  There
is no queueing delay and no QoS violation by construction, so its throughput is simply
``#queries / makespan`` of this packing.

Because the oracle needs no arrival process, it is evaluated directly as a packing
computation (:func:`oracle_throughput`) rather than through the event simulator — which
also makes it cheap enough to exhaustively score every configuration, exactly how the
paper derives the "optimal configuration found via Oracle search" that the competing
schemes are granted in Fig. 9.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class OraclePackingResult:
    """Outcome of one oracle packing run."""

    throughput_qps: float
    makespan_ms: float
    queries_served: int
    served_by_type: dict


class OracleScheduler:
    """Clairvoyant packing of a query mix onto a heterogeneous configuration."""

    name = "ORCL"

    def __init__(
        self,
        profiles: ProfileRegistry,
        model: Union[str, MLModel],
    ):
        self.profiles = profiles
        self.model = model if isinstance(model, MLModel) else profiles.models[model]

    def pack(
        self, config: HeterogeneousConfig, batch_sizes: Sequence[int]
    ) -> OraclePackingResult:
        """Serve ``batch_sizes`` (one query each) with the oracle policy on ``config``."""
        batches = np.sort(np.asarray(batch_sizes, dtype=int))
        if batches.size == 0:
            raise ValueError("batch_sizes must be non-empty")
        if np.any(batches < 1):
            raise ValueError("batch sizes must be >= 1")
        if config.is_empty():
            raise ValueError("configuration has no instances")

        base_name = config.catalog.base_type.name
        qos = self.model.qos_ms

        # Per-server state: (next free time, server ordinal, type name, cutoff, is_base)
        servers: List[Tuple[float, int, str, int, bool]] = []
        ordinal = 0
        for itype in config.expand_instance_types():
            cutoff = self.profiles.qos_cutoff_batch(self.model, itype.name)
            is_base = itype.name == base_name
            servers.append((0.0, ordinal, itype.name, cutoff, is_base))
            ordinal += 1
        heapq.heapify(servers)

        # Sorted multiset of remaining queries: use two pointers over the sorted array.
        lo, hi = 0, batches.size - 1
        served_by_type: dict = {}
        makespan = 0.0
        served = 0
        # Servers that can no longer serve anything are dropped from the heap.
        while lo <= hi and servers:
            free_at, order, type_name, cutoff, is_base = heapq.heappop(servers)
            if is_base:
                batch = int(batches[hi])
                hi -= 1
            else:
                batch = int(batches[lo])
                if batch > cutoff:
                    # This auxiliary server cannot serve even the smallest remaining
                    # query within QoS; it retires.
                    continue
                lo += 1
            latency = float(self.profiles.latency_ms(self.model, type_name, batch))
            finish = free_at + latency
            makespan = max(makespan, finish)
            served += 1
            served_by_type[type_name] = served_by_type.get(type_name, 0) + 1
            heapq.heappush(servers, (finish, order, type_name, cutoff, is_base))

        if lo <= hi:
            # Remaining queries exist but no server can take them (no base instances):
            # the configuration cannot serve the workload within QoS at any rate.
            return OraclePackingResult(0.0, float("inf"), served, served_by_type)

        throughput = 1000.0 * served / makespan if makespan > 0 else 0.0
        return OraclePackingResult(throughput, makespan, served, served_by_type)

    def throughput_qps(
        self, config: HeterogeneousConfig, batch_sizes: Sequence[int]
    ) -> float:
        """Just the oracle throughput of ``config`` on the given query mix."""
        return self.pack(config, batch_sizes).throughput_qps

    def best_configuration(
        self,
        configs: Sequence[HeterogeneousConfig],
        batch_sizes: Sequence[int],
    ) -> Tuple[HeterogeneousConfig, float]:
        """Exhaustive oracle search: the configuration with the highest oracle throughput."""
        if not configs:
            raise ValueError("configs must be non-empty")
        best_config = None
        best_qps = -1.0
        for config in configs:
            qps = self.throughput_qps(config, batch_sizes)
            if qps > best_qps:
                best_qps = qps
                best_config = config
        assert best_config is not None
        return best_config, best_qps


def oracle_throughput(
    config: HeterogeneousConfig,
    model: Union[str, MLModel],
    profiles: ProfileRegistry,
    batch_sizes: Sequence[int],
) -> float:
    """Functional convenience wrapper around :class:`OracleScheduler`."""
    return OracleScheduler(profiles, model).throughput_qps(config, batch_sizes)
