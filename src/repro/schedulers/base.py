"""Scheduling-policy protocol shared by Kairos and all competing schemes.

A policy is bound to one cluster and one QoS target for the duration of a serving
simulation.  At every scheduling point (an arrival or a completion) the simulator hands
it the pending queries and the cluster, and the policy returns the (query, server index)
pairs it commits in this round; whatever it does not assign stays in the central queue
and is offered again at the next scheduling point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.cluster import Cluster
from repro.sim.metrics import QueryRecord
from repro.sim.server import ServerInstance
from repro.workload.query import Query

#: A scheduling decision: (query, index of the server in the cluster).
Decision = Tuple[Query, int]


class SchedulingPolicy:
    """Base class for query-distribution policies."""

    #: Human-readable policy name used in reports and figures.
    name: str = "base"

    def __init__(self) -> None:
        self.cluster: Optional[Cluster] = None
        self.qos_ms: Optional[float] = None

    # -- lifecycle -----------------------------------------------------------------------
    def bind(self, cluster: Cluster, qos_ms: float) -> None:
        """Attach the policy to a cluster before a simulation starts."""
        if qos_ms <= 0:
            raise ValueError("qos_ms must be positive")
        self.cluster = cluster
        self.qos_ms = float(qos_ms)
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses needing per-cluster setup (coefficients, caches, ...)."""

    # -- scheduling ----------------------------------------------------------------------
    def schedule(
        self, now_ms: float, pending: Sequence[Query], cluster: Cluster
    ) -> List[Decision]:
        """Return the assignments committed at this scheduling point."""
        raise NotImplementedError

    def observe_completion(self, record: QueryRecord) -> None:
        """Feedback hook invoked for every completed query (default: ignore)."""

    # -- shared helpers -------------------------------------------------------------------
    def _require_bound(self) -> Cluster:
        if self.cluster is None or self.qos_ms is None:
            raise RuntimeError(f"{type(self).__name__} must be bound to a cluster first")
        return self.cluster

    @staticmethod
    def idle_server_indices(cluster: Cluster, now_ms: float) -> List[int]:
        """Indices of servers with no running or queued work."""
        return [i for i, s in enumerate(cluster) if s.is_idle(now_ms)]

    @staticmethod
    def split_by_base(cluster: Cluster, indices: Sequence[int]) -> Tuple[List[int], List[int]]:
        """Partition server indices into (base-type, auxiliary-type)."""
        base_name = cluster.config.catalog.base_type.name
        base = [i for i in indices if cluster[i].type_name == base_name]
        aux = [i for i in indices if cluster[i].type_name != base_name]
        return base, aux
