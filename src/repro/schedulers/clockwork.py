"""CLKWRK: a Clockwork-inspired, QoS-aware central controller.

Clockwork (OSDI'20) builds on deterministic, accurately predictable inference latencies.
The paper's CLKWRK baseline keeps that idea: a central controller tracks every
instance's queue timing, predicts each query's latency exactly, and sends the query to
an instance queue where it is guaranteed to meet its latency target — unless no instance
can, in which case it is sent to the instance that finishes it earliest.  Each instance
maintains its own FCFS queue.  Unlike Kairos the controller is not heterogeneity-
*proactive*: it neither weights instance time by value nor optimizes the joint matching.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cloud.profiles import ProfileRegistry
from repro.core.latency_model import LatencyEstimator, PerfectLatencyEstimator
from repro.schedulers.base import Decision, SchedulingPolicy
from repro.sim.cluster import Cluster
from repro.workload.query import Query


class ClockworkPolicy(SchedulingPolicy):
    """Latency-predictive earliest-feasible-completion dispatch with per-instance queues.

    Parameters
    ----------
    estimator:
        Latency predictor.  Defaults to the exact profiles at bind time (Clockwork's
        premise is near-perfect predictability, and the paper grants baselines accurate
        latency knowledge).
    """

    name = "CLKWRK"

    def __init__(self, estimator: Optional[LatencyEstimator] = None):
        super().__init__()
        self._estimator = estimator
        # mirror of each server's earliest start time, including queued dispatches
        self._queue_free_ms: List[float] = []

    def on_bind(self) -> None:
        cluster = self._require_bound()
        if self._estimator is None:
            self._estimator = PerfectLatencyEstimator(cluster.profiles, cluster.model)
        self._queue_free_ms = [0.0] * len(cluster)

    def schedule(
        self, now_ms: float, pending: Sequence[Query], cluster: Cluster
    ) -> List[Decision]:
        assert self._estimator is not None
        decisions: List[Decision] = []
        # refresh the queue mirror with the ground truth the controller can observe
        for i, server in enumerate(cluster):
            self._queue_free_ms[i] = max(self._queue_free_ms[i], server.busy_until_ms, now_ms)

        for query in pending:
            best_feasible: Optional[int] = None
            best_feasible_completion = float("inf")
            best_any: Optional[int] = None
            best_any_completion = float("inf")
            for i, server in enumerate(cluster):
                start = max(self._queue_free_ms[i], now_ms) + server.dispatch_overhead_ms
                predicted = self._estimator.predict_ms(server.type_name, query.batch_size)
                completion = start + predicted
                latency = completion - query.arrival_time_ms
                if completion < best_any_completion:
                    best_any_completion = completion
                    best_any = i
                if latency <= self.qos_ms + 1e-9 and completion < best_feasible_completion:
                    best_feasible_completion = completion
                    best_feasible = i
            chosen = best_feasible if best_feasible is not None else best_any
            if chosen is None:  # pragma: no cover - cluster is never empty
                continue
            chosen_completion = (
                best_feasible_completion if best_feasible is not None else best_any_completion
            )
            self._queue_free_ms[chosen] = chosen_completion
            decisions.append((query, chosen))
        return decisions
