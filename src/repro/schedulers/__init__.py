"""Query-distribution policies: Kairos and the competing schemes of the paper.

Every policy implements the small :class:`~repro.schedulers.base.SchedulingPolicy`
protocol consumed by :mod:`repro.sim.simulation`:

* :class:`~repro.schedulers.fcfs.RibbonFCFSPolicy` — Ribbon's FCFS distribution that
  prefers base instances;
* :class:`~repro.schedulers.threshold.DRSThresholdPolicy` — DeepRecSys's static
  batch-size threshold (plus the hill-climbing threshold sweep);
* :class:`~repro.schedulers.clockwork.ClockworkPolicy` — Clockwork-inspired
  latency-predictive controller with per-instance FCFS queues;
* :class:`~repro.schedulers.oracle.OracleScheduler` — the clairvoyant reference scheme;
* :class:`~repro.schedulers.kairos_policy.KairosPolicy` — Kairos's bipartite-matching
  distribution mechanism.
"""

from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.clockwork import ClockworkPolicy
from repro.schedulers.fcfs import RibbonFCFSPolicy
from repro.schedulers.kairos_policy import KairosPolicy
from repro.schedulers.oracle import OracleScheduler, oracle_throughput
from repro.schedulers.threshold import DRSThresholdPolicy, hill_climb_threshold

__all__ = [
    "SchedulingPolicy",
    "RibbonFCFSPolicy",
    "DRSThresholdPolicy",
    "hill_climb_threshold",
    "ClockworkPolicy",
    "OracleScheduler",
    "oracle_throughput",
    "KairosPolicy",
]
