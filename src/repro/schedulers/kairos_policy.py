"""Kairos's query-distribution policy: the runtime face of :mod:`repro.core.distributor`.

The policy re-solves the heterogeneity-weighted min-cost matching at every scheduling
point over the pending queries and the *eligible* instances.  Eligibility follows the
paper's ``L`` definition: an instance is considered if it is idle or currently serving
exactly one query (whose remaining time is then part of ``L``); instances that already
have a queued dispatch behind the running query are left out of the round so queries
keep waiting centrally, where later rounds can still place them better.

Latency prediction defaults to the online learner of
:class:`repro.core.latency_model.OnlineLatencyEstimator` — i.e. the evaluation includes
the paper's online-learning overhead — but a perfect or noisy estimator can be injected
(Fig. 16b).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.cost_matrix import build_multi_model_cost_matrix
from repro.core.distributor import QueryDistributor
from repro.core.heterogeneity import heterogeneity_coefficients
from repro.core.latency_model import (
    LatencyEstimator,
    OnlineLatencyEstimator,
    PerfectLatencyEstimator,
)
from repro.schedulers.base import Decision, SchedulingPolicy
from repro.sim.cluster import Cluster, MultiModelClusterView
from repro.sim.metrics import QueryRecord
from repro.solvers.assignment import solve_assignment
from repro.workload.query import Query


def _unique_type_names(type_names: Iterable[str]) -> Tuple[str, ...]:
    """Dedupe per-server type names preserving server (catalog) order.

    Never collapse type names through a ``set``: the hopeless-query check and the
    coefficient rebuild probe the estimator in this order, a stochastic estimator
    consumes one RNG draw per probe, and string-set iteration order varies with
    ``PYTHONHASHSEED`` — which once made the Fig. 16 noise rows irreproducible
    across interpreters (see TestHashSeedStability).
    """
    return tuple(dict.fromkeys(type_names))


class KairosPolicy(SchedulingPolicy):
    """The Kairos central controller's scheduling behaviour.

    Parameters
    ----------
    estimator:
        Latency predictor; ``None`` selects the online learner (no prior knowledge).
    use_perfect_estimator:
        Convenience switch: use the true profiles instead of online learning.
    solver_method:
        Assignment solver (default: the from-scratch Jonker-Volgenant implementation).
    max_queries_per_round:
        Cap on the matching size per round (earliest arrivals first).
    coefficient_refresh_interval:
        Re-derive the heterogeneity coefficients from the estimator every N rounds, so
        the online learner's improving picture of the hardware feeds back into the
        weights.
    defer_predicted_violations:
        The matching maps every query it can (Eq. 7), including onto pairs that were
        penalized by the QoS condition (Eq. 8).  With this option (default) such
        assignments are not committed: the query stays in the central queue and is
        re-matched at the next scheduling point, unless it has become hopeless (no
        instance could meet its deadline even if idle), in which case it is dispatched
        anyway so it does not starve.  This realizes Eq. 5 as the hard constraint the
        formulation intends rather than locking in avoidable violations.
    """

    name = "KAIROS"

    def __init__(
        self,
        estimator: Optional[LatencyEstimator] = None,
        *,
        use_perfect_estimator: bool = False,
        solver_method: str = "jv",
        qos_headroom: float = 0.98,
        penalty_factor: float = 10.0,
        max_queries_per_round: Optional[int] = 64,
        coefficient_refresh_interval: int = 50,
        defer_predicted_violations: bool = True,
    ):
        super().__init__()
        self._estimator = estimator
        self._use_perfect = use_perfect_estimator
        self._solver_method = solver_method
        self._qos_headroom = qos_headroom
        self._penalty_factor = penalty_factor
        self._max_queries_per_round = max_queries_per_round
        self._refresh_interval = max(1, int(coefficient_refresh_interval))
        self._defer_violations = bool(defer_predicted_violations)
        self._distributor: Optional[QueryDistributor] = None
        self._rounds = 0

    # -- lifecycle -----------------------------------------------------------------------
    def on_bind(self) -> None:
        cluster = self._require_bound()
        if self._estimator is None:
            if self._use_perfect:
                self._estimator = PerfectLatencyEstimator(cluster.profiles, cluster.model)
            else:
                self._estimator = OnlineLatencyEstimator()
        self._rounds = 0
        self._rebuild_distributor()

    def _rebuild_distributor(self) -> None:
        cluster = self._require_bound()
        assert self._estimator is not None
        type_names = list(_unique_type_names(cluster.type_names()))
        base_name = cluster.config.catalog.base_type.name
        if base_name not in type_names:
            # Degenerate configurations without base instances still need a reference
            # point; use the first type present.
            base_name = type_names[0]
        coefficients = heterogeneity_coefficients(
            self._estimator,
            type_names,
            base_name,
            reference_batch_size=cluster.model.max_batch_size,
        )
        self._distributor = QueryDistributor(
            self._estimator,
            coefficients,
            self.qos_ms,
            solver_method=self._solver_method,
            qos_headroom=self._qos_headroom,
            penalty_factor=self._penalty_factor,
            max_queries_per_round=self._max_queries_per_round,
        )

    # -- scheduling ---------------------------------------------------------------------
    def schedule(
        self, now_ms: float, pending: Sequence[Query], cluster: Cluster
    ) -> List[Decision]:
        if self._distributor is None:
            raise RuntimeError("policy used before bind()")
        if not pending:
            return []
        self._rounds += 1
        if self._rounds % self._refresh_interval == 0 and not self._use_perfect:
            self._rebuild_distributor()

        eligible_indices: List[int] = []
        servers = []
        for i, server in enumerate(cluster):
            if server.local_queue_depth <= 1:
                eligible_indices.append(i)
                servers.append(server)
        if not eligible_indices:
            return []
        round_result = self._distributor.distribute(now_ms, pending, servers)
        decisions: List[Decision] = []
        # The cluster's type set is invariant within a round; derive it at most once
        # per round instead of per deferred assignment.
        round_types: Optional[Tuple[str, ...]] = None
        for assignment in round_result.assignments:
            if self._defer_violations and not assignment.predicted_feasible:
                if round_types is None:
                    round_types = _unique_type_names(cluster.type_names())
                if not self._is_hopeless(assignment.query, round_types, now_ms):
                    # Keep the query in the central queue; a better slot may open up
                    # before its deadline, and Eq. 3's waiting-time term will
                    # prioritize it then.
                    continue
            decisions.append((assignment.query, eligible_indices[assignment.server_index]))
        return decisions

    def _is_hopeless(self, query: Query, type_names, now_ms: float) -> bool:
        """True when no instance type could meet the query's deadline even if idle now.

        ``type_names`` is the deduped, deterministically ordered sequence of
        instance-type names present in the round's cluster (computed once per
        scheduling round by :meth:`schedule`).
        """
        assert self._estimator is not None
        budget = self._qos_headroom * self.qos_ms - query.waiting_time_ms(now_ms)
        if budget <= 0:
            return True
        for type_name in type_names:
            if self._estimator.predict_ms(type_name, query.batch_size) <= budget:
                return False
        return True

    def observe_completion(self, record: QueryRecord) -> None:
        if self._estimator is not None:
            self._estimator.observe(
                record.server_type, record.query.batch_size, record.service_ms
            )

    # -- introspection --------------------------------------------------------------------
    @property
    def estimator(self) -> Optional[LatencyEstimator]:
        return self._estimator

    @property
    def coefficients(self) -> Optional[dict]:
        return dict(self._distributor.coefficients) if self._distributor else None


class MultiModelKairosPolicy(SchedulingPolicy):
    """Kairos scheduling over the union of N co-located models' pending queries.

    One joint matching per round: rows are the pending queries of every model (arrival
    order, capped at ``max_queries_per_round`` exactly like the single-model policy),
    columns the eligible instances of every model partition.  Same-model blocks are
    built by the per-(model, type) ``predict_many_ms`` fast path; cross-model pairs
    carry the Eq. 8 penalty and are *never* committed — a forced cross assignment from
    the rectangular matching simply defers the query to the next round.

    Per-model state mirrors :class:`KairosPolicy` exactly: an independent latency
    estimator (online learner by default), per-model heterogeneity coefficients
    refreshed on the same cadence, per-model QoS targets in the feasibility fold, and
    the same defer/hopeless semantics evaluated against the query's own model.  With a
    single registered model the round-by-round decisions are identical to
    :class:`KairosPolicy` (locked down by the golden tests).
    """

    name = "KAIROS-MM"

    def __init__(
        self,
        estimators: Optional[Mapping[str, LatencyEstimator]] = None,
        *,
        use_perfect_estimator: bool = False,
        solver_method: str = "jv",
        qos_headroom: float = 0.98,
        penalty_factor: float = 10.0,
        max_queries_per_round: Optional[int] = 64,
        coefficient_refresh_interval: int = 50,
        defer_predicted_violations: bool = True,
    ):
        super().__init__()
        self._estimators: Dict[str, LatencyEstimator] = (
            dict(estimators) if estimators is not None else {}
        )
        self._use_perfect = use_perfect_estimator
        self._solver_method = solver_method
        self._qos_headroom = qos_headroom
        self._penalty_factor = penalty_factor
        self._max_queries_per_round = max_queries_per_round
        self._refresh_interval = max(1, int(coefficient_refresh_interval))
        self._defer_violations = bool(defer_predicted_violations)
        self._coefficients: Dict[str, Dict[str, float]] = {}
        self._qos_by_model: Dict[str, float] = {}
        self._rounds = 0

    # -- lifecycle -----------------------------------------------------------------------
    def bind(self, cluster: MultiModelClusterView, qos_ms: Optional[float] = None) -> None:
        """Attach to a multi-model view; per-model QoS targets come from the view.

        ``qos_ms`` exists for protocol compatibility and, when given, must match the
        strictest model target (it is otherwise ignored).
        """
        self.cluster = cluster
        self._qos_by_model = dict(cluster.qos_by_model())
        strictest = min(self._qos_by_model.values())
        if qos_ms is not None and abs(qos_ms - strictest) > 1e-9:
            raise ValueError(
                "multi-model policies derive per-model QoS from the cluster; "
                f"got qos_ms={qos_ms} but the strictest model target is {strictest}"
            )
        self.qos_ms = strictest
        self.on_bind()

    def on_bind(self) -> None:
        cluster = self._require_bound()
        for name in cluster.model_names:
            if name not in self._estimators:
                if self._use_perfect:
                    self._estimators[name] = PerfectLatencyEstimator(
                        cluster.profiles, cluster.model(name)
                    )
                else:
                    self._estimators[name] = OnlineLatencyEstimator()
        self._rounds = 0
        self._rebuild_coefficients()

    def _rebuild_coefficients(self) -> None:
        cluster = self._require_bound()
        base_catalog_name = cluster.profiles.catalog.base_type.name
        server_models = cluster.server_models()
        type_names_of: Dict[str, List[str]] = {}
        for server, model_name in zip(cluster, server_models):
            names = type_names_of.setdefault(model_name, [])
            if server.type_name not in names:
                names.append(server.type_name)
        self._coefficients = {}
        for model_name, type_names in type_names_of.items():
            base_name = (
                base_catalog_name if base_catalog_name in type_names else type_names[0]
            )
            self._coefficients[model_name] = heterogeneity_coefficients(
                self._estimators[model_name],
                type_names,
                base_name,
                reference_batch_size=cluster.model(model_name).max_batch_size,
            )

    # -- scheduling ---------------------------------------------------------------------
    def schedule(
        self, now_ms: float, pending: Sequence[Query], cluster: MultiModelClusterView
    ) -> List[Decision]:
        if not self._qos_by_model:
            raise RuntimeError("policy used before bind()")
        if not pending:
            return []
        self._rounds += 1
        if self._rounds % self._refresh_interval == 0 and not self._use_perfect:
            self._rebuild_coefficients()

        all_models = cluster.server_models()
        eligible_indices: List[int] = []
        servers = []
        server_models: List[str] = []
        for i, server in enumerate(cluster):
            if server.local_queue_depth <= 1:
                eligible_indices.append(i)
                servers.append(server)
                server_models.append(all_models[i])
        if not eligible_indices:
            return []

        considered = list(pending)
        if (
            self._max_queries_per_round is not None
            and len(considered) > self._max_queries_per_round
        ):
            considered = considered[: self._max_queries_per_round]

        matrix = build_multi_model_cost_matrix(
            considered,
            servers,
            server_models,
            self._estimators,
            now_ms,
            self._qos_by_model,
            self._coefficients,
            qos_headroom=self._qos_headroom,
            penalty_factor=self._penalty_factor,
        )
        result = solve_assignment(matrix.weighted, method=self._solver_method)

        decisions: List[Decision] = []
        round_types_of: Dict[str, Tuple[str, ...]] = {}
        for row, col in zip(result.row_indices, result.col_indices):
            row, col = int(row), int(col)
            if matrix.cross_model[row, col]:
                # an instance of another model can never serve this query: always defer
                continue
            query = considered[row]
            model_name = matrix.query_models[row]
            if self._defer_violations and not matrix.qos_feasible[row, col]:
                types = round_types_of.get(model_name)
                if types is None:
                    types = _unique_type_names(
                        name
                        for name, server_model in zip(
                            cluster.type_names(), all_models
                        )
                        if server_model == model_name
                    )
                    round_types_of[model_name] = types
                if not self._is_hopeless(query, model_name, types, now_ms):
                    continue
            decisions.append((query, eligible_indices[col]))
        return decisions

    def _is_hopeless(
        self, query: Query, model_name: str, type_names, now_ms: float
    ) -> bool:
        """True when no instance of the query's model could meet its deadline even idle."""
        estimator = self._estimators[model_name]
        budget = (
            self._qos_headroom * self._qos_by_model[model_name]
            - query.waiting_time_ms(now_ms)
        )
        if budget <= 0:
            return True
        for type_name in type_names:
            if estimator.predict_ms(type_name, query.batch_size) <= budget:
                return False
        return True

    def observe_completion(self, record: QueryRecord) -> None:
        name = record.query.model_name
        if name is None:
            if len(self._estimators) != 1:
                raise ValueError(
                    "untagged completion record in a multi-model policy with "
                    f"{len(self._estimators)} models"
                )
            name = next(iter(self._estimators))
        self._estimators[name].observe(
            record.server_type, record.query.batch_size, record.service_ms
        )

    # -- introspection --------------------------------------------------------------------
    def estimator_of(self, model_name: str) -> LatencyEstimator:
        return self._estimators[model_name]

    @property
    def coefficients_by_model(self) -> Dict[str, Dict[str, float]]:
        return {name: dict(c) for name, c in self._coefficients.items()}
