"""Kairos's query-distribution policy: the runtime face of :mod:`repro.core.distributor`.

The policy re-solves the heterogeneity-weighted min-cost matching at every scheduling
point over the pending queries and the *eligible* instances.  Eligibility follows the
paper's ``L`` definition: an instance is considered if it is idle or currently serving
exactly one query (whose remaining time is then part of ``L``); instances that already
have a queued dispatch behind the running query are left out of the round so queries
keep waiting centrally, where later rounds can still place them better.

Latency prediction defaults to the online learner of
:class:`repro.core.latency_model.OnlineLatencyEstimator` — i.e. the evaluation includes
the paper's online-learning overhead — but a perfect or noisy estimator can be injected
(Fig. 16b).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.distributor import QueryDistributor
from repro.core.heterogeneity import heterogeneity_coefficients
from repro.core.latency_model import (
    LatencyEstimator,
    OnlineLatencyEstimator,
    PerfectLatencyEstimator,
)
from repro.schedulers.base import Decision, SchedulingPolicy
from repro.sim.cluster import Cluster
from repro.sim.metrics import QueryRecord
from repro.workload.query import Query


class KairosPolicy(SchedulingPolicy):
    """The Kairos central controller's scheduling behaviour.

    Parameters
    ----------
    estimator:
        Latency predictor; ``None`` selects the online learner (no prior knowledge).
    use_perfect_estimator:
        Convenience switch: use the true profiles instead of online learning.
    solver_method:
        Assignment solver (default: the from-scratch Jonker-Volgenant implementation).
    max_queries_per_round:
        Cap on the matching size per round (earliest arrivals first).
    coefficient_refresh_interval:
        Re-derive the heterogeneity coefficients from the estimator every N rounds, so
        the online learner's improving picture of the hardware feeds back into the
        weights.
    defer_predicted_violations:
        The matching maps every query it can (Eq. 7), including onto pairs that were
        penalized by the QoS condition (Eq. 8).  With this option (default) such
        assignments are not committed: the query stays in the central queue and is
        re-matched at the next scheduling point, unless it has become hopeless (no
        instance could meet its deadline even if idle), in which case it is dispatched
        anyway so it does not starve.  This realizes Eq. 5 as the hard constraint the
        formulation intends rather than locking in avoidable violations.
    """

    name = "KAIROS"

    def __init__(
        self,
        estimator: Optional[LatencyEstimator] = None,
        *,
        use_perfect_estimator: bool = False,
        solver_method: str = "jv",
        qos_headroom: float = 0.98,
        penalty_factor: float = 10.0,
        max_queries_per_round: Optional[int] = 64,
        coefficient_refresh_interval: int = 50,
        defer_predicted_violations: bool = True,
    ):
        super().__init__()
        self._estimator = estimator
        self._use_perfect = use_perfect_estimator
        self._solver_method = solver_method
        self._qos_headroom = qos_headroom
        self._penalty_factor = penalty_factor
        self._max_queries_per_round = max_queries_per_round
        self._refresh_interval = max(1, int(coefficient_refresh_interval))
        self._defer_violations = bool(defer_predicted_violations)
        self._distributor: Optional[QueryDistributor] = None
        self._rounds = 0

    # -- lifecycle -----------------------------------------------------------------------
    def on_bind(self) -> None:
        cluster = self._require_bound()
        if self._estimator is None:
            if self._use_perfect:
                self._estimator = PerfectLatencyEstimator(cluster.profiles, cluster.model)
            else:
                self._estimator = OnlineLatencyEstimator()
        self._rounds = 0
        self._rebuild_distributor()

    def _rebuild_distributor(self) -> None:
        cluster = self._require_bound()
        assert self._estimator is not None
        type_names = list(dict.fromkeys(cluster.type_names()))
        base_name = cluster.config.catalog.base_type.name
        if base_name not in type_names:
            # Degenerate configurations without base instances still need a reference
            # point; use the first type present.
            base_name = type_names[0]
        coefficients = heterogeneity_coefficients(
            self._estimator,
            type_names,
            base_name,
            reference_batch_size=cluster.model.max_batch_size,
        )
        self._distributor = QueryDistributor(
            self._estimator,
            coefficients,
            self.qos_ms,
            solver_method=self._solver_method,
            qos_headroom=self._qos_headroom,
            penalty_factor=self._penalty_factor,
            max_queries_per_round=self._max_queries_per_round,
        )

    # -- scheduling ---------------------------------------------------------------------
    def schedule(
        self, now_ms: float, pending: Sequence[Query], cluster: Cluster
    ) -> List[Decision]:
        if self._distributor is None:
            raise RuntimeError("policy used before bind()")
        if not pending:
            return []
        self._rounds += 1
        if self._rounds % self._refresh_interval == 0 and not self._use_perfect:
            self._rebuild_distributor()

        eligible_indices: List[int] = []
        servers = []
        for i, server in enumerate(cluster):
            if server.local_queue_depth <= 1:
                eligible_indices.append(i)
                servers.append(server)
        if not eligible_indices:
            return []
        round_result = self._distributor.distribute(now_ms, pending, servers)
        decisions: List[Decision] = []
        # The cluster's type set is invariant within a round; derive it at most once
        # per round instead of per deferred assignment.
        round_types: Optional[set] = None
        for assignment in round_result.assignments:
            if self._defer_violations and not assignment.predicted_feasible:
                if round_types is None:
                    round_types = set(cluster.type_names())
                if not self._is_hopeless(assignment.query, round_types, now_ms):
                    # Keep the query in the central queue; a better slot may open up
                    # before its deadline, and Eq. 3's waiting-time term will
                    # prioritize it then.
                    continue
            decisions.append((assignment.query, eligible_indices[assignment.server_index]))
        return decisions

    def _is_hopeless(self, query: Query, type_names, now_ms: float) -> bool:
        """True when no instance type could meet the query's deadline even if idle now.

        ``type_names`` is the set of instance-type names present in the round's
        cluster (computed once per scheduling round by :meth:`schedule`).
        """
        assert self._estimator is not None
        budget = self._qos_headroom * self.qos_ms - query.waiting_time_ms(now_ms)
        if budget <= 0:
            return True
        for type_name in type_names:
            if self._estimator.predict_ms(type_name, query.batch_size) <= budget:
                return False
        return True

    def observe_completion(self, record: QueryRecord) -> None:
        if self._estimator is not None:
            self._estimator.observe(
                record.server_type, record.query.batch_size, record.service_ms
            )

    # -- introspection --------------------------------------------------------------------
    @property
    def estimator(self) -> Optional[LatencyEstimator]:
        return self._estimator

    @property
    def coefficients(self) -> Optional[dict]:
        return dict(self._distributor.coefficients) if self._distributor else None
