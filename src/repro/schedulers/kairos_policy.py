"""Kairos's query-distribution policy: the runtime face of :mod:`repro.core.distributor`.

The policy re-solves the heterogeneity-weighted min-cost matching at every scheduling
point over the pending queries and the *eligible* instances.  Eligibility follows the
paper's ``L`` definition: an instance is considered if it is idle or currently serving
exactly one query (whose remaining time is then part of ``L``); instances that already
have a queued dispatch behind the running query are left out of the round so queries
keep waiting centrally, where later rounds can still place them better.

Latency prediction defaults to the online learner of
:class:`repro.core.latency_model.OnlineLatencyEstimator` — i.e. the evaluation includes
the paper's online-learning overhead — but a perfect or noisy estimator can be injected
(Fig. 16b).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core import cost_matrix as cost_matrix_lib
from repro.core.cost_matrix import RoundColumnState, resolve_query_models
from repro.core.distributor import QueryDistributor
from repro.core.heterogeneity import heterogeneity_coefficients
from repro.core.latency_model import (
    LatencyEstimator,
    OnlineLatencyEstimator,
    PerfectLatencyEstimator,
)
from repro.schedulers.base import Decision, SchedulingPolicy
from repro.sim.cluster import Cluster, MultiModelClusterView
from repro.sim.metrics import QueryRecord
from repro.solvers.assignment import round_solver
from repro.workload.query import Query


def _unique_type_names(type_names: Iterable[str]) -> Tuple[str, ...]:
    """Dedupe per-server type names preserving server (catalog) order.

    Never collapse type names through a ``set``: the hopeless-query check and the
    coefficient rebuild probe the estimator in this order, a stochastic estimator
    consumes one RNG draw per probe, and string-set iteration order varies with
    ``PYTHONHASHSEED`` — which once made the Fig. 16 noise rows irreproducible
    across interpreters (see TestHashSeedStability).
    """
    return tuple(dict.fromkeys(type_names))


def _round_rows(pending, cap: Optional[int]):
    """The round's considered queries plus their batch / arrival-time columns.

    A :class:`~repro.sim.pending.PendingQueue` serves its memoized snapshot arrays
    (rebuilt only when the queue changed); any other sequence takes the legacy
    per-query path.  Callers derive waiting times as ``max(0, now - arrival)``,
    exactly as ``Query.waiting_time_ms`` computes them.
    """
    snapshot_arrays = getattr(pending, "snapshot_arrays", None)
    if snapshot_arrays is not None:
        queries, batches, arrivals = snapshot_arrays()
    else:
        queries = list(pending)
        batches = np.asarray([q.batch_size for q in queries], dtype=int)
        arrivals = np.asarray([q.arrival_time_ms for q in queries], dtype=float)
    if cap is not None and len(queries) > cap:
        queries = queries[:cap]
        batches = batches[:cap]
        arrivals = arrivals[:cap]
    return queries, batches, arrivals


class KairosPolicy(SchedulingPolicy):
    """The Kairos central controller's scheduling behaviour.

    Parameters
    ----------
    estimator:
        Latency predictor; ``None`` selects the online learner (no prior knowledge).
    use_perfect_estimator:
        Convenience switch: use the true profiles instead of online learning.
    solver_method:
        Assignment solver (default: the from-scratch Jonker-Volgenant implementation).
    max_queries_per_round:
        Cap on the matching size per round (earliest arrivals first).
    coefficient_refresh_interval:
        Re-derive the heterogeneity coefficients from the estimator every N rounds, so
        the online learner's improving picture of the hardware feeds back into the
        weights.
    defer_predicted_violations:
        The matching maps every query it can (Eq. 7), including onto pairs that were
        penalized by the QoS condition (Eq. 8).  With this option (default) such
        assignments are not committed: the query stays in the central queue and is
        re-matched at the next scheduling point, unless it has become hopeless (no
        instance could meet its deadline even if idle), in which case it is dispatched
        anyway so it does not starve.  This realizes Eq. 5 as the hard constraint the
        formulation intends rather than locking in avoidable violations.
    """

    name = "KAIROS"

    def __init__(
        self,
        estimator: Optional[LatencyEstimator] = None,
        *,
        use_perfect_estimator: bool = False,
        solver_method: str = "jv",
        qos_headroom: float = 0.98,
        penalty_factor: float = 10.0,
        max_queries_per_round: Optional[int] = 64,
        coefficient_refresh_interval: int = 50,
        defer_predicted_violations: bool = True,
    ):
        super().__init__()
        self._estimator = estimator
        self._use_perfect = use_perfect_estimator
        self._solver_method = solver_method
        self._qos_headroom = qos_headroom
        self._penalty_factor = penalty_factor
        self._max_queries_per_round = max_queries_per_round
        self._refresh_interval = max(1, int(coefficient_refresh_interval))
        self._defer_violations = bool(defer_predicted_violations)
        self._distributor: Optional[QueryDistributor] = None
        self._rounds = 0
        self._columns: Optional[RoundColumnState] = None
        self._columns_source = None
        self._single_scratch: Optional[Tuple[np.ndarray, ...]] = None
        # One solver for the policy's whole life: coefficient refreshes rebuild the
        # distributor, but the JV scratch buffers survive across rebuilds.
        self._solver = round_solver(solver_method)

    # -- lifecycle -----------------------------------------------------------------------
    def on_bind(self) -> None:
        cluster = self._require_bound()
        if self._estimator is None:
            if self._use_perfect:
                self._estimator = PerfectLatencyEstimator(cluster.profiles, cluster.model)
            else:
                self._estimator = OnlineLatencyEstimator()
        self._rounds = 0
        self._columns = RoundColumnState(list(cluster))
        self._columns_source = cluster
        self._rebuild_distributor()

    def _rebuild_distributor(self) -> None:
        cluster = self._require_bound()
        assert self._estimator is not None
        type_names = list(_unique_type_names(cluster.type_names()))
        base_name = cluster.config.catalog.base_type.name
        if base_name not in type_names:
            # Degenerate configurations without base instances still need a reference
            # point; use the first type present.
            base_name = type_names[0]
        coefficients = heterogeneity_coefficients(
            self._estimator,
            type_names,
            base_name,
            reference_batch_size=cluster.model.max_batch_size,
        )
        self._distributor = QueryDistributor(
            self._estimator,
            coefficients,
            self.qos_ms,
            solver_method=self._solver_method,
            qos_headroom=self._qos_headroom,
            penalty_factor=self._penalty_factor,
            max_queries_per_round=self._max_queries_per_round,
            solver=self._solver,
        )

    # -- scheduling ---------------------------------------------------------------------
    def _columns_for(self, cluster) -> RoundColumnState:
        """The incremental column state for ``cluster`` (rebuilt on identity change).

        Simulators re-bind on every membership change (that is the :class:`ClusterView`
        contract), so within one bind the server list is fixed and the cached state
        holds; scheduling against a different container than the bound one (direct
        policy use in tests) transparently rebuilds.
        """
        columns = self._columns
        if (
            columns is None
            or cluster is not self._columns_source
            or len(cluster) != len(columns.servers)
        ):
            columns = RoundColumnState(list(cluster))
            self._columns = columns
            self._columns_source = cluster
        return columns

    def schedule(
        self, now_ms: float, pending: Sequence[Query], cluster: Cluster
    ) -> List[Decision]:
        if self._distributor is None:
            raise RuntimeError("policy used before bind()")
        if not pending:
            return []
        self._rounds += 1
        if self._rounds % self._refresh_interval == 0 and not self._use_perfect:
            self._rebuild_distributor()

        columns_state = self._columns_for(cluster)
        columns = columns_state.refresh(now_ms)
        if columns is None:
            return []
        considered, batches, arrivals = _round_rows(
            pending, self._distributor.max_queries_per_round
        )
        if len(considered) == 1:
            # The dominant round shape at steady state: the matching degenerates to
            # an argmin over one weighted row (identical to the JV single-row fast
            # path), so the matrix/solver scaffolding is skipped entirely.
            return self._schedule_single(
                considered[0],
                batches,
                max(0.0, now_ms - arrivals[0]),
                columns,
                columns_state,
                now_ms,
            )
        waits = np.maximum(now_ms - arrivals, 0.0)
        round_result = self._distributor.distribute_prepared(
            considered, batches, waits, columns
        )
        eligible_indices = columns.indices
        decisions: List[Decision] = []
        # The cluster's type set is invariant within a round; derive it at most once
        # per round instead of per deferred assignment.
        round_types: Optional[Tuple[str, ...]] = None
        for assignment in round_result.assignments:
            if self._defer_violations and not assignment.predicted_feasible:
                if round_types is None:
                    round_types = columns_state.unique_keys()
                if not self._is_hopeless(assignment.query, round_types, now_ms):
                    # Keep the query in the central queue; a better slot may open up
                    # before its deadline, and Eq. 3's waiting-time term will
                    # prioritize it then.
                    continue
            decisions.append((assignment.query, eligible_indices[assignment.server_index]))
        return decisions

    def _single_plan(self, columns, coefficients):
        """Pre-sliced scratch views + pre-filled weights for single-query rounds.

        Keyed on the (stable) full-round ``RoundColumns`` object and the
        coefficients dict identity (``_rebuild_distributor`` installs a fresh dict,
        so refreshed coefficients invalidate the plan).  Group validation and the
        weights fill run once per key instead of every round; the per-round work
        shrinks to one ``predict_many_ms`` + one ``np.add`` per type block.
        """
        cached = self._single_scratch
        if (
            cached is not None
            and cached[0] is columns
            and cached[1] is coefficients
        ):
            return cached[2]
        offsets = columns.offsets
        n = offsets.shape[0]
        usage = np.empty(n)
        weights = np.empty(n)
        tmp = np.empty(n)
        feasible = np.empty(n, dtype=bool)
        plan = []
        for type_name, cols in columns.groups:
            if type_name not in coefficients:
                raise KeyError(
                    f"no heterogeneity coefficient for instance type {type_name!r}"
                )
            coefficient = coefficients[type_name]
            if coefficient <= 0:
                raise ValueError("heterogeneity coefficients must be positive")
            weights[cols] = coefficient
            if isinstance(cols, slice):
                # stable views: `offsets` is the column state's persistent buffer,
                # refreshed in place each round, so slice views stay current
                plan.append((type_name, offsets[cols], usage[cols], None))
            else:
                # non-contiguous blocks re-gather from the live buffer each round
                plan.append((type_name, offsets, None, cols))
        state = (plan, usage, weights, tmp, feasible)
        self._single_scratch = (columns, coefficients, state)
        return state

    def _schedule_single(
        self,
        query: Query,
        batches: np.ndarray,
        wait,
        columns,
        columns_state: RoundColumnState,
        now_ms: float,
    ) -> List[Decision]:
        """One-pending-query round without the matrix/solver scaffolding.

        Performs the exact floating-point operations of the full path — per-group
        ``predict_many_ms`` calls in the same order (a stochastic estimator's RNG
        stream is part of the seed contract), the Eq. 3/Eq. 8 fold, the Eq. 2
        weighting — ending in the same first-minimum ``argmin`` the JV solver applies
        to single-row matchings, so decisions are byte-identical.
        """
        distributor = self._distributor
        estimator = distributor.estimator
        plan, usage, weights, tmp, feasible = self._single_plan(
            columns, distributor.coefficients
        )
        predict = estimator.predict_many_ms
        for type_name, off_view, usage_view, cols in plan:
            predicted = predict(type_name, batches)
            if usage_view is not None:
                np.add(off_view, predicted[0], out=usage_view)
            else:
                usage[cols] = off_view[cols] + predicted[0]
        np.add(usage, wait, out=tmp)
        np.less_equal(
            tmp, distributor.qos_headroom * distributor.qos_ms + 1e-9, out=feasible
        )
        penalized = np.where(
            feasible, usage, distributor.penalty_factor * distributor.qos_ms
        )
        np.multiply(penalized, weights, out=penalized)
        col = int(penalized.argmin())
        if self._defer_violations and not feasible[col]:
            if not self._is_hopeless(query, columns_state.unique_keys(), now_ms):
                return []
        return [(query, columns.indices[col])]

    def _is_hopeless(self, query: Query, type_names, now_ms: float) -> bool:
        """True when no instance type could meet the query's deadline even if idle now.

        ``type_names`` is the deduped, deterministically ordered sequence of
        instance-type names present in the round's cluster (computed once per
        scheduling round by :meth:`schedule`).
        """
        assert self._estimator is not None
        budget = self._qos_headroom * self.qos_ms - query.waiting_time_ms(now_ms)
        if budget <= 0:
            return True
        for type_name in type_names:
            if self._estimator.predict_ms(type_name, query.batch_size) <= budget:
                return False
        return True

    def observe_completion(self, record: QueryRecord) -> None:
        if self._estimator is not None:
            self._estimator.observe(
                record.server_type, record.query.batch_size, record.service_ms
            )

    # -- introspection --------------------------------------------------------------------
    @property
    def estimator(self) -> Optional[LatencyEstimator]:
        return self._estimator

    @property
    def coefficients(self) -> Optional[dict]:
        return dict(self._distributor.coefficients) if self._distributor else None


class MultiModelKairosPolicy(SchedulingPolicy):
    """Kairos scheduling over the union of N co-located models' pending queries.

    One joint matching per round: rows are the pending queries of every model (arrival
    order, capped at ``max_queries_per_round`` exactly like the single-model policy),
    columns the eligible instances of every model partition.  Same-model blocks are
    built by the per-(model, type) ``predict_many_ms`` fast path; cross-model pairs
    carry the Eq. 8 penalty and are *never* committed — a forced cross assignment from
    the rectangular matching simply defers the query to the next round.

    Per-model state mirrors :class:`KairosPolicy` exactly: an independent latency
    estimator (online learner by default), per-model heterogeneity coefficients
    refreshed on the same cadence, per-model QoS targets in the feasibility fold, and
    the same defer/hopeless semantics evaluated against the query's own model.  With a
    single registered model the round-by-round decisions are identical to
    :class:`KairosPolicy` (locked down by the golden tests).

    Sharded dispatch (``sharded=True``, the ROADMAP sharded-controller item)
    partitions a round per model: since an instance can only ever serve its own
    model's queries, the joint matching is block-diagonal whenever every model's
    pending backlog fits its own eligible capacity, and solving the per-model blocks
    independently cuts the solver cost from ``O((Σm)^2 Σn)`` to ``Σ O(m_k^2 n_k)``.
    Rounds where cross-model arbitration can matter fall back to the union
    matching: a contended model (more pending queries than its own eligible
    instances — which rows defer becomes a global choice) or a shard solution
    containing a QoS-penalized assignment (the union may exile such a row onto a
    cross-model column, displacing the other model's matching).  On the sharded
    rounds that remain, both paths commit the same per-model matchings (asserted by
    the fig10-style benchmark; a >10x heterogeneity-coefficient spread across
    models could in principle still make the union prefer an exile over a feasible
    in-model slot, which is why the benchmark checks rather than assumes).  The
    mode is off by default so existing runs stay byte-identical.
    """

    name = "KAIROS-MM"

    def __init__(
        self,
        estimators: Optional[Mapping[str, LatencyEstimator]] = None,
        *,
        use_perfect_estimator: bool = False,
        solver_method: str = "jv",
        qos_headroom: float = 0.98,
        penalty_factor: float = 10.0,
        max_queries_per_round: Optional[int] = 64,
        coefficient_refresh_interval: int = 50,
        defer_predicted_violations: bool = True,
        sharded: bool = False,
    ):
        super().__init__()
        self._estimators: Dict[str, LatencyEstimator] = (
            dict(estimators) if estimators is not None else {}
        )
        self._sharded = bool(sharded)
        #: Sharded-dispatch round accounting (for the fig10-style overhead benchmark):
        #: matrix cells actually solved, rounds solved sharded, union fallbacks.
        self.solved_cells = 0
        self.sharded_rounds = 0
        self.union_rounds = 0
        self._use_perfect = use_perfect_estimator
        self._solver_method = solver_method
        self._qos_headroom = qos_headroom
        self._penalty_factor = penalty_factor
        self._max_queries_per_round = max_queries_per_round
        self._refresh_interval = max(1, int(coefficient_refresh_interval))
        self._defer_violations = bool(defer_predicted_violations)
        self._coefficients: Dict[str, Dict[str, float]] = {}
        self._qos_by_model: Dict[str, float] = {}
        self._rounds = 0
        # Persistent solver: jv scratch buffers are reused across all rounds of a run.
        self._solver = round_solver(solver_method)
        self._columns: Optional[RoundColumnState] = None
        self._columns_source = None
        self._server_models_full: Tuple[str, ...] = ()
        self._round_types_of: Dict[str, Tuple[str, ...]] = {}
        self._model_masks: Dict[str, np.ndarray] = {}
        self._single_scratch: Optional[Tuple[np.ndarray, ...]] = None
        self._shard_plans: Optional[Tuple] = None

    # -- lifecycle -----------------------------------------------------------------------
    def bind(self, cluster: MultiModelClusterView, qos_ms: Optional[float] = None) -> None:
        """Attach to a multi-model view; per-model QoS targets come from the view.

        ``qos_ms`` exists for protocol compatibility and, when given, must match the
        strictest model target (it is otherwise ignored).
        """
        self.cluster = cluster
        self._qos_by_model = dict(cluster.qos_by_model())
        strictest = min(self._qos_by_model.values())
        if qos_ms is not None and abs(qos_ms - strictest) > 1e-9:
            raise ValueError(
                "multi-model policies derive per-model QoS from the cluster; "
                f"got qos_ms={qos_ms} but the strictest model target is {strictest}"
            )
        self.qos_ms = strictest
        self.on_bind()

    def on_bind(self) -> None:
        cluster = self._require_bound()
        for name in cluster.model_names:
            if name not in self._estimators:
                if self._use_perfect:
                    self._estimators[name] = PerfectLatencyEstimator(
                        cluster.profiles, cluster.model(name)
                    )
                else:
                    self._estimators[name] = OnlineLatencyEstimator()
        self._rounds = 0
        self._bind_columns(cluster)
        self._rebuild_coefficients()

    def _bind_columns(self, cluster: MultiModelClusterView) -> None:
        """(Re)derive the per-bind column state and static per-model type orders."""
        server_models = tuple(cluster.server_models())
        type_names = cluster.type_names()
        self._columns = RoundColumnState(
            list(cluster), keys=list(zip(server_models, type_names))
        )
        self._columns_source = cluster
        self._server_models_full = server_models
        # The hopeless check probes each model's types in full-view server order —
        # static per bind, so computed here rather than per round.
        self._round_types_of = {
            model_name: _unique_type_names(
                name
                for name, server_model in zip(type_names, server_models)
                if server_model == model_name
            )
            for model_name in dict.fromkeys(server_models)
        }
        self._model_masks = {
            model_name: np.asarray(
                [m == model_name for m in server_models], dtype=bool
            )
            for model_name in dict.fromkeys(server_models)
        }

    def _rebuild_coefficients(self) -> None:
        cluster = self._require_bound()
        base_catalog_name = cluster.profiles.catalog.base_type.name
        server_models = cluster.server_models()
        type_names_of: Dict[str, List[str]] = {}
        for server, model_name in zip(cluster, server_models):
            names = type_names_of.setdefault(model_name, [])
            if server.type_name not in names:
                names.append(server.type_name)
        self._coefficients = {}
        for model_name, type_names in type_names_of.items():
            base_name = (
                base_catalog_name if base_catalog_name in type_names else type_names[0]
            )
            self._coefficients[model_name] = heterogeneity_coefficients(
                self._estimators[model_name],
                type_names,
                base_name,
                reference_batch_size=cluster.model(model_name).max_batch_size,
            )

    # -- scheduling ---------------------------------------------------------------------
    def schedule(
        self, now_ms: float, pending: Sequence[Query], cluster: MultiModelClusterView
    ) -> List[Decision]:
        if not self._qos_by_model:
            raise RuntimeError("policy used before bind()")
        if not pending:
            return []
        self._rounds += 1
        if self._rounds % self._refresh_interval == 0 and not self._use_perfect:
            self._rebuild_coefficients()

        if (
            self._columns is None
            or cluster is not self._columns_source
            or len(cluster) != len(self._columns.servers)
        ):
            self._bind_columns(cluster)
        columns_state = self._columns
        columns = columns_state.refresh(now_ms)
        if columns is None:
            return []
        eligible_indices = columns.indices

        considered, batches, arrivals = _round_rows(pending, self._max_queries_per_round)
        if len(considered) == 1:
            return self._schedule_single(
                considered[0], batches, max(0.0, now_ms - arrivals[0]), columns, now_ms
            )
        waits = np.maximum(now_ms - arrivals, 0.0)
        query_models = resolve_query_models(considered, self._qos_by_model)
        row_scale = self._row_cost_scale(considered, now_ms)
        if self._sharded and row_scale is None:
            # Row-priority rounds (pipeline laxity) are inherently global — which
            # urgent row wins a contended column is cross-model arbitration — so they
            # always take the union matching; plain rounds shard as before.
            decisions = self._schedule_sharded(
                considered, query_models, batches, waits, columns, now_ms
            )
            if decisions is not None:
                return decisions
        full_models = self._server_models_full
        server_models = tuple(full_models[i] for i in eligible_indices)
        matrix = cost_matrix_lib.assemble_multi_model(
            considered,
            query_models,
            self._estimators,
            self._qos_by_model,
            self._coefficients,
            self._qos_headroom,
            self._penalty_factor,
            batches,
            waits,
            columns.offsets,
            columns.groups,
            columns.server_ids,
            server_models,
        )
        weighted = matrix.weighted
        if row_scale is not None:
            # Scale feasible cells only.  Infeasible cells carry a flat
            # penalty cost; discounting them too would make exiling an urgent
            # row onto a penalized (and therefore deferred) column the cheapest
            # assignment — the opposite of a priority boost.
            weighted = np.where(
                matrix.qos_feasible, weighted * row_scale[:, None], weighted
            )
        result_rows, result_cols = self._solver(weighted)
        self.union_rounds += 1
        self.solved_cells += matrix.weighted.size

        decisions: List[Decision] = []
        for row, col in zip(result_rows.tolist(), result_cols.tolist()):
            if matrix.cross_model[row, col]:
                # an instance of another model can never serve this query: always defer
                continue
            query = considered[row]
            model_name = matrix.query_models[row]
            if self._defer_violations and not matrix.qos_feasible[row, col]:
                if not self._is_hopeless(
                    query, model_name, self._round_types_of[model_name], now_ms
                ):
                    continue
            decisions.append((query, eligible_indices[col]))
        return decisions

    def _schedule_sharded(
        self,
        considered: Sequence[Query],
        query_models: Tuple[str, ...],
        batches: np.ndarray,
        waits: np.ndarray,
        columns,
        now_ms: float,
    ) -> Optional[List[Decision]]:
        """Solve the round per model partition; ``None`` falls back to the union.

        An instance only ever serves its own model, so whenever every model's pending
        rows fit into its own eligible columns the joint matrix is effectively
        block-diagonal and the blocks can be matched independently — each with the
        same single-model assembly (:func:`assemble_cost_matrix`, no cross-model
        fold needed) and the same defer/hopeless semantics.  Two round shapes make
        cross-model arbitration matter and fall back to the union matching:

        * a model's backlog exceeds its own eligible capacity (which rows defer is
          then a global choice), and
        * a shard's solution contains a QoS-penalized assignment — the union solve
          may exile such a row onto a cross-model column instead (deferring it
          *and* displacing that column from the other model's matching), so the
          per-model solves are no longer equivalent.
        """
        rows_by_model: Dict[str, List[int]] = {}
        for i, name in enumerate(query_models):
            rows_by_model.setdefault(name, []).append(i)

        shards = self._shard_structure(columns)
        for model_name, rows in rows_by_model.items():
            shard = shards.get(model_name)
            if shard is None or len(rows) > len(shard[0]):
                return None  # contended: the union matching arbitrates deferral

        offsets = columns.offsets
        indices = columns.indices
        decisions: List[Decision] = []
        cells = 0
        for model_name, rows in rows_by_model.items():
            positions, pos_arr, groups, server_ids_m = shards[model_name]
            queries_m = [considered[i] for i in rows]
            rows_arr = np.asarray(rows, dtype=np.intp)
            matrix = cost_matrix_lib.assemble_cost_matrix(
                queries_m,
                self._estimators[model_name],
                self._qos_by_model[model_name],
                self._coefficients[model_name],
                self._qos_headroom,
                self._penalty_factor,
                batches[rows_arr],
                waits[rows_arr],
                offsets[pos_arr],
                groups,
                server_ids_m,
            )
            result_rows, result_cols = self._solver(matrix.weighted)
            cells += matrix.weighted.size
            if not matrix.qos_feasible[result_rows, result_cols].all():
                # A penalized assignment inside a shard: the union matching may
                # prefer exiling that row cross-model (global arbitration), so the
                # block-diagonal decomposition no longer holds — fall back.
                return None
            for row, col in zip(result_rows.tolist(), result_cols.tolist()):
                decisions.append((queries_m[row], indices[positions[col]]))
        self.sharded_rounds += 1
        self.solved_cells += cells
        return decisions

    def _shard_structure(self, columns) -> Dict[str, tuple]:
        """Per-model column structure of a round: positions, groups, server ids.

        Memoized on the ``RoundColumns`` identity — stable across all fully-eligible
        rounds of one bind, so sharded rounds skip the per-round re-derivation.
        """
        cached = self._shard_plans
        if cached is not None and cached[0] is columns:
            return cached[1]
        full_models = self._server_models_full
        indices = columns.indices
        state = self._columns
        positions_by_model: Dict[str, List[int]] = {}
        for pos, view_idx in enumerate(indices):
            positions_by_model.setdefault(full_models[view_idx], []).append(pos)
        shards: Dict[str, tuple] = {}
        for model_name, positions in positions_by_model.items():
            type_names = [state.servers[indices[p]].type_name for p in positions]
            shards[model_name] = (
                positions,
                np.asarray(positions, dtype=np.intp),
                cost_matrix_lib.group_columns(type_names),
                tuple(columns.server_ids[p] for p in positions),
            )
        self._shard_plans = (columns, shards)
        return shards

    def _single_plan(self, columns, model_name: str):
        """Per-(columns, coefficients, model) plan for single-query joint rounds.

        Mirrors :meth:`KairosPolicy._single_plan`: group validation and the weights
        fill run once per coefficient refresh; the plan keeps stable views only for
        the query model's blocks (cross-model blocks never leave the row penalty).
        """
        cached = self._single_scratch
        coefficients_root = self._coefficients
        if (
            cached is None
            or cached[0] is not columns
            or cached[1] is not coefficients_root
        ):
            cached = (columns, coefficients_root, {})
            self._single_scratch = cached
        plans = cached[2]
        state = plans.get(model_name)
        if state is not None:
            return state
        offsets = columns.offsets
        n = offsets.shape[0]
        usage = np.empty(n)
        weights = np.empty(n)
        tmp = np.empty(n)
        feasible = np.empty(n, dtype=bool)
        plan = []
        for (group_model, type_name), cols in columns.groups:
            coefficients = coefficients_root.get(group_model)
            if coefficients is None or type_name not in coefficients:
                raise KeyError(
                    f"no heterogeneity coefficient for model {group_model!r} "
                    f"type {type_name!r}"
                )
            coefficient = coefficients[type_name]
            if coefficient <= 0:
                raise ValueError("heterogeneity coefficients must be positive")
            weights[cols] = coefficient
            if group_model != model_name:
                continue  # cross-model block: stays at the row penalty, no estimator call
            if isinstance(cols, slice):
                plan.append((type_name, offsets[cols], usage[cols], None))
            else:
                plan.append((type_name, offsets, None, cols))
        full_mask = self._model_masks[model_name]
        indices = columns.indices
        if len(indices) == full_mask.shape[0]:
            same_model = full_mask
        else:
            same_model = full_mask[np.asarray(indices, dtype=np.intp)]
        state = (plan, usage, weights, tmp, feasible, same_model)
        plans[model_name] = state
        return state

    def _schedule_single(
        self, query: Query, batches: np.ndarray, wait, columns, now_ms: float
    ) -> List[Decision]:
        """One-pending-query joint round (see :meth:`KairosPolicy._schedule_single`).

        Reproduces the joint matrix's single row exactly: every (model, type) block
        contributes its weight (and its coefficient validation), but only the query's
        own model issues estimator calls — cross-model columns keep the row's Eq. 8
        penalty and are never committed.
        """
        model_name = resolve_query_models((query,), self._qos_by_model)[0]
        if model_name not in self._model_masks:
            # every instance of this model is gone (crashed or drained): nothing can
            # serve the query this round — defer until replacement capacity arrives
            # (the multi-query path reaches the same outcome via its cross-model guard)
            return []
        qos = self._qos_by_model[model_name]
        penalty = self._penalty_factor * qos
        plan, usage, weights, tmp, feasible, same_model = self._single_plan(
            columns, model_name
        )
        usage.fill(penalty)
        predict = self._estimators[model_name].predict_many_ms
        for type_name, off_view, usage_view, cols in plan:
            predicted = predict(type_name, batches)
            if usage_view is not None:
                np.add(off_view, predicted[0], out=usage_view)
            else:
                usage[cols] = off_view[cols] + predicted[0]
        np.add(usage, wait, out=tmp)
        np.less_equal(tmp, self._qos_headroom * qos + 1e-9, out=feasible)
        feasible &= same_model
        penalized = np.where(feasible, usage, penalty)
        np.multiply(penalized, weights, out=penalized)
        col = int(penalized.argmin())
        if not same_model[col]:
            # an instance of another model can never serve this query: always defer
            return []
        if self._defer_violations and not feasible[col]:
            if not self._is_hopeless(
                query, model_name, self._round_types_of[model_name], now_ms
            ):
                return []
        return [(query, columns.indices[col])]

    def _row_cost_scale(
        self, considered: Sequence[Query], now_ms: float
    ) -> Optional[np.ndarray]:
        """Optional per-row cost multipliers folded into the union matching.

        The base policy returns ``None`` — no scaling, no extra floating-point
        operations, so decisions stay byte-identical.  Subclasses (the pipeline's
        critical-path policy) return a vector of positive multipliers to make
        urgent rows win contended columns; a row's multiplier never changes which
        column that row prefers (a positive scalar preserves the row's argmin),
        only how the matching arbitrates between rows.
        """
        return None

    def _is_hopeless(
        self, query: Query, model_name: str, type_names, now_ms: float
    ) -> bool:
        """True when no instance of the query's model could meet its deadline even idle."""
        estimator = self._estimators[model_name]
        budget = (
            self._qos_headroom * self._qos_by_model[model_name]
            - query.waiting_time_ms(now_ms)
        )
        if budget <= 0:
            return True
        for type_name in type_names:
            if estimator.predict_ms(type_name, query.batch_size) <= budget:
                return False
        return True

    def observe_completion(self, record: QueryRecord) -> None:
        name = record.query.model_name
        if name is None:
            if len(self._estimators) != 1:
                raise ValueError(
                    "untagged completion record in a multi-model policy with "
                    f"{len(self._estimators)} models"
                )
            name = next(iter(self._estimators))
        self._estimators[name].observe(
            record.server_type, record.query.batch_size, record.service_ms
        )

    # -- introspection --------------------------------------------------------------------
    def estimator_of(self, model_name: str) -> LatencyEstimator:
        return self._estimators[model_name]

    @property
    def coefficients_by_model(self) -> Dict[str, Dict[str, float]]:
        return {name: dict(c) for name, c in self._coefficients.items()}
