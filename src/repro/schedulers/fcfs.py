"""Ribbon's query-distribution mechanism: first-come-first-serve, base type preferred.

Ribbon (SC'21) concentrates on *allocating* a heterogeneous pool (via Bayesian
optimization, see :mod:`repro.search.bayesian`); its query distribution is a simple FCFS
policy that places each arriving query on an idle instance, preferring base-type
instances when several are idle (paper Sec. 7, "Competing query distribution
techniques").  Ribbon is QoS-aware in the minimal sense of Table 1 — it will not place a
query on an instance type that cannot serve that batch size within the QoS target even
in isolation — but it performs no query *mapping*: it ignores queue timings, waiting
times, and the relative value of instance time, which is what limits it in Figs. 3
and 9.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.schedulers.base import Decision, SchedulingPolicy
from repro.sim.cluster import Cluster
from repro.workload.query import Query


class RibbonFCFSPolicy(SchedulingPolicy):
    """FCFS distribution preferring idle base instances, then idle auxiliary instances.

    Auxiliary instances are considered in catalog order, which orders them roughly by
    decreasing capability in the default catalog (c5n, r5n, t3).  A query is never
    placed on an instance whose service latency alone would violate QoS; if no idle
    instance can serve it, it waits in the central queue (later queries may still be
    placed on other idle instances).
    """

    name = "RIBBON"

    def on_bind(self) -> None:
        cluster = self._require_bound()
        # Per-server maximum feasible batch size (service latency within QoS).
        self._max_batch: List[int] = [
            server.profile.max_feasible_batch(self.qos_ms, cluster.model.max_batch_size)
            for server in cluster
        ]

    def schedule(
        self, now_ms: float, pending: Sequence[Query], cluster: Cluster
    ) -> List[Decision]:
        idle = self.idle_server_indices(cluster, now_ms)
        if not idle:
            return []
        base_idle, aux_idle = self.split_by_base(cluster, idle)
        available = base_idle + aux_idle
        decisions: List[Decision] = []
        for query in pending:
            if not available:
                break
            chosen: Optional[int] = None
            for pos, server_idx in enumerate(available):
                if query.batch_size <= self._max_batch[server_idx]:
                    chosen = pos
                    break
            if chosen is None:
                # No idle instance can serve this query within QoS; it keeps waiting.
                continue
            decisions.append((query, available.pop(chosen)))
        return decisions
