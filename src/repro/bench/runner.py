"""Timing, calibration, and regression comparison for the perf harness.

Everything here is deliberately dependency-free (stdlib + numpy): the harness must run
in the same environment as the test suite and in CI without extra tooling.
"""

from __future__ import annotations

import math
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Work units assigned to one pass of the calibration workload; the machine score is
#: ``CALIBRATION_UNITS / best_wall_seconds``, i.e. a faster host scores higher.
CALIBRATION_UNITS = 1.0


def _calibration_workload() -> float:
    """A fixed, deterministic mix of Python-level and numpy work.

    The hot paths being benchmarked are exactly this mix (Python dispatch loops over
    numpy kernels), so normalizing throughputs by this score makes numbers recorded on
    different hosts roughly comparable — which is what lets CI apply a fixed
    regression tolerance to a committed file.
    """
    acc = 0.0
    for i in range(40_000):
        acc += (i & 7) * 0.5
    vec = np.arange(16_384, dtype=float)
    for _ in range(64):
        acc += float(vec @ vec)
    rows = np.arange(64.0)[:, None] + np.arange(48.0)[None, :]
    for _ in range(32):
        acc += float(np.where(rows > 40.0, rows, rows * 2.0).sum())
    return acc


def machine_score(repeats: int = 3) -> float:
    """Calibration score of this host (higher = faster), best of ``repeats`` passes."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        _calibration_workload()
        best = min(best, time.perf_counter() - start)
    return CALIBRATION_UNITS / best


@dataclass(frozen=True)
class BenchResult:
    """One benchmark measurement.

    ``value`` is a throughput (higher is better) in ``unit``; ``normalized`` is
    ``value / machine_score`` and is what regression comparisons use.
    """

    name: str
    preset: str
    value: float
    unit: str
    wall_seconds: float
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """The identity used in ``BENCH_perf.json`` (name + scale preset)."""
        return f"{self.name}@{self.preset}"

    def normalized(self, score: float) -> float:
        if score <= 0:
            raise ValueError("machine score must be positive")
        return self.value / score

    def as_dict(self, score: float) -> Dict[str, object]:
        return {
            "value": self.value,
            "unit": self.unit,
            "normalized": self.normalized(score),
            "wall_seconds": self.wall_seconds,
            "extras": dict(self.extras),
        }


def time_throughput(
    work: Callable[[], float],
    *,
    min_seconds: float = 0.2,
    max_rounds: int = 50,
) -> Tuple[float, float]:
    """Run ``work`` (which returns a unit count) until ``min_seconds`` of wall time.

    Returns ``(units_per_second, total_wall_seconds)``.  Repeating short workloads
    until a minimum wall time keeps micro-benchmark numbers stable without pinning a
    fixed (and machine-dependent) round count.
    """
    total_units = 0.0
    total_wall = 0.0
    rounds = 0
    while total_wall < min_seconds and rounds < max_rounds:
        start = time.perf_counter()
        units = work()
        total_wall += time.perf_counter() - start
        total_units += units
        rounds += 1
    if total_wall <= 0:
        raise RuntimeError("benchmark workload consumed no measurable time")
    return total_units / total_wall, total_wall


def run_benchmarks(
    preset: str,
    *,
    names: Optional[Sequence[str]] = None,
    benchmarks: Optional[Mapping[str, Callable[[str], BenchResult]]] = None,
) -> List[BenchResult]:
    """Run the registered benchmarks for one scale preset, in registry order."""
    from repro.bench.suites import BENCHMARKS, PRESETS

    table = benchmarks if benchmarks is not None else BENCHMARKS
    if benchmarks is None and preset not in PRESETS:
        raise KeyError(f"unknown preset {preset!r}; available: {sorted(PRESETS)}")
    selected = list(table) if names is None else list(names)
    unknown = [n for n in selected if n not in table]
    if unknown:
        raise KeyError(f"unknown benchmarks: {unknown}")
    return [table[name](preset) for name in selected]


@dataclass(frozen=True)
class Regression:
    """One benchmark whose normalized throughput fell below the allowed fraction."""

    key: str
    current: float
    committed: float

    @property
    def ratio(self) -> float:
        return self.current / self.committed if self.committed > 0 else math.inf


def compare_results(
    current: Mapping[str, float],
    committed: Mapping[str, float],
    *,
    tolerance: float = 0.30,
) -> List[Regression]:
    """Regressions of ``current`` vs ``committed`` normalized throughputs.

    Only keys present on both sides are compared (a new benchmark cannot regress, and a
    retired one stops gating).  A benchmark regresses when its normalized throughput
    drops below ``(1 - tolerance)`` of the committed number.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError("tolerance must lie in (0, 1)")
    regressions: List[Regression] = []
    for key in sorted(set(current) & set(committed)):
        cur, ref = float(current[key]), float(committed[key])
        if ref <= 0:
            continue
        if cur < (1.0 - tolerance) * ref:
            regressions.append(Regression(key=key, current=cur, committed=ref))
    return regressions


def environment_fingerprint() -> Dict[str, str]:
    """Coarse host description recorded alongside the numbers (context, not identity)."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "numpy": np.__version__,
    }
