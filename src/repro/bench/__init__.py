"""Performance-benchmark harness for the reproduction's hot paths.

The figure benchmarks under ``benchmarks/`` answer *"does the reproduction match the
paper?"*; this package answers *"is the reproduction fast enough to keep telling that
story?"*.  The paper's headline operational claim — ranking ~1000 configurations by the
closed-form upper bound takes ~2 seconds where one online evaluation takes hours — only
survives growth of the codebase if the hot paths are measured continuously, so every
optimization PR is held to the numbers recorded here.

Structure
---------
:mod:`repro.bench.runner`
    Timing/calibration machinery: a deterministic machine-score calibration (so recorded
    throughputs are comparable across hosts), the :class:`~repro.bench.runner.BenchResult`
    record, and the regression comparison used by the CI gate.
:mod:`repro.bench.suites`
    The benchmark definitions, micro and macro:

    * ``serving_sim`` — end-to-end serving-simulation throughput (queries/sec) under the
      Kairos policy with online latency learning (the paper's default operating point);
    * ``cost_matrix`` — scheduling-round ``L``-matrix builds/sec on a pre-trained online
      estimator (the per-round hot loop of the central controller);
    * ``planner_rank`` — configurations ranked per second by the closed-form upper bound
      at the default $2.5/hr budget;
    * ``planner_rank_4x`` — the same at the 4x budget of Fig. 15a (tens of thousands of
      configurations), the scale the paper's "one shot" claim is really about;
    * ``elastic_replan`` — wall time of one full :class:`~repro.core.kairos.KairosPlanner`
      pass as issued by the elastic controller's re-plan (enumerate + rank + select).

Workloads are seeded and deterministic; only wall-clock time varies between runs.  The
committed ``BENCH_perf.json`` at the repository root records the latest numbers together
with the pre-optimization baseline measured by this same harness; ``tools/bench.py``
refuses (exit code 1) any run that regresses a committed number by more than 30% after
machine normalization, which is the ``bench-smoke`` stage of ``tools/ci.sh``.
"""

from repro.bench.runner import (
    BenchResult,
    compare_results,
    machine_score,
    run_benchmarks,
)
from repro.bench.suites import BENCHMARKS, PRESETS

__all__ = [
    "BENCHMARKS",
    "PRESETS",
    "BenchResult",
    "compare_results",
    "machine_score",
    "run_benchmarks",
]
