"""The perf-benchmark definitions (see the package docstring for the catalog).

Every benchmark is a function ``(preset: str) -> BenchResult`` registered in
:data:`BENCHMARKS`.  Workloads are seeded, so two runs on the same code measure the same
work; only wall time varies.  Scale presets (:data:`PRESETS`) keep one benchmark
*identity* per (name, preset) pair — comparisons in ``BENCH_perf.json`` are only ever
made within the same preset.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.bench.runner import BenchResult, time_throughput
from repro.cloud.config import HeterogeneousConfig
from repro.cloud.profiles import default_profile_registry
from repro.core.config_space import enumerate_configs
from repro.core.cost_matrix import build_cost_matrix
from repro.core.kairos import KairosPlanner
from repro.core.latency_model import OnlineLatencyEstimator
from repro.core.upper_bound import ThroughputUpperBoundEstimator
from repro.sim.cluster import Cluster
from repro.sim.simulation import ServingSimulation
from repro.workload.batch_sizes import (
    TruncatedLogNormalBatchSizes,
    production_batch_distribution,
)
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

SEED = 20230715

#: Scale presets.  ``smoke`` exists for the unit tests of the harness itself; ``quick``
#: is what the CI ``bench-smoke`` stage runs; ``full`` is the committed reference scale.
PRESETS: Dict[str, Dict[str, float]] = {
    "smoke": dict(
        serving_queries=60,
        serving_rate_qps=60.0,
        serving_counts=(2, 2, 4, 0),
        cost_matrix_queries=16,
        cost_matrix_servers=8,
        cost_matrix_variants=4,
        jv_rows=8,
        jv_cols=12,
        jv_variants=4,
        rank_budget=1.0,
        rank_4x_budget=2.0,
        replan_budget=1.0,
        mm_queries=40,
        mm_rates=(25.0, 150.0),
        mm_counts=((1, 1, 2, 0), (1, 1, 2, 0)),
        pipe_queries=40,
        pipe_rates=(25.0, 150.0),
        pipe_counts=((1, 1, 2, 0), (1, 1, 2, 0)),
        pipe_graphs=4,
        spot_queries=60,
        spot_rate_qps=60.0,
        spot_counts=(2, 2, 4, 0),
        spot_portion=(1, 1, 2, 0),
        fleet_models=2,
        fleet_counts=(2, 2, 4, 0),
        fleet_queries=100,
        fleet_rate_qps=100.0,
        fleet_burst=8,
        min_seconds=0.05,
    ),
    "quick": dict(
        serving_queries=300,
        serving_rate_qps=150.0,
        serving_counts=(6, 6, 12, 0),
        cost_matrix_queries=48,
        cost_matrix_servers=16,
        cost_matrix_variants=8,
        jv_rows=32,
        jv_cols=48,
        jv_variants=8,
        rank_budget=2.5,
        rank_4x_budget=10.0,
        replan_budget=2.5,
        mm_queries=150,
        mm_rates=(60.0, 400.0),
        mm_counts=((3, 3, 6, 0), (3, 3, 6, 0)),
        pipe_queries=150,
        pipe_rates=(60.0, 400.0),
        pipe_counts=((3, 3, 6, 0), (3, 3, 6, 0)),
        pipe_graphs=12,
        spot_queries=300,
        spot_rate_qps=150.0,
        spot_counts=(6, 6, 12, 0),
        spot_portion=(3, 3, 6, 0),
        fleet_models=5,
        fleet_counts=(14, 14, 28, 0),
        fleet_queries=1000,
        fleet_rate_qps=400.0,
        fleet_burst=32,
        min_seconds=0.15,
    ),
    "full": dict(
        serving_queries=1000,
        serving_rate_qps=150.0,
        serving_counts=(6, 6, 12, 0),
        cost_matrix_queries=64,
        cost_matrix_servers=24,
        cost_matrix_variants=8,
        jv_rows=64,
        jv_cols=96,
        jv_variants=8,
        rank_budget=2.5,
        rank_4x_budget=10.0,
        replan_budget=5.0,
        mm_queries=500,
        mm_rates=(60.0, 400.0),
        mm_counts=((3, 3, 6, 0), (3, 3, 6, 0)),
        pipe_queries=500,
        pipe_rates=(60.0, 400.0),
        pipe_counts=((3, 3, 6, 0), (3, 3, 6, 0)),
        pipe_graphs=24,
        spot_queries=1000,
        spot_rate_qps=150.0,
        spot_counts=(6, 6, 12, 0),
        spot_portion=(3, 3, 6, 0),
        fleet_models=5,
        fleet_counts=(56, 56, 112, 0),
        fleet_queries=10_000,
        fleet_rate_qps=800.0,
        fleet_burst=64,
        min_seconds=0.4,
    ),
    # The ``fleet`` preset pairs with ``fleet_sim`` only (run it via
    # ``tools/bench.py --fleet``): all five models, 448 servers each (2,240 total),
    # 200k queries per model (10^6 total).  It carries no parameters for the other
    # benchmarks on purpose — they have nothing meaningful to measure at this scale.
    "fleet": dict(
        fleet_models=5,
        fleet_counts=(112, 112, 224, 0),
        fleet_queries=200_000,
        fleet_rate_qps=800.0,
        fleet_burst=64,
        min_seconds=0.4,
    ),
}

MODEL = "RM2"


def _params(preset: str) -> Dict[str, float]:
    try:
        return PRESETS[preset]
    except KeyError:
        raise KeyError(f"unknown preset {preset!r}; available: {sorted(PRESETS)}") from None


def bench_serving_sim(preset: str) -> BenchResult:
    """Macro: end-to-end serving-simulation throughput (simulated queries per second).

    The paper's default operating point: Kairos policy, online latency learning, a
    heterogeneous cluster, arrival rate high enough that the central queue stays busy —
    so the measurement is dominated by scheduling rounds, not event-queue idling.
    """
    p = _params(preset)
    profiles = default_profile_registry()
    config = HeterogeneousConfig(tuple(p["serving_counts"]), profiles.catalog)
    model = profiles.models[MODEL]
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
        num_queries=int(p["serving_queries"]),
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=p["serving_rate_qps"], rng=SEED)

    def work() -> float:
        from repro.schedulers.kairos_policy import KairosPolicy

        cluster = Cluster(config, model, profiles)
        sim = ServingSimulation(
            cluster, KairosPolicy(), rng=np.random.default_rng(SEED + 1)
        )
        report = sim.run(queries)
        return float(report.dispatched_queries)

    qps, wall = time_throughput(work, min_seconds=p["min_seconds"])
    return BenchResult(
        name="serving_sim",
        preset=preset,
        value=qps,
        unit="queries/s",
        wall_seconds=wall,
        extras={"num_queries": float(p["serving_queries"])},
    )


def bench_cost_matrix(preset: str) -> BenchResult:
    """Micro: scheduling-round ``L``-matrix builds per second.

    Uses a pre-trained online estimator (the steady-state case: the learner has seen
    each type) over a mixed-type server pool, cycling through several distinct pending
    sets and scheduling instants so the measurement covers both cold and memoized
    prediction vectors — the same mix a long serving run produces.
    """
    p = _params(preset)
    profiles = default_profile_registry()
    model = profiles.models[MODEL]
    catalog = profiles.catalog
    n_servers = int(p["cost_matrix_servers"])
    m_queries = int(p["cost_matrix_queries"])
    rng = np.random.default_rng(SEED)

    type_cycle = [t.name for t in catalog.types[:3]]
    cluster_counts = {name: 0 for name in catalog.names}
    for i in range(n_servers):
        cluster_counts[type_cycle[i % len(type_cycle)]] += 1
    config = HeterogeneousConfig.from_mapping(cluster_counts, catalog)
    cluster = Cluster(config, model, profiles)
    servers = cluster.servers
    for i, server in enumerate(servers):
        server.busy_until_ms = float((i * 7) % 40)

    estimator = OnlineLatencyEstimator()
    for name in type_cycle:
        profile = profiles.profile(model, catalog[name])
        for batch in (1, 64, 256, 512, model.max_batch_size):
            estimator.observe(name, batch, float(profile.latency_ms(batch)))

    coefficients = {name: 1.0 if i == 0 else 0.3 for i, name in enumerate(catalog.names)}
    from repro.workload.query import Query

    variants: List[List[Query]] = []
    for v in range(int(p["cost_matrix_variants"])):
        batches = rng.integers(1, model.max_batch_size + 1, size=m_queries)
        variants.append(
            [Query(v * m_queries + i, int(b), 0.0) for i, b in enumerate(batches)]
        )

    def work() -> float:
        builds = 0
        for round_idx, queries in enumerate(variants):
            build_cost_matrix(
                queries,
                servers,
                estimator,
                float(10 * round_idx),
                model.qos_ms,
                coefficients,
            )
            builds += 1
        return float(builds)

    builds_per_sec, wall = time_throughput(work, min_seconds=p["min_seconds"])
    return BenchResult(
        name="cost_matrix",
        preset=preset,
        value=builds_per_sec,
        unit="builds/s",
        wall_seconds=wall,
        extras={"queries": float(m_queries), "servers": float(n_servers)},
    )


def bench_jv_solver(preset: str) -> BenchResult:
    """Micro: Jonker-Volgenant matchings solved per second (the round's inner loop).

    Half the instances are dense uniform-random rectangular matrices, half are
    QoS-structured like a real scheduling round: a large Eq. 8 penalty on most
    entries (with heavy ties, exercising the solver's unassigned-column tie-break)
    and small feasible pockets.  All solves share one
    :class:`~repro.solvers.jonker_volgenant.JonkerVolgenantSolver`, matching the
    scratch-buffer reuse of a simulation run (``solve_many``).
    """
    p = _params(preset)
    from repro.solvers.jonker_volgenant import JonkerVolgenantSolver

    m, n = int(p["jv_rows"]), int(p["jv_cols"])
    rng = np.random.default_rng(SEED)
    matrices: List[np.ndarray] = []
    for v in range(int(p["jv_variants"])):
        if v % 2 == 0:
            matrices.append(rng.uniform(1.0, 1_000.0, size=(m, n)))
        else:
            qos_like = np.full((m, n), 3_500.0)  # Eq. 8 penalty plateau (tie-heavy)
            feasible = rng.random((m, n)) < 0.25
            qos_like[feasible] = rng.uniform(10.0, 300.0, size=int(feasible.sum()))
            matrices.append(qos_like)
    solver = JonkerVolgenantSolver()

    def work() -> float:
        results = solver.solve_many(matrices)
        return float(len(results))

    solves_per_sec, wall = time_throughput(work, min_seconds=p["min_seconds"])
    return BenchResult(
        name="jv_solver",
        preset=preset,
        value=solves_per_sec,
        unit="solves/s",
        wall_seconds=wall,
        extras={"rows": float(m), "cols": float(n), "variants": float(p["jv_variants"])},
    )


def _rank_benchmark(name: str, preset: str, budget: float, min_seconds: float) -> BenchResult:
    profiles = default_profile_registry()
    samples = production_batch_distribution().sample(4000, np.random.default_rng(SEED))
    estimator = ThroughputUpperBoundEstimator(profiles, MODEL, samples)
    space = enumerate_configs(budget, profiles.catalog)

    def work() -> float:
        estimator.rank_configs(space)
        return float(len(space))

    configs_per_sec, wall = time_throughput(work, min_seconds=min_seconds)
    return BenchResult(
        name=name,
        preset=preset,
        value=configs_per_sec,
        unit="configs/s",
        wall_seconds=wall,
        extras={"space_size": float(len(space)), "budget_per_hour": budget},
    )


def bench_planner_rank(preset: str) -> BenchResult:
    """Micro: configurations ranked per second at the default $2.5/hr budget."""
    p = _params(preset)
    return _rank_benchmark("planner_rank", preset, p["rank_budget"], p["min_seconds"])


def bench_planner_rank_4x(preset: str) -> BenchResult:
    """Macro: ranking the Fig. 15a-scale (4x budget) space — tens of thousands of configs."""
    p = _params(preset)
    return _rank_benchmark("planner_rank_4x", preset, p["rank_4x_budget"], p["min_seconds"])


def bench_elastic_replan(preset: str) -> BenchResult:
    """Macro: wall time of one full re-plan pass (enumerate + rank + select).

    This is the latency the elastic controller pays inside the serving loop every time
    :meth:`~repro.core.controller.ElasticKairosController.maybe_replan` fires, so it is
    reported as re-plans per second of the same planner pipeline the controller builds.
    """
    p = _params(preset)
    profiles = default_profile_registry()
    samples = production_batch_distribution().sample(2000, np.random.default_rng(SEED))
    planner = KairosPlanner(
        MODEL, p["replan_budget"], profiles=profiles, batch_samples=samples
    )

    def work() -> float:
        planner.plan()
        return 1.0

    plans_per_sec, wall = time_throughput(work, min_seconds=p["min_seconds"])
    return BenchResult(
        name="elastic_replan",
        preset=preset,
        value=plans_per_sec,
        unit="replans/s",
        wall_seconds=wall,
        extras={"budget_per_hour": p["replan_budget"]},
    )


MM_MODELS = ("RM2", "WND")


def bench_multi_model_sim(preset: str) -> BenchResult:
    """Macro: end-to-end multi-model serving throughput (simulated queries per second).

    The new scheduling-round shape of the co-location subsystem: two models share one
    cluster, every round solves one joint matching over the union of pending queries
    with model-aware columns (one ``predict_many_ms`` per (model, type) pair).  Rates
    keep both models' queues busy so the measurement is dominated by joint rounds.
    """
    p = _params(preset)
    profiles = default_profile_registry()
    from repro.cloud.config import HeterogeneousConfig as Config
    from repro.sim.cluster import MultiModelCluster
    from repro.sim.multi_model import MultiModelServingSimulation
    from repro.workload.generator import interleave_model_streams

    configs = {
        name: Config(tuple(counts), profiles.catalog)
        for name, counts in zip(MM_MODELS, p["mm_counts"])
    }
    streams = {}
    for i, name in enumerate(MM_MODELS):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=int(p["mm_queries"]),
            model_name=name,
        )
        streams[name] = WorkloadGenerator(spec).generate(
            rate_qps=p["mm_rates"][i], rng=SEED + 10 + i
        )
    queries = interleave_model_streams(streams)

    def work() -> float:
        from repro.schedulers.kairos_policy import MultiModelKairosPolicy

        cluster = MultiModelCluster(configs, profiles)
        sim = MultiModelServingSimulation(
            cluster, MultiModelKairosPolicy(), rng=np.random.default_rng(SEED + 1)
        )
        report = sim.run(queries)
        return float(report.dispatched_queries)

    qps, wall = time_throughput(work, min_seconds=p["min_seconds"])
    return BenchResult(
        name="multi_model_sim",
        preset=preset,
        value=qps,
        unit="queries/s",
        wall_seconds=wall,
        extras={
            "num_queries": float(len(queries)),
            "num_models": float(len(MM_MODELS)),
        },
    )


def bench_pipeline_sim(preset: str) -> BenchResult:
    """Macro: end-to-end pipeline serving throughput (simulated queries per second).

    The task-graph subsystem's round shape on top of the multi-model loop: a fleet
    of chain and diamond graphs (stages alternating between the two co-located
    models) is released across a busy background trace and served by
    :class:`~repro.pipeline.CriticalPathKairosPolicy` under graph-aware admission.
    Every round therefore pays the full pipeline tax — laxity row-scaling folded
    into the joint matching, successor releases re-entering the central queue as
    same-instant arrivals, and per-admission doomed-graph sweeps — so this number
    gates the overhead graph-awareness adds to a scheduling round.
    """
    p = _params(preset)
    profiles = default_profile_registry()
    from repro.pipeline import (
        CriticalPathKairosPolicy,
        PipelineServingSimulation,
        chain_graph,
        diamond_graph,
        realize_graphs,
    )
    from repro.sim.cluster import MultiModelCluster
    from repro.workload.generator import interleave_model_streams

    configs = {
        name: HeterogeneousConfig(tuple(counts), profiles.catalog)
        for name, counts in zip(MM_MODELS, p["pipe_counts"])
    }
    streams = {}
    for i, name in enumerate(MM_MODELS):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=int(p["pipe_queries"]),
            model_name=name,
        )
        streams[name] = WorkloadGenerator(spec).generate(
            rate_qps=p["pipe_rates"][i], rng=SEED + 30 + i
        )
    background = interleave_model_streams(streams)
    span_ms = max(q.arrival_time_ms for q in background)
    a, b = MM_MODELS
    n_graphs = int(p["pipe_graphs"])
    graphs = []
    for g in range(n_graphs):
        release = span_ms * (0.2 + 0.5 * g / max(1, n_graphs - 1))
        if g % 2 == 0:
            graphs.append(
                chain_graph(
                    g, ((a, 24), (b, 16), (a, 8)), 2_000.0, release_ms=release
                )
            )
        else:
            graphs.append(
                diamond_graph(
                    g, (a, 24), (b, 12), (a, 12), (b, 8), 2_000.0, release_ms=release
                )
            )

    def work() -> float:
        # Fresh realization per pass: runtimes and stage queries are stateful.
        sources, coordinator = realize_graphs(graphs, len(background))
        cluster = MultiModelCluster(configs, profiles)
        sim = PipelineServingSimulation(
            cluster,
            CriticalPathKairosPolicy(coordinator),
            coordinator=coordinator,
            graph_aware=True,
            rng=np.random.default_rng(SEED + 1),
        )
        queries = sorted(background + sources, key=lambda q: q.arrival_time_ms)
        report = sim.run(queries)
        return float(report.dispatched_queries)

    qps, wall = time_throughput(work, min_seconds=p["min_seconds"])
    return BenchResult(
        name="pipeline_sim",
        preset=preset,
        value=qps,
        unit="queries/s",
        wall_seconds=wall,
        extras={
            "num_queries": float(len(background)),
            "num_graphs": float(n_graphs),
            "num_models": float(len(MM_MODELS)),
        },
    )


def bench_spot_sim(preset: str) -> BenchResult:
    """Macro: end-to-end preemptible serving throughput (simulated queries per second).

    The spot subsystem's event-loop shape: half the cluster is spot capacity under an
    aggressive preemption hazard (~1 reclaim per spot instance per simulated second),
    so the measurement covers warning/kill events, deadline-bounded draining, central
    re-queues, and reactive like-for-like re-provisioning on top of the ordinary
    scheduling rounds.
    """
    p = _params(preset)
    profiles = default_profile_registry()
    model = profiles.models[MODEL]
    from repro.cloud.spot import SpotMarket
    from repro.sim.preemption import (
        PreemptibleElasticSimulation,
        initial_spot_server_ids,
    )

    combined = HeterogeneousConfig(tuple(p["spot_counts"]), profiles.catalog)
    spot_portion = HeterogeneousConfig(tuple(p["spot_portion"]), profiles.catalog)
    market = SpotMarket.uniform(
        profiles.catalog, discount=0.65, preemptions_per_hour=3_600.0, warning_ms=20.0
    )
    spec = WorkloadSpec(
        batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
        num_queries=int(p["spot_queries"]),
    )
    queries = WorkloadGenerator(spec).generate(rate_qps=p["spot_rate_qps"], rng=SEED)

    def work() -> float:
        from repro.schedulers.kairos_policy import KairosPolicy

        cluster = Cluster(combined, model, profiles)
        sim = PreemptibleElasticSimulation(
            cluster,
            KairosPolicy(),
            market=market,
            spot_server_ids=initial_spot_server_ids(cluster, spot_portion),
            startup_delay_ms=100.0,
            rng=np.random.default_rng(SEED + 1),
            market_rng=np.random.default_rng(SEED + 2),
        )
        report = sim.run(queries)
        return float(report.dispatched_queries)

    qps, wall = time_throughput(work, min_seconds=p["min_seconds"])
    return BenchResult(
        name="spot_sim",
        preset=preset,
        value=qps,
        unit="queries/s",
        wall_seconds=wall,
        extras={
            "num_queries": float(p["spot_queries"]),
            "spot_instances": float(spot_portion.total_instances),
        },
    )


def bench_fleet_sim(preset: str) -> BenchResult:
    """Macro: fleet-scale serving with sharded dispatch + sharded event queues.

    Every profiled model is co-located on one fleet and served through the sharded
    path: :class:`MultiModelKairosPolicy` with ``sharded=True`` (per-model matchings
    instead of one joint union matrix) on top of ``sharded_events=True`` (per-shard
    event heaps merged under the global anchor rule).  Arrivals come in large bursts,
    so every scheduling round carries a wide multi-model cost matrix — the shape where
    the union matrix is most expensive and sharding pays.  The headline value is the
    sharded throughput; one unsharded pass of the same workload is timed into
    ``extras`` so the recorded speedup stays honest.
    """
    import time as _time

    p = _params(preset)
    profiles = default_profile_registry()
    from repro.schedulers.kairos_policy import MultiModelKairosPolicy
    from repro.sim.cluster import MultiModelCluster
    from repro.sim.multi_model import MultiModelServingSimulation
    from repro.workload.arrivals import BurstyArrivalProcess
    from repro.workload.generator import interleave_model_streams

    models = [m.name for m in profiles.models][: int(p["fleet_models"])]
    counts = tuple(int(c) for c in p["fleet_counts"])
    configs = {
        name: HeterogeneousConfig(counts, profiles.catalog) for name in models
    }
    streams = {}
    for i, name in enumerate(models):
        spec = WorkloadSpec(
            batch_sizes=TruncatedLogNormalBatchSizes(median=80, sigma=1.1),
            num_queries=int(p["fleet_queries"]),
            model_name=name,
            arrivals=BurstyArrivalProcess(burst_size=int(p["fleet_burst"])),
        )
        streams[name] = WorkloadGenerator(spec).generate(
            rate_qps=p["fleet_rate_qps"], rng=SEED + 20 + i
        )
    queries = interleave_model_streams(streams)

    def run_once(sharded: bool) -> float:
        cluster = MultiModelCluster(configs, profiles)
        sim = MultiModelServingSimulation(
            cluster,
            MultiModelKairosPolicy(sharded=sharded),
            rng=np.random.default_rng(SEED + 1),
            sharded_events=sharded,
        )
        return float(sim.run(queries).dispatched_queries)

    qps, wall = time_throughput(lambda: run_once(True), min_seconds=p["min_seconds"])
    start = _time.perf_counter()
    run_once(False)
    unsharded_wall = _time.perf_counter() - start
    sharded_wall = float(len(queries)) / qps  # per-pass wall from the measured rate
    return BenchResult(
        name="fleet_sim",
        preset=preset,
        value=qps,
        unit="queries/s",
        wall_seconds=wall,
        extras={
            "num_queries": float(len(queries)),
            "num_models": float(len(models)),
            "num_servers": float(sum(counts) * len(models)),
            "unsharded_wall_seconds": unsharded_wall,
            "sharded_speedup": unsharded_wall / sharded_wall,
        },
    )


#: Registry, in execution order.
BENCHMARKS: Dict[str, Callable[[str], BenchResult]] = {
    "serving_sim": bench_serving_sim,
    "cost_matrix": bench_cost_matrix,
    "jv_solver": bench_jv_solver,
    "multi_model_sim": bench_multi_model_sim,
    "pipeline_sim": bench_pipeline_sim,
    "spot_sim": bench_spot_sim,
    "fleet_sim": bench_fleet_sim,
    "planner_rank": bench_planner_rank,
    "planner_rank_4x": bench_planner_rank_4x,
    "elastic_replan": bench_elastic_replan,
}
