"""Exhaustive search: evaluate every configuration in the space.

Used to determine the true optimal configuration offline (the reference the paper's
Fig. 10/11 evaluation-count comparisons are measured against) and in small unit-test
spaces.
"""

from __future__ import annotations

from typing import Sequence

from repro.cloud.config import HeterogeneousConfig
from repro.search.base import (
    EvaluationBudgetExhausted,
    Evaluator,
    SearchAlgorithm,
    SearchResult,
)
from repro.utils.rng import RngLike


class ExhaustiveSearch(SearchAlgorithm):
    """Evaluate every candidate configuration (optionally up to a budget)."""

    name = "EXHAUSTIVE"

    def search(
        self,
        configs: Sequence[HeterogeneousConfig],
        evaluator: Evaluator,
        rng: RngLike = None,
    ) -> SearchResult:
        if not configs:
            raise ValueError("configs must be non-empty")
        counting = self._wrap(evaluator)
        try:
            for config in configs:
                counting(config)
        except EvaluationBudgetExhausted:
            pass
        return self._result(counting, len(configs))
