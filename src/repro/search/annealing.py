"""Simulated annealing over the configuration space (paper Fig. 2).

The state is one configuration; a neighbour move adds or removes one instance of a
random type, staying inside the budget-constrained candidate set.  Worse moves are
accepted with the Metropolis probability under a geometric cooling schedule.  The paper
uses exactly this search in Fig. 2 to show that ~70% of the configurations an online
exploration visits are *worse* than the homogeneous baseline — the cost Kairos avoids.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.search.base import (
    EvaluationBudgetExhausted,
    Evaluator,
    SearchAlgorithm,
    SearchResult,
)
from repro.search.pruning import candidate_pool, config_key, prune_sub_configs
from repro.utils.rng import RngLike, ensure_rng


class SimulatedAnnealingSearch(SearchAlgorithm):
    """Metropolis simulated annealing with add/remove-one-instance neighbourhood moves."""

    name = "ANNEAL"

    def __init__(
        self,
        max_evaluations: Optional[int] = 40,
        use_pruning: bool = False,
        *,
        initial_temperature: float = 0.4,
        cooling: float = 0.92,
        min_qps_filter: float = 0.0,
    ):
        super().__init__(max_evaluations=max_evaluations, use_pruning=use_pruning)
        if initial_temperature <= 0 or not 0 < cooling < 1:
            raise ValueError("initial_temperature must be > 0 and cooling in (0, 1)")
        self.initial_temperature = float(initial_temperature)
        self.cooling = float(cooling)
        self.min_qps_filter = float(min_qps_filter)

    def search(
        self,
        configs: Sequence[HeterogeneousConfig],
        evaluator: Evaluator,
        rng: RngLike = None,
    ) -> SearchResult:
        if not configs:
            raise ValueError("configs must be non-empty")
        gen = ensure_rng(rng)
        counting = self._wrap(evaluator)
        pool = candidate_pool(configs)
        all_keys = set(pool.keys())

        # deterministic starting point: a mid-sized configuration
        start_key = sorted(all_keys)[len(all_keys) // 2]
        current = pool[start_key]
        try:
            current_value = counting(current)
            if self.use_pruning:
                pool.pop(start_key, None)
                prune_sub_configs(pool, current)
            temperature = self.initial_temperature
            stall = 0
            while pool and stall < 8:
                neighbour = self._neighbour(current, pool, all_keys, gen)
                if neighbour is None:
                    stall += 1
                    temperature *= self.cooling
                    continue
                value = counting(neighbour)
                if self.use_pruning:
                    pool.pop(config_key(neighbour), None)
                    prune_sub_configs(pool, neighbour)
                accepted = self._accept(current_value, value, temperature, gen)
                if accepted:
                    current, current_value = neighbour, value
                    stall = 0
                else:
                    stall += 1
                temperature *= self.cooling
        except EvaluationBudgetExhausted:
            pass
        return self._result(counting, len(configs))

    # -- internals ----------------------------------------------------------------------
    def _neighbour(
        self,
        current: HeterogeneousConfig,
        pool: Dict[Tuple[int, ...], HeterogeneousConfig],
        all_keys: set,
        gen: np.random.Generator,
    ) -> Optional[HeterogeneousConfig]:
        """A random +/-1 move from ``current`` that is still a candidate."""
        names = current.catalog.names
        moves = []
        for name in names:
            for delta in (+1, -1):
                if current.count_of(name) + delta < 0:
                    continue
                candidate = current.add(name, delta)
                key = config_key(candidate)
                if key in pool:
                    moves.append(candidate)
        if not moves:
            # fall back to a random jump inside the remaining pool
            if not pool:
                return None
            keys = sorted(pool.keys())
            return pool[keys[int(gen.integers(0, len(keys)))]]
        return moves[int(gen.integers(0, len(moves)))]

    def _accept(
        self,
        current_value: float,
        new_value: float,
        temperature: float,
        gen: np.random.Generator,
    ) -> bool:
        if new_value >= current_value:
            return True
        scale = max(abs(current_value), 1e-9)
        delta = (new_value - current_value) / scale
        probability = math.exp(delta / max(temperature, 1e-9))
        return bool(gen.random() < probability)
