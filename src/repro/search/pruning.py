"""Sub-configuration pruning.

If configuration ``x1`` can be turned into ``x2`` by adding instances, ``x1`` is a
*sub-configuration* of ``x2`` and can never achieve a higher throughput.  Kairos+ prunes
sub-configurations of every evaluated configuration (Algorithm 1), and the paper grants
the same mechanism to the competing search algorithms in Fig. 11 so the comparison
isolates the value of the upper-bound guidance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.cloud.config import HeterogeneousConfig

ConfigKey = Tuple[int, ...]


def config_key(config: HeterogeneousConfig) -> ConfigKey:
    """Hashable identity of a configuration (its count vector)."""
    return tuple(config.counts)


def prune_sub_configs(
    candidates: Dict[ConfigKey, HeterogeneousConfig],
    evaluated: HeterogeneousConfig,
) -> int:
    """Remove every sub-configuration of ``evaluated`` from ``candidates`` (in place).

    Returns the number of candidates removed.
    """
    to_remove = [
        key for key, config in candidates.items() if config.is_sub_config_of(evaluated)
    ]
    for key in to_remove:
        del candidates[key]
    return len(to_remove)


def candidate_pool(configs: Sequence[HeterogeneousConfig]) -> Dict[ConfigKey, HeterogeneousConfig]:
    """Build the mutable candidate pool used by the search algorithms."""
    pool: Dict[ConfigKey, HeterogeneousConfig] = {}
    for config in configs:
        pool[config_key(config)] = config
    return pool
