"""Ribbon's configuration search: Bayesian optimization over the candidate set.

Ribbon (SC'21) allocates its heterogeneous pool with Bayesian optimization: fit a
surrogate over the configurations evaluated so far, pick the next configuration by
expected improvement, and repeat.  This is the exploration overhead the paper contrasts
Kairos against (Figs. 10-12): every acquisition step still costs one full online
evaluation of a configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.search.base import (
    EvaluationBudgetExhausted,
    Evaluator,
    SearchAlgorithm,
    SearchResult,
)
from repro.search.gp import GaussianProcessRegressor, RBFKernel, expected_improvement
from repro.search.pruning import candidate_pool, config_key, prune_sub_configs
from repro.utils.rng import RngLike, ensure_rng


class BayesianOptimizationSearch(SearchAlgorithm):
    """GP + expected-improvement search over a finite configuration set.

    Parameters
    ----------
    num_initial:
        Random configurations evaluated before the surrogate is first fitted.
    ei_tolerance:
        Stop once the best expected improvement over the remaining candidates falls
        below this fraction of the best observed throughput.
    """

    name = "RIBBON-BO"

    def __init__(
        self,
        max_evaluations: Optional[int] = 40,
        use_pruning: bool = False,
        *,
        num_initial: int = 5,
        ei_tolerance: float = 0.01,
        length_scale: float = 2.0,
    ):
        super().__init__(max_evaluations=max_evaluations, use_pruning=use_pruning)
        if num_initial < 1:
            raise ValueError("num_initial must be >= 1")
        self.num_initial = num_initial
        self.ei_tolerance = float(ei_tolerance)
        self.length_scale = float(length_scale)

    def search(
        self,
        configs: Sequence[HeterogeneousConfig],
        evaluator: Evaluator,
        rng: RngLike = None,
    ) -> SearchResult:
        if not configs:
            raise ValueError("configs must be non-empty")
        gen = ensure_rng(rng)
        counting = self._wrap(evaluator)
        pool = candidate_pool(configs)

        observed_x: List[np.ndarray] = []
        observed_y: List[float] = []

        def evaluate(config: HeterogeneousConfig) -> float:
            value = counting(config)
            pool.pop(config_key(config), None)
            if self.use_pruning:
                prune_sub_configs(pool, config)
            observed_x.append(config.as_vector().astype(float))
            observed_y.append(value)
            return value

        try:
            # -- initial design ---------------------------------------------------------
            keys = sorted(pool.keys())
            n_init = min(self.num_initial, len(keys))
            init_indices = gen.choice(len(keys), size=n_init, replace=False)
            for idx in init_indices:
                key = keys[int(idx)]
                if key in pool:
                    evaluate(pool[key])

            # -- acquisition loop --------------------------------------------------------
            while pool:
                best_so_far = max(observed_y) if observed_y else 0.0
                gp = GaussianProcessRegressor(
                    RBFKernel(length_scale=self.length_scale, signal_variance=1.0),
                    noise_variance=1e-3,
                )
                gp.fit(np.asarray(observed_x), np.asarray(observed_y))
                candidates = list(pool.values())
                x_cand = np.asarray([c.as_vector() for c in candidates], dtype=float)
                mean, var = gp.predict(x_cand)
                ei = expected_improvement(mean, var, best_so_far)
                best_ei_idx = int(np.argmax(ei))
                if ei[best_ei_idx] < self.ei_tolerance * max(best_so_far, 1e-9):
                    break
                evaluate(candidates[best_ei_idx])
        except EvaluationBudgetExhausted:
            pass
        return self._result(counting, len(configs))
