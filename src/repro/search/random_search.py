"""Random search (RAND in Fig. 11): evaluate uniformly sampled configurations."""

from __future__ import annotations

from typing import Sequence

from repro.cloud.config import HeterogeneousConfig
from repro.search.base import (
    EvaluationBudgetExhausted,
    Evaluator,
    SearchAlgorithm,
    SearchResult,
)
from repro.search.pruning import candidate_pool, config_key, prune_sub_configs
from repro.utils.rng import RngLike, ensure_rng


class RandomSearch(SearchAlgorithm):
    """Uniform random exploration without replacement.

    With ``use_pruning=True`` (as granted in Fig. 11) every evaluation also removes the
    evaluated configuration's sub-configurations from the remaining pool.
    """

    name = "RAND"

    def search(
        self,
        configs: Sequence[HeterogeneousConfig],
        evaluator: Evaluator,
        rng: RngLike = None,
    ) -> SearchResult:
        if not configs:
            raise ValueError("configs must be non-empty")
        gen = ensure_rng(rng)
        counting = self._wrap(evaluator)
        pool = candidate_pool(configs)
        try:
            while pool:
                keys = sorted(pool.keys())
                key = keys[int(gen.integers(0, len(keys)))]
                config = pool.pop(key)
                counting(config)
                if self.use_pruning:
                    prune_sub_configs(pool, config)
        except EvaluationBudgetExhausted:
            pass
        return self._result(counting, len(configs))
