"""Online configuration-search algorithms (the exploration Kairos avoids).

The competing schemes must *evaluate* configurations online to find a good one.  This
package implements the search algorithms the paper compares against (Figs. 2, 10, 11):
random search, simulated annealing, a genetic algorithm, and Ribbon's Bayesian
optimization (built on a from-scratch Gaussian-process regressor), plus exhaustive
search and the sub-configuration pruning rule that the paper grants to every algorithm
for fairness.
"""

from repro.search.base import CountingEvaluator, SearchAlgorithm, SearchResult
from repro.search.annealing import SimulatedAnnealingSearch
from repro.search.bayesian import BayesianOptimizationSearch
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.genetic import GeneticSearch
from repro.search.gp import GaussianProcessRegressor, RBFKernel
from repro.search.pruning import prune_sub_configs
from repro.search.random_search import RandomSearch

__all__ = [
    "SearchAlgorithm",
    "SearchResult",
    "CountingEvaluator",
    "ExhaustiveSearch",
    "RandomSearch",
    "SimulatedAnnealingSearch",
    "GeneticSearch",
    "BayesianOptimizationSearch",
    "GaussianProcessRegressor",
    "RBFKernel",
    "prune_sub_configs",
]
