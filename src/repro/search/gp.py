"""Gaussian-process regression substrate for Ribbon's Bayesian optimization.

A deliberately small, dependency-free GP: RBF kernel with a constant signal variance,
observation noise, Cholesky-based posterior, and standardized targets.  It is not a
general-purpose GP library — it supports exactly what the Bayesian-optimization search
needs (posterior mean and variance over a finite candidate set of low-dimensional
integer vectors) while remaining numerically robust for repeated refits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RBFKernel:
    """Squared-exponential kernel ``sigma_f^2 * exp(-||x - y||^2 / (2 l^2))``."""

    length_scale: float = 1.0
    signal_variance: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.length_scale, "length_scale")
        check_positive(self.signal_variance, "signal_variance")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        sq = (
            np.sum(a * a, axis=1)[:, None]
            + np.sum(b * b, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        sq = np.maximum(sq, 0.0)
        return self.signal_variance * np.exp(-0.5 * sq / (self.length_scale**2))


class GaussianProcessRegressor:
    """GP regression with an RBF kernel and Gaussian observation noise."""

    def __init__(
        self,
        kernel: Optional[RBFKernel] = None,
        noise_variance: float = 1e-4,
        *,
        normalize_targets: bool = True,
    ):
        check_positive(noise_variance, "noise_variance")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.noise_variance = float(noise_variance)
        self.normalize_targets = normalize_targets
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._cho = None
        self._alpha: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit the posterior to observations ``(x, y)``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        if x.shape[0] == 0:
            raise ValueError("need at least one observation")
        if self.normalize_targets:
            self._y_mean = float(np.mean(y))
            self._y_std = float(np.std(y))
            if self._y_std < 1e-12:
                self._y_std = 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        targets = (y - self._y_mean) / self._y_std

        k = self.kernel(x, x)
        k[np.diag_indices_from(k)] += self.noise_variance
        self._cho = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._cho, targets)
        self._x = x
        return self

    def predict(self, x_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at ``x_new`` (both 1-D arrays)."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        k_star = self.kernel(x_new, self._x)
        mean = k_star @ self._alpha
        v = cho_solve(self._cho, k_star.T)
        prior_var = np.diag(self.kernel(x_new, x_new))
        var = prior_var - np.sum(k_star.T * v, axis=0)
        var = np.maximum(var, 1e-12)
        return mean * self._y_std + self._y_mean, var * self._y_std**2


def expected_improvement(
    mean: np.ndarray, variance: np.ndarray, best_observed: float, xi: float = 0.01
) -> np.ndarray:
    """Expected improvement acquisition for maximization."""
    from scipy.stats import norm

    std = np.sqrt(np.maximum(variance, 1e-18))
    improvement = mean - best_observed - xi
    z = improvement / std
    ei = improvement * norm.cdf(z) + std * norm.pdf(z)
    ei[std < 1e-12] = np.maximum(improvement[std < 1e-12], 0.0)
    return np.maximum(ei, 0.0)
