"""Genetic algorithm over configurations (GENE in Fig. 11).

Standard generational GA on the per-type count vectors: tournament selection, uniform
crossover, +/-1 mutation, with every offspring repaired onto the budget-constrained
candidate set (invalid children are clipped to the nearest candidate by Euclidean
distance).  Each distinct configuration is evaluated once (evaluations are cached by
:class:`~repro.search.base.CountingEvaluator`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.search.base import (
    EvaluationBudgetExhausted,
    Evaluator,
    SearchAlgorithm,
    SearchResult,
)
from repro.search.pruning import candidate_pool, config_key, prune_sub_configs
from repro.utils.rng import RngLike, ensure_rng


class GeneticSearch(SearchAlgorithm):
    """Generational GA with tournament selection and candidate-set repair."""

    name = "GENE"

    def __init__(
        self,
        max_evaluations: Optional[int] = 60,
        use_pruning: bool = False,
        *,
        population_size: int = 10,
        generations: int = 10,
        mutation_rate: float = 0.3,
        tournament_size: int = 3,
        elite: int = 2,
    ):
        super().__init__(max_evaluations=max_evaluations, use_pruning=use_pruning)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0 <= mutation_rate <= 1:
            raise ValueError("mutation_rate must be in [0, 1]")
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament_size = max(2, tournament_size)
        self.elite = max(0, elite)

    def search(
        self,
        configs: Sequence[HeterogeneousConfig],
        evaluator: Evaluator,
        rng: RngLike = None,
    ) -> SearchResult:
        if not configs:
            raise ValueError("configs must be non-empty")
        gen = ensure_rng(rng)
        counting = self._wrap(evaluator)
        pool = candidate_pool(configs)
        all_configs = list(configs)
        vectors = np.asarray([c.as_vector() for c in all_configs], dtype=float)

        def repair(vector: np.ndarray) -> HeterogeneousConfig:
            """Snap an arbitrary count vector onto the nearest remaining candidate."""
            live = pool if pool else {config_key(c): c for c in all_configs}
            live_configs = list(live.values())
            live_vectors = np.asarray([c.as_vector() for c in live_configs], dtype=float)
            distances = np.sum((live_vectors - vector[None, :]) ** 2, axis=1)
            return live_configs[int(np.argmin(distances))]

        def evaluate(config: HeterogeneousConfig) -> float:
            value = counting(config)
            if self.use_pruning:
                pool.pop(config_key(config), None)
                prune_sub_configs(pool, config)
            return value

        try:
            # initial population: uniform without replacement
            indices = gen.choice(
                len(all_configs), size=min(self.population_size, len(all_configs)), replace=False
            )
            population: List[Tuple[HeterogeneousConfig, float]] = []
            for idx in indices:
                config = all_configs[int(idx)]
                population.append((config, evaluate(config)))

            for _ in range(self.generations):
                if not pool and self.use_pruning:
                    break
                population.sort(key=lambda item: item[1], reverse=True)
                next_population = population[: self.elite]
                while len(next_population) < self.population_size:
                    parent_a = self._tournament(population, gen)
                    parent_b = self._tournament(population, gen)
                    child_vec = self._crossover(parent_a, parent_b, gen)
                    child_vec = self._mutate(child_vec, gen)
                    child = repair(child_vec)
                    next_population.append((child, evaluate(child)))
                population = next_population
        except EvaluationBudgetExhausted:
            pass
        return self._result(counting, len(configs))

    # -- GA operators ------------------------------------------------------------------
    def _tournament(
        self, population: List[Tuple[HeterogeneousConfig, float]], gen: np.random.Generator
    ) -> np.ndarray:
        size = min(self.tournament_size, len(population))
        contenders = [population[int(i)] for i in gen.integers(0, len(population), size=size)]
        winner = max(contenders, key=lambda item: item[1])
        return winner[0].as_vector().astype(float)

    def _crossover(
        self, a: np.ndarray, b: np.ndarray, gen: np.random.Generator
    ) -> np.ndarray:
        mask = gen.random(a.shape[0]) < 0.5
        return np.where(mask, a, b)

    def _mutate(self, vector: np.ndarray, gen: np.random.Generator) -> np.ndarray:
        result = vector.copy()
        for i in range(result.shape[0]):
            if gen.random() < self.mutation_rate:
                result[i] = max(0.0, result[i] + (1.0 if gen.random() < 0.5 else -1.0))
        return result
