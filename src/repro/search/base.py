"""Shared infrastructure for configuration-search algorithms.

Each algorithm explores a finite candidate set (the budget-constrained configuration
space) by calling an *evaluator* — one call corresponds to one online evaluation of a
configuration on the real system (the expensive operation the paper counts in Figs. 10
and 11).  :class:`CountingEvaluator` provides caching (re-evaluating a configuration is
free, as a real system would remember the measurement) and budget enforcement, and
:class:`SearchResult` captures the evaluation trace so experiments can report both the
best configuration found and how many evaluations it took to find it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.config import HeterogeneousConfig
from repro.utils.rng import RngLike, ensure_rng

#: Evaluation function: configuration -> measured allowable throughput (QPS).
Evaluator = Callable[[HeterogeneousConfig], float]


class EvaluationBudgetExhausted(RuntimeError):
    """Raised by :class:`CountingEvaluator` when the evaluation budget is used up."""


class CountingEvaluator:
    """Caches and counts configuration evaluations.

    Parameters
    ----------
    evaluator:
        The underlying (expensive) evaluation function.
    max_evaluations:
        Optional hard budget; exceeding it raises :class:`EvaluationBudgetExhausted`,
        which the search algorithms catch to terminate gracefully.
    """

    def __init__(self, evaluator: Evaluator, max_evaluations: Optional[int] = None):
        self._evaluator = evaluator
        self._cache: Dict[Tuple[int, ...], float] = {}
        self._trace: List[Tuple[HeterogeneousConfig, float]] = []
        self.max_evaluations = max_evaluations

    def __call__(self, config: HeterogeneousConfig) -> float:
        key = tuple(config.counts)
        if key in self._cache:
            return self._cache[key]
        if self.max_evaluations is not None and len(self._trace) >= self.max_evaluations:
            raise EvaluationBudgetExhausted(
                f"evaluation budget of {self.max_evaluations} exhausted"
            )
        value = float(self._evaluator(config))
        self._cache[key] = value
        self._trace.append((config, value))
        return value

    @property
    def num_evaluations(self) -> int:
        return len(self._trace)

    @property
    def trace(self) -> List[Tuple[HeterogeneousConfig, float]]:
        return list(self._trace)

    def evaluated(self, config: HeterogeneousConfig) -> bool:
        return tuple(config.counts) in self._cache

    def best(self) -> Tuple[Optional[HeterogeneousConfig], float]:
        if not self._trace:
            return None, 0.0
        best_config, best_value = max(self._trace, key=lambda item: item[1])
        return best_config, best_value


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one configuration search."""

    algorithm: str
    best_config: Optional[HeterogeneousConfig]
    best_value: float
    evaluations: Tuple[Tuple[HeterogeneousConfig, float], ...]
    search_space_size: int

    @property
    def num_evaluations(self) -> int:
        return len(self.evaluations)

    @property
    def evaluated_fraction(self) -> float:
        """Evaluations as a fraction of the search space (Fig. 10's y-axis)."""
        if self.search_space_size == 0:
            return 0.0
        return self.num_evaluations / self.search_space_size

    @property
    def evaluations_until_best(self) -> int:
        """1-based index of the evaluation that first achieved the best value."""
        if not self.evaluations:
            return 0
        values = [v for _, v in self.evaluations]
        best = max(values)
        return values.index(best) + 1

    def value_trace(self) -> np.ndarray:
        """The sequence of evaluated throughputs, in evaluation order."""
        return np.asarray([v for _, v in self.evaluations], dtype=float)

    def running_best(self) -> np.ndarray:
        """Best-so-far trace (useful for convergence plots)."""
        trace = self.value_trace()
        if trace.size == 0:
            return trace
        return np.maximum.accumulate(trace)


class SearchAlgorithm:
    """Interface for configuration-search algorithms."""

    name: str = "search"

    def __init__(self, max_evaluations: Optional[int] = None, use_pruning: bool = False):
        self.max_evaluations = max_evaluations
        self.use_pruning = use_pruning

    def search(
        self,
        configs: Sequence[HeterogeneousConfig],
        evaluator: Evaluator,
        rng: RngLike = None,
    ) -> SearchResult:
        """Explore ``configs`` and return the search trace."""
        raise NotImplementedError

    # -- helpers for subclasses -----------------------------------------------------------
    def _wrap(self, evaluator: Evaluator) -> CountingEvaluator:
        if isinstance(evaluator, CountingEvaluator):
            return evaluator
        return CountingEvaluator(evaluator, self.max_evaluations)

    def _result(
        self, counting: CountingEvaluator, search_space_size: int
    ) -> SearchResult:
        best_config, best_value = counting.best()
        return SearchResult(
            algorithm=self.name,
            best_config=best_config,
            best_value=best_value,
            evaluations=tuple(counting.trace),
            search_space_size=search_space_size,
        )
