"""Query-latency prediction for the Kairos controller.

The paper's controller must predict the latency of any batch size on any instance type
to build the ``L`` matrix.  It observes (Sec. 5.1, "Remarks") that inference latency is
deterministic and almost perfectly linear in the batch size, so Kairos "starts with a
linear model ... and quickly transitions into a lookup table after processing more
queries", learning *completely online* from the queries it serves, with no prior
profiling.

Three estimators are provided:

* :class:`PerfectLatencyEstimator` — reads the true profiles (used for the baselines,
  which the paper deliberately advantages with accurate latency knowledge);
* :class:`OnlineLatencyEstimator` — the Kairos learner: per-type lookup table of
  observed (batch, latency) pairs backed by an online least-squares linear fit for
  batches not yet seen;
* :class:`NoisyLatencyEstimator` — wraps another estimator and adds Gaussian white
  noise to predictions (Fig. 16b's robustness experiment).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.cloud.models import MLModel
from repro.cloud.profiles import ProfileRegistry
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive


class LatencyEstimator:
    """Interface: predict and learn per-(instance type, batch size) query latency."""

    def predict_ms(self, instance_type: str, batch_size: int) -> float:
        """Predicted service latency in milliseconds."""
        raise NotImplementedError

    def observe(self, instance_type: str, batch_size: int, latency_ms: float) -> None:
        """Feed back one observed (batch, latency) pair; default is stateless."""

    def predict_many_ms(self, instance_type: str, batch_sizes) -> np.ndarray:
        """Vectorized prediction (default: loop over :meth:`predict_ms`)."""
        return np.asarray(
            [self.predict_ms(instance_type, int(b)) for b in np.atleast_1d(batch_sizes)],
            dtype=float,
        )


class PerfectLatencyEstimator(LatencyEstimator):
    """Oracle estimator backed by the true latency profiles."""

    def __init__(self, profiles: ProfileRegistry, model: Union[str, MLModel]):
        self._profiles = profiles
        self._model = model if isinstance(model, str) else model.name

    def predict_ms(self, instance_type: str, batch_size: int) -> float:
        return float(self._profiles.latency_ms(self._model, instance_type, batch_size))

    def predict_many_ms(self, instance_type: str, batch_sizes) -> np.ndarray:
        return np.asarray(
            self._profiles.latency_ms(self._model, instance_type, np.atleast_1d(batch_sizes)),
            dtype=float,
        )


@dataclass
class _TypeState:
    """Per-instance-type learning state of the online estimator."""

    table: Dict[int, Tuple[float, int]]  # batch -> (mean latency, observation count)
    sum_b: float = 0.0
    sum_l: float = 0.0
    sum_bb: float = 0.0
    sum_bl: float = 0.0
    count: int = 0
    # memoized (intercept, slope) of the current sums; None = recompute after observe
    fit: Optional[Tuple[float, float]] = None

    def distinct_batches(self) -> int:
        return len(self.table)


class OnlineLatencyEstimator(LatencyEstimator):
    """Kairos's online latency learner (lookup table + linear model fallback).

    Prediction rules, in order:

    1. exact batch size already observed → mean of its observations (lookup table);
    2. at least two distinct batch sizes observed → online least-squares linear fit
       ``intercept + slope * batch`` (slope clamped non-negative);
    3. exactly one distinct batch observed → proportional scaling through the origin;
    4. nothing observed yet → an optimistic prior (``cold_start_prior_ms``), which makes
       the distributor willing to try the instance and thereby gather the observation.
    """

    def __init__(self, cold_start_prior_ms: float = 1.0):
        check_positive(cold_start_prior_ms, "cold_start_prior_ms")
        self.cold_start_prior_ms = float(cold_start_prior_ms)
        self._state: Dict[str, _TypeState] = {}
        # Memoized prediction vectors keyed by (type, batch-vector bytes).  A scheduling
        # round asks for the same batch vector once per instance type, and consecutive
        # rounds often repeat the vector verbatim; entries are dropped for a type the
        # moment it learns something new (observe), so cached vectors can never go stale.
        self._prediction_cache: Dict[str, Dict[bytes, np.ndarray]] = {}
        # Same idea for the dominant single-query rounds: 1-element prediction vectors
        # keyed by (type, batch value), invalidated exactly like the vector cache.
        self._scalar_cache: Dict[str, Dict[int, np.ndarray]] = {}

    # -- learning ---------------------------------------------------------------------
    def observe(self, instance_type: str, batch_size: int, latency_ms: float) -> None:
        if not (latency_ms > 0.0 and latency_ms < float("inf")):  # inline check_positive
            check_positive(latency_ms, "latency_ms")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._prediction_cache.pop(instance_type, None)
        self._scalar_cache.pop(instance_type, None)
        state = self._state.setdefault(instance_type, _TypeState(table={}))
        mean, count = state.table.get(int(batch_size), (0.0, 0))
        count += 1
        mean += (latency_ms - mean) / count
        state.table[int(batch_size)] = (mean, count)
        state.sum_b += batch_size
        state.sum_l += latency_ms
        state.sum_bb += batch_size * batch_size
        state.sum_bl += batch_size * latency_ms
        state.count += 1
        state.fit = None

    def observations(self, instance_type: str) -> int:
        """Number of observations folded in for ``instance_type``."""
        state = self._state.get(instance_type)
        return state.count if state else 0

    # -- prediction -------------------------------------------------------------------
    def predict_ms(self, instance_type: str, batch_size: int) -> float:
        state = self._state.get(instance_type)
        if state is None or state.count == 0:
            return self.cold_start_prior_ms
        exact = state.table.get(int(batch_size))
        if exact is not None:
            return exact[0]
        if state.distinct_batches() >= 2:
            intercept, slope = self._fit_of(state)
            return max(1e-6, intercept + slope * batch_size)
        # single distinct batch: proportional scaling through the origin
        only_batch, (only_mean, _) = next(iter(state.table.items()))
        return max(1e-6, only_mean * batch_size / only_batch)

    def predict_many_ms(self, instance_type: str, batch_sizes) -> np.ndarray:
        """Vectorized prediction over a batch-size vector (hot path of the ``L`` matrix).

        Applies the same per-element rules as :meth:`predict_ms` — exact lookup first,
        then the linear fit (or proportional scaling) — as whole-vector numpy
        operations, and memoizes the result per (type, vector) until the next
        :meth:`observe` on the type.  The returned array is shared with the cache and
        marked read-only; copy it before mutating.
        """
        if (
            type(batch_sizes) is np.ndarray
            and batch_sizes.ndim == 1
            and batch_sizes.size == 1
        ):
            # Single-query rounds dominate steady-state serving: memoize the
            # 1-element vector per (type, batch) without the bytes-key machinery.
            scalar_cache = self._scalar_cache.get(instance_type)
            if scalar_cache is None:
                scalar_cache = self._scalar_cache[instance_type] = {}
            batch = int(batch_sizes[0])
            cached = scalar_cache.get(batch)
            if cached is None:
                cached = np.empty(1)
                cached[0] = self.predict_ms(instance_type, batch)
                cached.setflags(write=False)  # cache-shared, like the vector path
                scalar_cache[batch] = cached
            return cached
        batches = np.atleast_1d(np.asarray(batch_sizes, dtype=int))
        cache = self._prediction_cache.setdefault(instance_type, {})
        key = batches.tobytes()
        cached = cache.get(key)
        if cached is not None:
            return cached
        if len(cache) >= 256:
            # A type that never receives an observe() (e.g. always penalized away)
            # would otherwise accumulate one entry per distinct pending vector forever.
            cache.clear()

        state = self._state.get(instance_type)
        if batches.size <= 8:
            # Tiny vectors (near-empty pending queues) are cheaper through the scalar
            # rules than through whole-array numpy ops.
            predictions = np.asarray(
                [self.predict_ms(instance_type, b) for b in batches.tolist()],
                dtype=float,
            )
        elif state is None or state.count == 0:
            predictions = np.full(batches.shape, self.cold_start_prior_ms, dtype=float)
        else:
            if state.distinct_batches() >= 2:
                intercept, slope = self._fit_of(state)
                predictions = np.maximum(1e-6, intercept + slope * batches)
            else:
                only_batch, (only_mean, _) = next(iter(state.table.items()))
                predictions = np.maximum(1e-6, only_mean * batches / only_batch)
            # exact lookup-table entries override the model, as in predict_ms
            for batch in set(batches.tolist()):
                exact = state.table.get(batch)
                if exact is not None:
                    predictions[batches == batch] = exact[0]
        predictions.setflags(write=False)
        cache[key] = predictions
        return predictions

    def linear_coefficients(self, instance_type: str) -> Optional[Tuple[float, float]]:
        """The current (intercept, slope) fit, or ``None`` with <2 distinct batches."""
        state = self._state.get(instance_type)
        if state is None or state.distinct_batches() < 2:
            return None
        return self._fit_of(state)

    @classmethod
    def _fit_of(cls, state: _TypeState) -> Tuple[float, float]:
        """The memoized least-squares fit (recomputed only after new observations)."""
        fit = state.fit
        if fit is None:
            fit = state.fit = cls._linear_fit(state)
        return fit

    @staticmethod
    def _linear_fit(state: _TypeState) -> Tuple[float, float]:
        n = state.count
        denom = n * state.sum_bb - state.sum_b * state.sum_b
        if abs(denom) < 1e-12:
            mean_lat = state.sum_l / n
            return mean_lat, 0.0
        slope = (n * state.sum_bl - state.sum_b * state.sum_l) / denom
        slope = max(slope, 0.0)
        intercept = (state.sum_l - slope * state.sum_b) / n
        return intercept, slope


class NoisyLatencyEstimator(LatencyEstimator):
    """Adds multiplicative Gaussian white noise to another estimator's predictions.

    Used by the Fig. 16b robustness experiment (5% noise) to emulate cloud performance
    variability in the *prediction* path while the true service times stay unchanged.
    """

    def __init__(self, inner: LatencyEstimator, relative_std: float, rng: RngLike = None):
        check_non_negative(relative_std, "relative_std")
        self.inner = inner
        self.relative_std = float(relative_std)
        self._rng = ensure_rng(rng)

    def predict_ms(self, instance_type: str, batch_size: int) -> float:
        base = self.inner.predict_ms(instance_type, batch_size)
        factor = 1.0 + self.relative_std * float(self._rng.standard_normal())
        return max(1e-6, base * factor)

    def predict_many_ms(self, instance_type: str, batch_sizes) -> np.ndarray:
        """Vectorized noisy prediction: one rng vector draw over the inner predictions.

        Without this override every cost-matrix build fell back to the per-element
        Python loop of :meth:`LatencyEstimator.predict_many_ms` (one scalar normal draw
        per entry); the white-noise model is unchanged — i.i.d. Gaussian factors per
        predicted element — only drawn as a single vector.  Note that the cost-matrix
        builder calls this once per instance *type* per round, so within one round all
        same-type servers see the same noisy prediction vector (the noise perturbs the
        controller's belief about a type, not individual servers).
        """
        base = np.asarray(
            self.inner.predict_many_ms(instance_type, batch_sizes), dtype=float
        )
        factors = 1.0 + self.relative_std * self._rng.standard_normal(base.shape)
        return np.maximum(1e-6, base * factors)

    def observe(self, instance_type: str, batch_size: int, latency_ms: float) -> None:
        self.inner.observe(instance_type, batch_size, latency_ms)
