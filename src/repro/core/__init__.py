"""Kairos core: the paper's primary contribution.

Two co-designed components:

* the **query-distribution mechanism** (Sec. 5.1): heterogeneity coefficients, the
  ``L`` cost matrix with the QoS penalty, and the min-cost bipartite-matching
  distributor (:mod:`repro.core.distributor`), driven by an online latency model;
* the **throughput upper-bound estimator and configuration selection** (Sec. 5.2):
  closed-form upper bounds (Eqs. 9-15), budget-constrained configuration enumeration,
  similarity-based selection, the one-shot :class:`~repro.core.kairos.KairosPlanner`,
  and the online :class:`~repro.core.kairos_plus.KairosPlusSearch` (Algorithm 1).

:mod:`repro.core.controller` ties both together into a runnable serving system.
"""

from repro.core.config_space import enumerate_configs, search_space_size
from repro.core.cost_matrix import CostMatrix, build_cost_matrix
from repro.core.distributor import Assignment, QueryDistributor
from repro.core.heterogeneity import heterogeneity_coefficients
from repro.core.kairos import (
    KairosPlan,
    KairosPlanner,
    MixedMarketPlan,
    MixedModelAllocation,
    MultiModelMixedPlan,
    SpotAwareKairosPlanner,
    enumerate_spot_configs,
)
from repro.core.kairos_plus import KairosPlusResult, KairosPlusSearch
from repro.core.latency_model import (
    LatencyEstimator,
    NoisyLatencyEstimator,
    OnlineLatencyEstimator,
    PerfectLatencyEstimator,
)
from repro.core.selection import SelectionResult, select_configuration
from repro.core.upper_bound import (
    ThroughputUpperBoundEstimator,
    UpperBoundInputs,
    upper_bound_from_rates,
)
from repro.core.controller import (
    ArrivalRateEstimator,
    ElasticKairosController,
    KairosServingSystem,
    ReplanDecision,
    migration_deltas,
)

__all__ = [
    "LatencyEstimator",
    "PerfectLatencyEstimator",
    "OnlineLatencyEstimator",
    "NoisyLatencyEstimator",
    "heterogeneity_coefficients",
    "CostMatrix",
    "build_cost_matrix",
    "Assignment",
    "QueryDistributor",
    "ThroughputUpperBoundEstimator",
    "UpperBoundInputs",
    "upper_bound_from_rates",
    "enumerate_configs",
    "search_space_size",
    "SelectionResult",
    "select_configuration",
    "KairosPlan",
    "KairosPlanner",
    "MixedMarketPlan",
    "MixedModelAllocation",
    "MultiModelMixedPlan",
    "SpotAwareKairosPlanner",
    "enumerate_spot_configs",
    "KairosPlusResult",
    "KairosPlusSearch",
    "KairosServingSystem",
    "ArrivalRateEstimator",
    "ElasticKairosController",
    "ReplanDecision",
    "migration_deltas",
]
