"""Kairos+: the upper-bound-assisted online search (paper Algorithm 1).

Kairos+ spends a *small* number of online evaluations to find the true optimum instead
of trusting the one-shot selection.  It walks the configurations in decreasing order of
their upper bound and, after every evaluation, prunes

* every configuration whose upper bound does not exceed the best throughput observed so
  far (such configurations cannot win), and
* every sub-configuration of the evaluated configuration (removing instances can never
  increase throughput).

Tight upper bounds therefore translate directly into fewer evaluations, which is what
Figs. 10 and 11 measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.config import HeterogeneousConfig

#: Evaluation function: configuration -> measured allowable throughput (QPS).
ConfigEvaluator = Callable[[HeterogeneousConfig], float]


@dataclass(frozen=True)
class KairosPlusResult:
    """Outcome of one Kairos+ search."""

    best_config: Optional[HeterogeneousConfig]
    best_throughput: float
    evaluations: Tuple[Tuple[HeterogeneousConfig, float], ...]
    search_space_size: int
    pruned_by_bound: int
    pruned_by_subconfig: int

    @property
    def num_evaluations(self) -> int:
        return len(self.evaluations)

    @property
    def evaluated_fraction(self) -> float:
        """Fraction of the search space that was actually evaluated online (Fig. 10)."""
        if self.search_space_size == 0:
            return 0.0
        return self.num_evaluations / self.search_space_size


class KairosPlusSearch:
    """Algorithm 1 of the paper.

    Parameters
    ----------
    ranked:
        ``(config, upper_bound)`` pairs sorted by decreasing upper bound — typically
        ``KairosPlanner.plan().ranked``.
    evaluator:
        Performs one online evaluation (one allowable-throughput measurement) and
        returns the measured QPS.
    max_evaluations:
        Optional safety cap; the paper's algorithm runs until every configuration has
        been evaluated or pruned.
    """

    def __init__(
        self,
        ranked: Sequence[Tuple[HeterogeneousConfig, float]],
        evaluator: ConfigEvaluator,
        *,
        max_evaluations: Optional[int] = None,
    ):
        if not ranked:
            raise ValueError("ranked configuration list must be non-empty")
        bounds = [b for _, b in ranked]
        if any(b2 > b1 + 1e-9 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("ranked configurations must be sorted by decreasing upper bound")
        self.ranked = list(ranked)
        self.evaluator = evaluator
        self.max_evaluations = max_evaluations

    def run(self) -> KairosPlusResult:
        """Execute the pruning-based search to completion."""
        candidates: Dict[Tuple[int, ...], HeterogeneousConfig] = {
            tuple(config.counts): config for config, _ in self.ranked
        }
        bound_of: Dict[Tuple[int, ...], float] = {
            tuple(config.counts): bound for config, bound in self.ranked
        }
        best_config: Optional[HeterogeneousConfig] = None
        best_throughput = 0.0
        evaluations: List[Tuple[HeterogeneousConfig, float]] = []
        pruned_by_bound = 0
        pruned_by_subconfig = 0

        for config, bound in self.ranked:
            key = tuple(config.counts)
            if key not in candidates:
                continue  # already pruned
            if self.max_evaluations is not None and len(evaluations) >= self.max_evaluations:
                break

            throughput = float(self.evaluator(config))
            evaluations.append((config, throughput))
            candidates.pop(key, None)

            if throughput > best_throughput:
                best_throughput = throughput
                best_config = config
                # Filter every candidate whose upper bound cannot beat the new best.
                to_drop = [
                    k for k in candidates if bound_of[k] <= best_throughput + 1e-12
                ]
                for k in to_drop:
                    candidates.pop(k, None)
                pruned_by_bound += len(to_drop)

            # Prune all sub-configurations of the evaluated configuration.
            sub_keys = [
                k for k, cand in candidates.items() if cand.is_sub_config_of(config)
            ]
            for k in sub_keys:
                candidates.pop(k, None)
            pruned_by_subconfig += len(sub_keys)

            if not candidates:
                break

        return KairosPlusResult(
            best_config=best_config,
            best_throughput=best_throughput,
            evaluations=tuple(evaluations),
            search_space_size=len(self.ranked),
            pruned_by_bound=pruned_by_bound,
            pruned_by_subconfig=pruned_by_subconfig,
        )
