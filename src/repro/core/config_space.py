"""Budget-constrained configuration-space enumeration.

The search space Kairos ranks (and the baselines explore online) is every combination of
per-type instance counts whose hourly price fits the budget.  With the default catalog
and the paper's $2.5/hr budget this is on the order of a thousand configurations; at the
4x budget of Fig. 15a it grows into the tens of thousands, which is exactly why the
paper's closed-form ranking (2 seconds for ~1000 configurations) matters.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence

from repro.cloud.config import HeterogeneousConfig
from repro.cloud.instances import DEFAULT_INSTANCE_CATALOG, InstanceCatalog
from repro.utils.validation import check_positive


def enumerate_configs(
    budget_per_hour: float,
    catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG,
    *,
    min_base_count: int = 0,
    min_total_instances: int = 1,
    max_per_type: Optional[int] = None,
) -> List[HeterogeneousConfig]:
    """All configurations whose cost fits ``budget_per_hour``.

    Parameters
    ----------
    min_base_count:
        Require at least this many base-type instances (the paper's serving system needs
        at least one instance able to serve the largest queries, but the search space it
        ranks includes base-free points too — they simply score an upper bound of 0).
    min_total_instances:
        Exclude configurations smaller than this (default excludes the empty config).
    max_per_type:
        Optional cap on the per-type count, mainly to keep unit-test spaces tiny.
    """
    check_positive(budget_per_hour, "budget_per_hour")
    if min_base_count < 0:
        raise ValueError("min_base_count must be non-negative")
    if min_total_instances < 0:
        raise ValueError("min_total_instances must be non-negative")

    prices = catalog.price_vector()
    names = catalog.names
    base_index = catalog.index_of(catalog.base_type.name)
    n_types = len(names)
    configs: List[HeterogeneousConfig] = []

    def max_count(price: float, remaining: float) -> int:
        cap = int(math.floor(remaining / price + 1e-9))
        if max_per_type is not None:
            cap = min(cap, max_per_type)
        return max(cap, 0)

    counts = [0] * n_types

    def recurse(type_idx: int, remaining_budget: float) -> None:
        if type_idx == n_types:
            total = sum(counts)
            if total < min_total_instances:
                return
            if counts[base_index] < min_base_count:
                return
            configs.append(HeterogeneousConfig(tuple(counts), catalog))
            return
        price = prices[type_idx]
        for c in range(max_count(price, remaining_budget) + 1):
            counts[type_idx] = c
            recurse(type_idx + 1, remaining_budget - c * price)
        counts[type_idx] = 0

    recurse(0, budget_per_hour)
    return configs


def search_space_size(
    budget_per_hour: float,
    catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG,
    *,
    min_base_count: int = 0,
    min_total_instances: int = 1,
    max_per_type: Optional[int] = None,
) -> int:
    """Number of configurations :func:`enumerate_configs` would return."""
    return len(
        enumerate_configs(
            budget_per_hour,
            catalog,
            min_base_count=min_base_count,
            min_total_instances=min_total_instances,
            max_per_type=max_per_type,
        )
    )


def homogeneous_configs(
    budget_per_hour: float, catalog: InstanceCatalog = DEFAULT_INSTANCE_CATALOG
) -> List[HeterogeneousConfig]:
    """The largest affordable single-type configuration for every catalog type."""
    check_positive(budget_per_hour, "budget_per_hour")
    result = []
    for itype in catalog.types:
        count = int(math.floor(budget_per_hour / itype.price_per_hour + 1e-9))
        if count >= 1:
            result.append(HeterogeneousConfig.homogeneous(itype.name, count, catalog))
    return result
