"""The ``L`` matrix of the query-distribution optimization (paper Table 2, Eqs. 2-8).

``L[i, j]`` is the time instance ``j`` is occupied if it serves query ``i`` from the
current scheduling instant ``t0``: the predicted service latency of the query's batch
size on the instance's type, plus the instance's remaining busy time (a query currently
being served must finish first), plus the dispatch overhead.

Two transformations turn the QoS-constrained matching into a plain assignment problem:

* the QoS constraint ``(L_ij + W_i) <= T_qos`` (Eq. 3, with the paper's noise headroom
  ``xi = 0.98``) is folded into the matrix by replacing violating entries with a large
  penalty ``10 * T_qos`` (Eq. 8);
* every entry is weighted by the instance's heterogeneity coefficient ``C_j``
  (Definition 1), producing the objective ``sum C_j * L_ij * P_ij`` of Eq. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.latency_model import LatencyEstimator
from repro.sim.server import ServerInstance
from repro.utils.validation import check_positive
from repro.workload.query import Query

#: Paper Sec. 5.1 "Remarks": completion times predicted within 2% of the QoS target are
#: already treated as violations, as a safeguard against prediction noise.
DEFAULT_QOS_HEADROOM = 0.98

#: Paper Eq. 8: QoS-violating pairs are penalized with 10x the QoS target.
DEFAULT_PENALTY_FACTOR = 10.0


@dataclass(frozen=True)
class CostMatrix:
    """The assembled matrices for one scheduling round.

    Attributes
    ----------
    usage_ms:
        Raw ``L`` matrix (occupation time of each instance by each query), before the
        QoS penalty.
    penalized_ms:
        ``L`` after applying Eq. 8 (QoS-violating entries replaced by the penalty).
    weighted:
        ``C_j * penalized_ms`` — the matrix handed to the assignment solver.
    qos_feasible:
        Boolean mask: True where serving the query on the instance is predicted to meet
        QoS including the query's waiting time so far.
    """

    usage_ms: np.ndarray
    penalized_ms: np.ndarray
    weighted: np.ndarray
    qos_feasible: np.ndarray
    query_ids: Tuple[int, ...]
    server_ids: Tuple[int, ...]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.weighted.shape

    def feasible_fraction(self) -> float:
        """Fraction of (query, instance) pairs predicted to meet QoS."""
        if self.qos_feasible.size == 0:
            return 0.0
        return float(np.mean(self.qos_feasible))


def build_cost_matrix(
    queries: Sequence[Query],
    servers: Sequence[ServerInstance],
    estimator: LatencyEstimator,
    now_ms: float,
    qos_ms: float,
    coefficients: Mapping[str, float],
    *,
    qos_headroom: float = DEFAULT_QOS_HEADROOM,
    penalty_factor: float = DEFAULT_PENALTY_FACTOR,
) -> CostMatrix:
    """Assemble the cost matrix for one scheduling round.

    Parameters
    ----------
    queries / servers:
        The pending queries (rows) and the candidate instances (columns).
    estimator:
        Latency predictor used for the service-latency component of ``L``.
    now_ms:
        The scheduling instant ``t0``.
    qos_ms:
        The model's QoS target ``T_qos``.
    coefficients:
        Heterogeneity coefficients ``C_j`` keyed by instance-type name.
    qos_headroom:
        The paper's ``xi`` safeguard; a pair is flagged infeasible when the predicted
        completion time exceeds ``xi * T_qos``.
    penalty_factor:
        Eq. 8 penalty multiplier applied to infeasible entries.
    """
    check_positive(qos_ms, "qos_ms")
    check_positive(qos_headroom, "qos_headroom")
    check_positive(penalty_factor, "penalty_factor")
    if not queries or not servers:
        # Zero queries or zero servers means zero matrix elements; the (shared) arrays
        # carry only shape information, so one allocation serves all three float views.
        empty = np.zeros((len(queries), len(servers)))
        return CostMatrix(
            usage_ms=empty,
            penalized_ms=empty,
            weighted=empty,
            qos_feasible=np.zeros(empty.shape, dtype=bool),
            query_ids=tuple(q.query_id for q in queries),
            server_ids=tuple(s.server_id for s in servers),
        )

    m = len(queries)
    n = len(servers)
    batches = np.asarray([q.batch_size for q in queries], dtype=int)
    waits = np.asarray([q.waiting_time_ms(now_ms) for q in queries], dtype=float)

    # One estimator call per instance *type*, not per server: deterministic estimators
    # predict the same column for every same-type server, so it is computed once and
    # broadcast, with only the per-server terms (remaining busy time + dispatch
    # overhead) varying.  For a stochastic estimator (NoisyLatencyEstimator) this means
    # one noise draw per type per round, shared by its same-type columns — the paper's
    # prediction-noise model perturbs the controller's per-type latency belief, not
    # individual servers, so the robustness experiment is unaffected.
    columns_by_type: Dict[str, list] = {}
    offsets_list = []
    for j, server in enumerate(servers):
        columns_by_type.setdefault(server.type_name, []).append(j)
        busy_until = server.busy_until_ms
        remaining = busy_until - now_ms if busy_until > now_ms else 0.0
        offsets_list.append(remaining + server.dispatch_overhead_ms)

    offsets = np.asarray(offsets_list, dtype=float)
    usage = np.empty((m, n), dtype=float)
    weights = np.empty(n, dtype=float)
    for type_name, cols in columns_by_type.items():
        if type_name not in coefficients:
            raise KeyError(f"no heterogeneity coefficient for instance type {type_name!r}")
        coefficient = coefficients[type_name]
        if coefficient <= 0:
            raise ValueError("heterogeneity coefficients must be positive")
        predicted = np.asarray(
            estimator.predict_many_ms(type_name, batches), dtype=float
        )
        if cols[-1] - cols[0] + 1 == len(cols):
            # Same-type servers are contiguous in catalog order (the common layout):
            # basic slicing beats fancy indexing on the hot path.
            cols = slice(cols[0], cols[-1] + 1)
        usage[:, cols] = offsets[cols][None, :] + predicted[:, None]
        weights[cols] = coefficient

    # Eq. 3 with the xi headroom: completion time (usage) plus prior waiting time must
    # stay within xi * T_qos, otherwise the pair is penalized per Eq. 8.
    feasible = (usage + waits[:, None]) <= qos_headroom * qos_ms + 1e-9
    penalized = np.where(feasible, usage, penalty_factor * qos_ms)
    weighted = penalized * weights[None, :]

    return CostMatrix(
        usage_ms=usage,
        penalized_ms=penalized,
        weighted=weighted,
        qos_feasible=feasible,
        query_ids=tuple(q.query_id for q in queries),
        server_ids=tuple(s.server_id for s in servers),
    )


# ---------------------------------------------------------------------------------------
# Multi-model clusters: one joint matrix over the union of pending queries
# ---------------------------------------------------------------------------------------

@dataclass(frozen=True)
class MultiModelCostMatrix(CostMatrix):
    """The joint ``L`` matrix of a co-located multi-model scheduling round.

    Rows are the union of pending queries across models, columns the union of eligible
    instances; ``cross_model[i, j]`` is True where query ``i`` targets a different
    model than instance ``j`` hosts.  Cross-model pairs can never serve (an instance
    hosts one model copy), so they carry the row model's Eq. 8 penalty, are flagged
    QoS-infeasible, and the policy never commits them; they exist only so one
    assignment solve covers the whole round.  With a single registered model every
    matrix is element-wise identical to :func:`build_cost_matrix`'s output.
    """

    cross_model: np.ndarray = None  # type: ignore[assignment]
    query_models: Tuple[str, ...] = ()
    server_models: Tuple[str, ...] = ()


def build_multi_model_cost_matrix(
    queries: Sequence[Query],
    servers: Sequence[ServerInstance],
    server_models: Sequence[str],
    estimators: Mapping[str, LatencyEstimator],
    now_ms: float,
    qos_ms_by_model: Mapping[str, float],
    coefficients_by_model: Mapping[str, Mapping[str, float]],
    *,
    qos_headroom: float = DEFAULT_QOS_HEADROOM,
    penalty_factor: float = DEFAULT_PENALTY_FACTOR,
) -> MultiModelCostMatrix:
    """Assemble the joint cost matrix of one multi-model scheduling round.

    Parameters mirror :func:`build_cost_matrix` with per-model plumbing:
    ``server_models[j]`` names the model instance ``j`` hosts, ``estimators`` /
    ``qos_ms_by_model`` / ``coefficients_by_model`` are keyed by model name.  Queries
    may leave ``model_name`` unset only when exactly one model is registered (the
    single-model compatibility path).

    The PR-2 fast path generalizes per model: one ``predict_many_ms`` call per
    (model, instance type) pair per round, over that model's pending batch vector,
    broadcast into the (model-rows x type-columns) block.
    """
    check_positive(qos_headroom, "qos_headroom")
    check_positive(penalty_factor, "penalty_factor")
    for model_name, qos in qos_ms_by_model.items():
        if qos <= 0:
            raise ValueError(f"qos_ms for model {model_name!r} must be positive")
    sole_model = next(iter(qos_ms_by_model)) if len(qos_ms_by_model) == 1 else None

    def row_model(query: Query) -> str:
        if query.model_name is not None:
            name = query.model_name
        elif sole_model is not None:
            name = sole_model
        else:
            raise ValueError(
                f"query {query.query_id} carries no model tag but "
                f"{len(qos_ms_by_model)} models are registered"
            )
        if name not in qos_ms_by_model:
            raise KeyError(f"query {query.query_id} targets unregistered model {name!r}")
        return name

    query_models = tuple(row_model(q) for q in queries)
    server_models = tuple(server_models)
    if len(server_models) != len(servers):
        raise ValueError("server_models must parallel the server list")

    if not queries or not servers:
        empty = np.zeros((len(queries), len(servers)))
        return MultiModelCostMatrix(
            usage_ms=empty,
            penalized_ms=empty,
            weighted=empty,
            qos_feasible=np.zeros(empty.shape, dtype=bool),
            query_ids=tuple(q.query_id for q in queries),
            server_ids=tuple(s.server_id for s in servers),
            cross_model=np.zeros(empty.shape, dtype=bool),
            query_models=query_models,
            server_models=server_models,
        )

    m = len(queries)
    n = len(servers)
    batches = np.asarray([q.batch_size for q in queries], dtype=int)
    waits = np.asarray([q.waiting_time_ms(now_ms) for q in queries], dtype=float)
    qos_rows = np.asarray([qos_ms_by_model[name] for name in query_models], dtype=float)

    rows_by_model: Dict[str, list] = {}
    for i, name in enumerate(query_models):
        rows_by_model.setdefault(name, []).append(i)

    columns_by_group: Dict[Tuple[str, str], list] = {}
    offsets_list = []
    for j, server in enumerate(servers):
        columns_by_group.setdefault((server_models[j], server.type_name), []).append(j)
        busy_until = server.busy_until_ms
        remaining = busy_until - now_ms if busy_until > now_ms else 0.0
        offsets_list.append(remaining + server.dispatch_overhead_ms)

    offsets = np.asarray(offsets_list, dtype=float)
    # Start every entry at the row model's penalty: same-model blocks are overwritten
    # below, so only cross-model pairs keep it (their "usage" is the Eq. 8 penalty by
    # definition — serving the pair is impossible at any price).
    usage = np.broadcast_to(
        (penalty_factor * qos_rows)[:, None], (m, n)
    ).copy()
    weights = np.empty(n, dtype=float)
    for (model_name, type_name), cols in columns_by_group.items():
        coefficients = coefficients_by_model.get(model_name)
        if coefficients is None or type_name not in coefficients:
            raise KeyError(
                f"no heterogeneity coefficient for model {model_name!r} "
                f"type {type_name!r}"
            )
        coefficient = coefficients[type_name]
        if coefficient <= 0:
            raise ValueError("heterogeneity coefficients must be positive")
        if cols[-1] - cols[0] + 1 == len(cols):
            cols = slice(cols[0], cols[-1] + 1)
        weights[cols] = coefficient
        rows = rows_by_model.get(model_name)
        if not rows:
            continue  # no pending query targets this model: the block stays penalized
        predicted = np.asarray(
            estimators[model_name].predict_many_ms(type_name, batches[rows]),
            dtype=float,
        )
        if len(rows) == m:
            # Single-model rounds (and rounds where every pending query targets this
            # model): identical basic-slicing assembly to build_cost_matrix.
            usage[:, cols] = offsets[cols][None, :] + predicted[:, None]
        else:
            usage[np.ix_(rows, np.arange(n)[cols])] = (
                offsets[cols][None, :] + predicted[:, None]
            )

    same_model = (
        np.asarray(query_models, dtype=object)[:, None]
        == np.asarray(server_models, dtype=object)[None, :]
    )
    feasible = ((usage + waits[:, None]) <= qos_headroom * qos_rows[:, None] + 1e-9)
    feasible &= same_model
    penalized = np.where(feasible, usage, (penalty_factor * qos_rows)[:, None])
    weighted = penalized * weights[None, :]

    return MultiModelCostMatrix(
        usage_ms=usage,
        penalized_ms=penalized,
        weighted=weighted,
        qos_feasible=feasible,
        query_ids=tuple(q.query_id for q in queries),
        server_ids=tuple(s.server_id for s in servers),
        cross_model=~same_model,
        query_models=query_models,
        server_models=server_models,
    )
