"""The ``L`` matrix of the query-distribution optimization (paper Table 2, Eqs. 2-8).

``L[i, j]`` is the time instance ``j`` is occupied if it serves query ``i`` from the
current scheduling instant ``t0``: the predicted service latency of the query's batch
size on the instance's type, plus the instance's remaining busy time (a query currently
being served must finish first), plus the dispatch overhead.

Two transformations turn the QoS-constrained matching into a plain assignment problem:

* the QoS constraint ``(L_ij + W_i) <= T_qos`` (Eq. 3, with the paper's noise headroom
  ``xi = 0.98``) is folded into the matrix by replacing violating entries with a large
  penalty ``10 * T_qos`` (Eq. 8);
* every entry is weighted by the instance's heterogeneity coefficient ``C_j``
  (Definition 1), producing the objective ``sum C_j * L_ij * P_ij`` of Eq. 2.

Incremental builds
------------------

Consecutive scheduling rounds see nearly identical inputs: the pending set changes by
a handful of arrivals/commits (tracked by
:attr:`~repro.sim.pending.PendingQueue.version`), and only servers that dispatched or
completed since the last round have new column data (tracked by
:attr:`~repro.sim.server.ServerInstance.state_version`).  :class:`RoundColumnState`
exploits this: it pins the column layout (type grouping, weights targets, dispatch
overheads, server ids) once per policy bind and, per round, re-reads *only* the
servers whose state version moved, then derives eligibility, offsets, and the
type-group index structure as whole-array operations.  The shared public assembly
cores (:func:`assemble_cost_matrix` / :func:`assemble_multi_model`) guarantee the
incremental path is element-wise identical to the from-scratch builders (locked
down by the golden and fast-path suites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.latency_model import LatencyEstimator
from repro.sim.server import ServerInstance
from repro.utils.validation import check_positive
from repro.workload.query import Query

#: Paper Sec. 5.1 "Remarks": completion times predicted within 2% of the QoS target are
#: already treated as violations, as a safeguard against prediction noise.
DEFAULT_QOS_HEADROOM = 0.98

#: Paper Eq. 8: QoS-violating pairs are penalized with 10x the QoS target.
DEFAULT_PENALTY_FACTOR = 10.0

#: Column-index container used by the assembly cores: a basic slice for the common
#: contiguous same-type layout, an index array otherwise.
ColumnIndex = Union[slice, np.ndarray]


@dataclass(frozen=True)
class CostMatrix:
    """The assembled matrices for one scheduling round.

    Attributes
    ----------
    usage_ms:
        Raw ``L`` matrix (occupation time of each instance by each query), before the
        QoS penalty.
    penalized_ms:
        ``L`` after applying Eq. 8 (QoS-violating entries replaced by the penalty).
    weighted:
        ``C_j * penalized_ms`` — the matrix handed to the assignment solver.
    qos_feasible:
        Boolean mask: True where serving the query on the instance is predicted to meet
        QoS including the query's waiting time so far.
    """

    usage_ms: np.ndarray
    penalized_ms: np.ndarray
    weighted: np.ndarray
    qos_feasible: np.ndarray
    query_ids: Tuple[int, ...]
    server_ids: Tuple[int, ...]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.weighted.shape

    def feasible_fraction(self) -> float:
        """Fraction of (query, instance) pairs predicted to meet QoS."""
        if self.qos_feasible.size == 0:
            return 0.0
        return float(np.mean(self.qos_feasible))


# ---------------------------------------------------------------------------------------
# Shared assembly core (single model)
# ---------------------------------------------------------------------------------------

def assemble_cost_matrix(
    queries: Sequence[Query],
    estimator: LatencyEstimator,
    qos_ms: float,
    coefficients: Mapping[str, float],
    qos_headroom: float,
    penalty_factor: float,
    batches: np.ndarray,
    waits: np.ndarray,
    offsets: np.ndarray,
    groups: Sequence[Tuple[str, ColumnIndex]],
    server_ids: Tuple[int, ...],
) -> CostMatrix:
    """Assemble one round's matrices from prepared row/column data.

    ``groups`` lists the instance-type column blocks in first-occurrence (server)
    order — the order estimator calls are issued in, which a stochastic estimator's
    RNG stream depends on.  Every floating-point operation matches the original
    from-scratch builder term for term, so both entry paths produce bit-identical
    matrices.
    """
    m = len(queries)
    n = len(server_ids)
    usage = np.empty((m, n), dtype=float)
    weights = np.empty(n, dtype=float)
    for type_name, cols in groups:
        if type_name not in coefficients:
            raise KeyError(f"no heterogeneity coefficient for instance type {type_name!r}")
        coefficient = coefficients[type_name]
        if coefficient <= 0:
            raise ValueError("heterogeneity coefficients must be positive")
        predicted = np.asarray(
            estimator.predict_many_ms(type_name, batches), dtype=float
        )
        usage[:, cols] = offsets[cols][None, :] + predicted[:, None]
        weights[cols] = coefficient

    # Eq. 3 with the xi headroom: completion time (usage) plus prior waiting time must
    # stay within xi * T_qos, otherwise the pair is penalized per Eq. 8.
    feasible = (usage + waits[:, None]) <= qos_headroom * qos_ms + 1e-9
    penalized = np.where(feasible, usage, penalty_factor * qos_ms)
    weighted = penalized * weights[None, :]

    return CostMatrix(
        usage_ms=usage,
        penalized_ms=penalized,
        weighted=weighted,
        qos_feasible=feasible,
        query_ids=tuple(q.query_id for q in queries),
        server_ids=server_ids,
    )


def _row_arrays(queries: Sequence[Query], now_ms: float) -> Tuple[np.ndarray, np.ndarray]:
    """The ``batches`` / ``waits`` row columns built from plain query objects."""
    batches = np.asarray([q.batch_size for q in queries], dtype=int)
    waits = np.asarray([q.waiting_time_ms(now_ms) for q in queries], dtype=float)
    return batches, waits


def group_columns(keys: Sequence) -> List[Tuple[object, ColumnIndex]]:
    """Column blocks per hashable key (an instance-type name, or a (model, type)
    pair), first-occurrence order, basic slices when a block is contiguous."""
    columns_by_type: Dict[object, List[int]] = {}
    for j, name in enumerate(keys):
        columns_by_type.setdefault(name, []).append(j)
    groups: List[Tuple[object, ColumnIndex]] = []
    for name, cols in columns_by_type.items():
        if cols[-1] - cols[0] + 1 == len(cols):
            # Same-type servers are contiguous in catalog order (the common layout):
            # basic slicing beats fancy indexing on the hot path.
            groups.append((name, slice(cols[0], cols[-1] + 1)))
        else:
            groups.append((name, np.asarray(cols, dtype=np.intp)))
    return groups


def _server_offsets(servers: Sequence[ServerInstance], now_ms: float) -> np.ndarray:
    """Per-server column offsets: remaining busy time plus dispatch overhead."""
    offsets_list = []
    for server in servers:
        busy_until = server.busy_until_ms
        remaining = busy_until - now_ms if busy_until > now_ms else 0.0
        offsets_list.append(remaining + server.dispatch_overhead_ms)
    return np.asarray(offsets_list, dtype=float)


def build_cost_matrix(
    queries: Sequence[Query],
    servers: Sequence[ServerInstance],
    estimator: LatencyEstimator,
    now_ms: float,
    qos_ms: float,
    coefficients: Mapping[str, float],
    *,
    qos_headroom: float = DEFAULT_QOS_HEADROOM,
    penalty_factor: float = DEFAULT_PENALTY_FACTOR,
) -> CostMatrix:
    """Assemble the cost matrix for one scheduling round.

    Parameters
    ----------
    queries / servers:
        The pending queries (rows) and the candidate instances (columns).
    estimator:
        Latency predictor used for the service-latency component of ``L``.
    now_ms:
        The scheduling instant ``t0``.
    qos_ms:
        The model's QoS target ``T_qos``.
    coefficients:
        Heterogeneity coefficients ``C_j`` keyed by instance-type name.
    qos_headroom:
        The paper's ``xi`` safeguard; a pair is flagged infeasible when the predicted
        completion time exceeds ``xi * T_qos``.
    penalty_factor:
        Eq. 8 penalty multiplier applied to infeasible entries.
    """
    check_positive(qos_ms, "qos_ms")
    check_positive(qos_headroom, "qos_headroom")
    check_positive(penalty_factor, "penalty_factor")
    if not queries or not servers:
        # Zero queries or zero servers means zero matrix elements; the (shared) arrays
        # carry only shape information, so one allocation serves all three float views.
        empty = np.zeros((len(queries), len(servers)))
        return CostMatrix(
            usage_ms=empty,
            penalized_ms=empty,
            weighted=empty,
            qos_feasible=np.zeros(empty.shape, dtype=bool),
            query_ids=tuple(q.query_id for q in queries),
            server_ids=tuple(s.server_id for s in servers),
        )

    # One estimator call per instance *type*, not per server: deterministic estimators
    # predict the same column for every same-type server, so it is computed once and
    # broadcast, with only the per-server terms (remaining busy time + dispatch
    # overhead) varying.  For a stochastic estimator (NoisyLatencyEstimator) this means
    # one noise draw per type per round, shared by its same-type columns — the paper's
    # prediction-noise model perturbs the controller's per-type latency belief, not
    # individual servers, so the robustness experiment is unaffected.
    batches, waits = _row_arrays(queries, now_ms)
    return assemble_cost_matrix(
        queries,
        estimator,
        qos_ms,
        coefficients,
        qos_headroom,
        penalty_factor,
        batches,
        waits,
        _server_offsets(servers, now_ms),
        group_columns([s.type_name for s in servers]),
        tuple(s.server_id for s in servers),
    )


# ---------------------------------------------------------------------------------------
# Incremental column-side state (one instance per policy bind)
# ---------------------------------------------------------------------------------------

@dataclass(frozen=True)
class RoundColumns:
    """One round's eligible-column view produced by :class:`RoundColumnState`.

    ``indices[k]`` maps column ``k`` of the round's matrix back to the bound
    container's server index (what scheduling decisions address).
    """

    indices: List[int]
    server_ids: Tuple[int, ...]
    offsets: np.ndarray
    groups: Sequence[Tuple[object, ColumnIndex]]


class RoundColumnState:
    """Round-over-round column cache for a fixed server list (one policy bind).

    The static layout — type grouping, dispatch overheads, server ids — is derived
    once; per round only servers whose
    :attr:`~repro.sim.server.ServerInstance.state_version` moved are re-read (one
    attribute probe per unchanged server), and eligibility (local queue depth <= 1)
    plus the offset column are evaluated as whole-array operations.  The group
    structure of a filtered round preserves first-occurrence order, so estimator
    call order — and therefore any stochastic estimator's RNG stream — is identical
    to the from-scratch build.
    """

    __slots__ = (
        "servers",
        "_keys",
        "_versions",
        "_busy",
        "_depths",
        "_over_depth",
        "_overhead",
        "_offsets_buf",
        "_server_ids",
        "_codes",
        "_keys_by_code",
        "_full_columns",
        "_n",
    )

    def __init__(
        self,
        servers: Sequence[ServerInstance],
        keys: Optional[Sequence[object]] = None,
    ):
        self.servers = list(servers)
        n = len(self.servers)
        self._n = n
        self._keys = (
            [s.type_name for s in self.servers] if keys is None else list(keys)
        )
        if len(self._keys) != n:
            raise ValueError("keys must parallel the server list")
        self._versions: List[int] = [-1] * n
        self._busy = np.zeros(n, dtype=float)
        self._depths: List[int] = [0] * n
        self._over_depth = 0  # servers with local queue depth > 1 (ineligible)
        self._overhead = np.asarray(
            [s.dispatch_overhead_ms for s in self.servers], dtype=float
        )
        self._offsets_buf = np.empty(n, dtype=float)
        self._server_ids = [s.server_id for s in self.servers]
        code_of: Dict[object, int] = {}
        codes = [code_of.setdefault(key, len(code_of)) for key in self._keys]
        self._codes = np.asarray(codes, dtype=np.int64)
        self._keys_by_code = list(code_of)
        self._full_columns: Optional[RoundColumns] = None

    def refresh(self, now_ms: float) -> Optional[RoundColumns]:
        """The eligible-column view at ``now_ms``; ``None`` when nothing is eligible.

        The returned object (and its ``offsets`` buffer) is only valid until the next
        call — consumers use it within the round, never across rounds.
        """
        if self._n == 0:
            return None  # an empty container has no eligible columns, ever
        versions = self._versions
        depths = self._depths
        busy = self._busy
        for k, s in enumerate(self.servers):
            ver = s.state_version
            if ver != versions[k]:
                versions[k] = ver
                busy[k] = s.busy_until_ms
                depth = s.local_queue_depth
                old = depths[k]
                if depth != old:
                    depths[k] = depth
                    # track eligibility transitions so the common everyone-eligible
                    # round needs no mask scan at all
                    if depth > 1:
                        if old <= 1:
                            self._over_depth += 1
                    elif old > 1:
                        self._over_depth -= 1

        offsets = self._offsets_buf
        np.subtract(busy, now_ms, out=offsets)
        np.maximum(offsets, 0.0, out=offsets)
        offsets += self._overhead
        if self._over_depth == 0:
            full = self._full_columns
            if full is None:
                full = RoundColumns(
                    indices=list(range(self._n)),
                    server_ids=tuple(self._server_ids),
                    offsets=offsets,
                    groups=self._groups_of(self._codes),
                )
                self._full_columns = full
            return full

        eligible = np.asarray(depths) <= 1
        idx = np.nonzero(eligible)[0]
        if idx.size == 0:
            return None
        index_list = idx.tolist()
        ids = self._server_ids
        return RoundColumns(
            indices=index_list,
            server_ids=tuple(ids[i] for i in index_list),
            offsets=offsets[idx],
            groups=self._groups_of(self._codes[idx]),
        )

    def _groups_of(self, codes: np.ndarray) -> List[Tuple[object, ColumnIndex]]:
        """Column blocks per group key over ``codes``, first-occurrence order."""
        keys_by_code = self._keys_by_code
        if len(keys_by_code) == 1:
            # single-type pools: one contiguous block
            return [(keys_by_code[0], slice(0, len(codes)))]
        uniq, first = np.unique(codes, return_index=True)
        order = np.argsort(first, kind="stable")
        groups: List[Tuple[object, ColumnIndex]] = []
        for code in uniq[order]:
            cols = np.nonzero(codes == code)[0]
            if cols[-1] - cols[0] + 1 == len(cols):
                groups.append((keys_by_code[code], slice(int(cols[0]), int(cols[-1]) + 1)))
            else:
                groups.append((keys_by_code[code], cols))
        return groups

    # -- introspection helpers shared with the policies --------------------------------
    def unique_keys(self) -> Tuple[object, ...]:
        """Distinct group keys in first-occurrence (server) order over the full list."""
        return tuple(self._keys_by_code)


# ---------------------------------------------------------------------------------------
# Multi-model clusters: one joint matrix over the union of pending queries
# ---------------------------------------------------------------------------------------

@dataclass(frozen=True)
class MultiModelCostMatrix(CostMatrix):
    """The joint ``L`` matrix of a co-located multi-model scheduling round.

    Rows are the union of pending queries across models, columns the union of eligible
    instances; ``cross_model[i, j]`` is True where query ``i`` targets a different
    model than instance ``j`` hosts.  Cross-model pairs can never serve (an instance
    hosts one model copy), so they carry the row model's Eq. 8 penalty, are flagged
    QoS-infeasible, and the policy never commits them; they exist only so one
    assignment solve covers the whole round.  With a single registered model every
    matrix is element-wise identical to :func:`build_cost_matrix`'s output.
    """

    cross_model: np.ndarray = None  # type: ignore[assignment]
    query_models: Tuple[str, ...] = ()
    server_models: Tuple[str, ...] = ()


def resolve_query_models(
    queries: Sequence[Query], qos_ms_by_model: Mapping[str, float]
) -> Tuple[str, ...]:
    """Per-query model names with the sole-model fallback and validation."""
    sole_model = next(iter(qos_ms_by_model)) if len(qos_ms_by_model) == 1 else None

    def row_model(query: Query) -> str:
        if query.model_name is not None:
            name = query.model_name
        elif sole_model is not None:
            name = sole_model
        else:
            raise ValueError(
                f"query {query.query_id} carries no model tag but "
                f"{len(qos_ms_by_model)} models are registered"
            )
        if name not in qos_ms_by_model:
            raise KeyError(f"query {query.query_id} targets unregistered model {name!r}")
        return name

    return tuple(row_model(q) for q in queries)


def assemble_multi_model(
    queries: Sequence[Query],
    query_models: Tuple[str, ...],
    estimators: Mapping[str, LatencyEstimator],
    qos_ms_by_model: Mapping[str, float],
    coefficients_by_model: Mapping[str, Mapping[str, float]],
    qos_headroom: float,
    penalty_factor: float,
    batches: np.ndarray,
    waits: np.ndarray,
    offsets: np.ndarray,
    groups: Sequence[Tuple[Tuple[str, str], ColumnIndex]],
    server_ids: Tuple[int, ...],
    server_models: Tuple[str, ...],
) -> MultiModelCostMatrix:
    """Assemble one joint round from prepared row/column data (see single-model core).

    ``groups`` lists (model, type) column blocks in first-occurrence order;
    estimator calls are issued per block *only when the model has pending rows*,
    matching the from-scratch builder's call sequence exactly.
    """
    m = len(queries)
    n = len(server_ids)
    qos_rows = np.asarray([qos_ms_by_model[name] for name in query_models], dtype=float)

    rows_by_model: Dict[str, List[int]] = {}
    for i, name in enumerate(query_models):
        rows_by_model.setdefault(name, []).append(i)

    # Start every entry at the row model's penalty: same-model blocks are overwritten
    # below, so only cross-model pairs keep it (their "usage" is the Eq. 8 penalty by
    # definition — serving the pair is impossible at any price).
    usage = np.broadcast_to((penalty_factor * qos_rows)[:, None], (m, n)).copy()
    weights = np.empty(n, dtype=float)
    col_arange: Optional[np.ndarray] = None
    for (model_name, type_name), cols in groups:
        coefficients = coefficients_by_model.get(model_name)
        if coefficients is None or type_name not in coefficients:
            raise KeyError(
                f"no heterogeneity coefficient for model {model_name!r} "
                f"type {type_name!r}"
            )
        coefficient = coefficients[type_name]
        if coefficient <= 0:
            raise ValueError("heterogeneity coefficients must be positive")
        weights[cols] = coefficient
        rows = rows_by_model.get(model_name)
        if not rows:
            continue  # no pending query targets this model: the block stays penalized
        predicted = np.asarray(
            estimators[model_name].predict_many_ms(type_name, batches[rows]),
            dtype=float,
        )
        if len(rows) == m:
            # Single-model rounds (and rounds where every pending query targets this
            # model): identical basic-slicing assembly to build_cost_matrix.
            usage[:, cols] = offsets[cols][None, :] + predicted[:, None]
        else:
            if col_arange is None:
                col_arange = np.arange(n)
            usage[np.ix_(rows, col_arange[cols])] = (
                offsets[cols][None, :] + predicted[:, None]
            )

    same_model = (
        np.asarray(query_models, dtype=object)[:, None]
        == np.asarray(server_models, dtype=object)[None, :]
    )
    feasible = ((usage + waits[:, None]) <= qos_headroom * qos_rows[:, None] + 1e-9)
    feasible &= same_model
    penalized = np.where(feasible, usage, (penalty_factor * qos_rows)[:, None])
    weighted = penalized * weights[None, :]

    return MultiModelCostMatrix(
        usage_ms=usage,
        penalized_ms=penalized,
        weighted=weighted,
        qos_feasible=feasible,
        query_ids=tuple(q.query_id for q in queries),
        server_ids=server_ids,
        cross_model=~same_model,
        query_models=query_models,
        server_models=server_models,
    )


def build_multi_model_cost_matrix(
    queries: Sequence[Query],
    servers: Sequence[ServerInstance],
    server_models: Sequence[str],
    estimators: Mapping[str, LatencyEstimator],
    now_ms: float,
    qos_ms_by_model: Mapping[str, float],
    coefficients_by_model: Mapping[str, Mapping[str, float]],
    *,
    qos_headroom: float = DEFAULT_QOS_HEADROOM,
    penalty_factor: float = DEFAULT_PENALTY_FACTOR,
) -> MultiModelCostMatrix:
    """Assemble the joint cost matrix of one multi-model scheduling round.

    Parameters mirror :func:`build_cost_matrix` with per-model plumbing:
    ``server_models[j]`` names the model instance ``j`` hosts, ``estimators`` /
    ``qos_ms_by_model`` / ``coefficients_by_model`` are keyed by model name.  Queries
    may leave ``model_name`` unset only when exactly one model is registered (the
    single-model compatibility path).

    The PR-2 fast path generalizes per model: one ``predict_many_ms`` call per
    (model, instance type) pair per round, over that model's pending batch vector,
    broadcast into the (model-rows x type-columns) block.
    """
    check_positive(qos_headroom, "qos_headroom")
    check_positive(penalty_factor, "penalty_factor")
    for model_name, qos in qos_ms_by_model.items():
        if qos <= 0:
            raise ValueError(f"qos_ms for model {model_name!r} must be positive")

    query_models = resolve_query_models(queries, qos_ms_by_model)
    server_models = tuple(server_models)
    if len(server_models) != len(servers):
        raise ValueError("server_models must parallel the server list")

    if not queries or not servers:
        empty = np.zeros((len(queries), len(servers)))
        return MultiModelCostMatrix(
            usage_ms=empty,
            penalized_ms=empty,
            weighted=empty,
            qos_feasible=np.zeros(empty.shape, dtype=bool),
            query_ids=tuple(q.query_id for q in queries),
            server_ids=tuple(s.server_id for s in servers),
            cross_model=np.zeros(empty.shape, dtype=bool),
            query_models=query_models,
            server_models=server_models,
        )

    batches, waits = _row_arrays(queries, now_ms)
    groups = group_multi_model_columns(server_models, [s.type_name for s in servers])
    return assemble_multi_model(
        queries,
        query_models,
        estimators,
        qos_ms_by_model,
        coefficients_by_model,
        qos_headroom,
        penalty_factor,
        batches,
        waits,
        _server_offsets(servers, now_ms),
        groups,
        tuple(s.server_id for s in servers),
        server_models,
    )


def group_multi_model_columns(
    server_models: Sequence[str], type_names: Sequence[str]
) -> List[Tuple[Tuple[str, str], ColumnIndex]]:
    """(model, type) column blocks, first-occurrence order, slices when contiguous."""
    return group_columns(list(zip(server_models, type_names)))
